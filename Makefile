.PHONY: ci test lint smoke faults bench

# Everything CI runs, in one command (tests + lint + smoke + faults).
ci:
	scripts/ci.sh all

test:
	scripts/ci.sh tests

lint:
	scripts/ci.sh lint

smoke:
	scripts/ci.sh smoke

faults:
	scripts/ci.sh faults

# Full reproduction log: every table/figure benchmark at current scale.
bench:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s
