.PHONY: ci test lint smoke faults bench bench-record bench-check ingest fabric policies chaos

# Everything CI runs, in one command (tests + lint + smoke + faults).
ci:
	scripts/ci.sh all

test:
	scripts/ci.sh tests

lint:
	scripts/ci.sh lint

smoke:
	scripts/ci.sh smoke

faults:
	scripts/ci.sh faults

# Streaming-ingestion gate: trace adapter tests, a 100k-job fixture
# replayed under the RSS ceiling, and the BENCH_ingest.json check.
ingest:
	scripts/ci.sh ingest

# Distributed-fabric gate: lease/worker/coordinator tests, a 2-worker
# subprocess fleet that must match serial bit-for-bit, the CLI
# run-grid/cache round trip, and the BENCH_grid.json check.
fabric:
	scripts/ci.sh fabric

# Policy-registry gate: registry/spec/plugin tests, the registry-vs-
# direct golden grid plus fractional-determinism smoke, and the CLI
# `--policy SPEC` round trip.
policies:
	scripts/ci.sh policies

# Robustness gate: seeded chaos scenarios (kill storms, heartbeat
# freezes, corruption) against a live self-healing fleet, the invariant
# audit, the CLI round trip, and the BENCH_chaos.json recovery check.
chaos:
	scripts/ci.sh chaos

# Full reproduction log: every table/figure benchmark at current scale,
# then a refreshed point on the engine-throughput trajectory.
bench:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only -s
	PYTHONPATH=src python scripts/bench_record.py

# Append one BENCH_engine.json record without the full reproduction log.
bench-record:
	PYTHONPATH=src python scripts/bench_record.py

# The CI throughput gate: fail on >20% normalised regression vs the
# last committed record.
bench-check:
	scripts/ci.sh bench
