"""Fault injection: determinism, churn/outage semantics, retry policy."""

import random

import pytest

import repro
from repro.errors import ConfigurationError, UnknownPoolError
from repro.faults import (
    NO_FAULTS,
    FaultConfig,
    MachineChurn,
    PoolOutage,
    RetryPolicy,
)
from repro.metrics.summary import summarize
from repro.simulator.config import SimulationConfig
from repro.workload.distributions import Exponential

from conftest import make_cluster, make_job, run_tiny


def fault_run(scenario, faults, policy=None, **config_kwargs):
    return repro.run_simulation(
        scenario.trace,
        scenario.cluster,
        policy=policy,
        config=SimulationConfig(strict=False, faults=faults, **config_kwargs),
    )


def record_key(r):
    return (
        r.job_id,
        r.finish_minute,
        r.wait_time,
        r.suspend_time,
        r.restart_count,
        r.machine_failures,
        r.transient_failures,
        r.failed,
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_minutes=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.5)

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(
            backoff_minutes=10.0,
            backoff_multiplier=2.0,
            max_backoff_minutes=25.0,
            jitter_fraction=0.0,
        )
        rng = random.Random(0)
        assert policy.delay_for(1, rng) == 10.0
        assert policy.delay_for(2, rng) == 20.0
        assert policy.delay_for(3, rng) == 25.0  # capped
        assert policy.delay_for(10, rng) == 25.0

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_minutes=10.0, jitter_fraction=0.1)
        delays = [policy.delay_for(1, random.Random(i)) for i in range(50)]
        assert all(9.0 <= d <= 11.0 for d in delays)
        again = [policy.delay_for(1, random.Random(i)) for i in range(50)]
        assert delays == again


class TestFaultConfig:
    def test_no_faults_is_disabled(self):
        assert not NO_FAULTS.enabled
        assert not FaultConfig().enabled

    def test_any_fault_source_enables(self):
        churn = MachineChurn(mtbf=Exponential(100.0), mttr=Exponential(10.0))
        assert FaultConfig(machine_churn=churn).enabled
        assert FaultConfig(job_failure_probability=0.5).enabled
        assert FaultConfig(
            pool_outages=(PoolOutage("p0", 10.0, 5.0),)
        ).enabled

    def test_with_exponential_churn(self):
        faults = FaultConfig.with_exponential_churn(100.0, 10.0)
        assert faults.enabled
        assert faults.machine_churn is not None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(job_failure_probability=1.5)
        with pytest.raises(ConfigurationError):
            PoolOutage("p0", -1.0, 5.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(faults="not-a-fault-config")

    def test_unknown_outage_pool_raises(self, smoke_scenario):
        faults = FaultConfig(pool_outages=(PoolOutage("no-such-pool", 10.0, 5.0),))
        with pytest.raises(UnknownPoolError):
            fault_run(smoke_scenario, faults)


class TestZeroFaultBitIdentity:
    def test_disabled_faults_do_not_change_results(self, smoke_scenario, smoke_result):
        result = fault_run(smoke_scenario, NO_FAULTS, check_invariants=True)
        assert result.fault_stats is None
        assert [record_key(r) for r in result.records] == [
            record_key(r) for r in smoke_result.records
        ]

    def test_cache_key_unchanged_by_disabled_faults(self, smoke_scenario):
        from repro.experiments.cache import cell_cache_key

        policy = repro.no_res()
        base = cell_cache_key(
            smoke_scenario, policy, None, SimulationConfig(strict=False)
        )
        with_disabled = cell_cache_key(
            smoke_scenario,
            policy,
            None,
            SimulationConfig(strict=False, faults=NO_FAULTS),
        )
        assert base == with_disabled
        enabled = cell_cache_key(
            smoke_scenario,
            policy,
            None,
            SimulationConfig(
                strict=False, faults=FaultConfig.with_exponential_churn(500.0, 60.0)
            ),
        )
        assert enabled != base


class TestMachineChurn:
    @pytest.fixture(scope="class")
    def churn_result(self, smoke_scenario):
        faults = FaultConfig.with_exponential_churn(3000.0, 60.0)
        return fault_run(smoke_scenario, faults, check_invariants=True)

    def test_crashes_happen_and_work_is_lost(self, churn_result):
        stats = churn_result.fault_stats
        assert stats is not None
        assert stats.machine_crashes > 0
        assert stats.machine_recoveries > 0
        assert stats.attempts_killed > 0
        assert stats.lost_work_minutes > 0
        assert 0.0 < stats.goodput_fraction < 1.0

    def test_killed_jobs_still_complete(self, churn_result, smoke_scenario):
        completed = list(churn_result.completed_records())
        assert len(completed) + churn_result.failed_count() + sum(
            1 for r in churn_result.records if r.rejected
        ) == len(smoke_scenario.trace)
        assert any(r.machine_failures > 0 for r in completed)

    def test_deterministic_across_runs(self, smoke_scenario, churn_result):
        again = fault_run(
            smoke_scenario,
            FaultConfig.with_exponential_churn(3000.0, 60.0),
            check_invariants=True,
        )
        assert [record_key(r) for r in again.records] == [
            record_key(r) for r in churn_result.records
        ]
        assert again.fault_stats == churn_result.fault_stats

    def test_rescheduling_policy_also_survives(self, smoke_scenario):
        result = fault_run(
            smoke_scenario,
            FaultConfig.with_exponential_churn(3000.0, 60.0),
            policy=repro.res_sus_util(),
        )
        assert result.fault_stats.machine_crashes > 0
        assert list(result.completed_records())

    def test_fault_stats_render_mentions_counters(self, churn_result):
        text = churn_result.fault_stats.render()
        assert "crash" in text
        assert "lost work" in text


class TestPoolOutage:
    def test_outage_counted_and_jobs_survive(self):
        # One two-pool cluster; p0 blacks out while jobs are running.
        jobs = [make_job(i, submit=float(i), runtime=50.0) for i in range(8)]
        faults = FaultConfig(pool_outages=(PoolOutage("p0", 10.0, 30.0),))
        result = run_tiny(
            jobs,
            cluster=make_cluster((("p0", 2), ("p1", 2))),
            strict=False,
            faults=faults,
        )
        stats = result.fault_stats
        assert stats.pool_outages == 1
        completed = list(result.completed_records())
        assert len(completed) == 8  # outage delays but never loses jobs
        # Work that was in flight on p0 was killed and repeated.
        assert stats.attempts_killed > 0

    def test_jobs_route_around_down_pool(self):
        # The outage covers the whole submission window, so every job
        # must land on p1 (statically eligible on both).
        jobs = [make_job(i, submit=float(i), runtime=5.0) for i in range(4)]
        faults = FaultConfig(pool_outages=(PoolOutage("p0", 0.0, 500.0),))
        result = run_tiny(
            jobs,
            cluster=make_cluster((("p0", 2), ("p1", 2))),
            strict=False,
            faults=faults,
        )
        completed = list(result.completed_records())
        assert len(completed) == 4
        assert {r.pools_visited[-1] for r in completed} == {"p1"}


class TestTransientFailures:
    def test_failures_are_retried_to_completion(self, smoke_scenario):
        faults = FaultConfig(
            job_failure_probability=0.10,
            retry=RetryPolicy(max_attempts=10, backoff_minutes=1.0),
        )
        result = fault_run(smoke_scenario, faults, check_invariants=True)
        stats = result.fault_stats
        assert stats.transient_failures > 0
        assert stats.retries_scheduled > 0
        assert stats.permanent_failures == 0
        assert result.failed_count() == 0

    def test_exhausted_retries_become_permanent_failures(self, smoke_scenario):
        faults = FaultConfig(
            job_failure_probability=1.0,
            retry=RetryPolicy(max_attempts=2, backoff_minutes=1.0),
        )
        result = fault_run(smoke_scenario, faults)
        submitted = [r for r in result.records if not r.rejected]
        assert result.failed_count() == len(submitted)
        assert result.fault_stats.permanent_failures == len(submitted)
        # every job got exactly max_attempts tries
        assert all(r.transient_failures == 2 for r in result.failed_records())
        assert not list(result.completed_records())

    def test_failed_jobs_stay_out_of_summary_completions(self, smoke_scenario):
        faults = FaultConfig(
            job_failure_probability=1.0,
            retry=RetryPolicy(max_attempts=1),
        )
        result = fault_run(smoke_scenario, faults)
        summary = summarize(result)
        assert summary.completed_count == 0
        assert summary.job_count == len(result.records)


class TestFaultTelemetry:
    def test_fault_metrics_exported(self, smoke_scenario):
        registry = repro.MetricsRegistry()
        repro.run_simulation(
            smoke_scenario.trace,
            smoke_scenario.cluster,
            config=SimulationConfig(
                strict=False,
                faults=FaultConfig.with_exponential_churn(3000.0, 60.0),
                instrumentation=repro.Instrumentation(metrics=registry),
            ),
        )
        names = {family.name for family in registry.collect()}
        assert "repro_fault_machine_crashes_total" in names
        assert "repro_fault_lost_work_minutes_total" in names

    def test_no_fault_metrics_without_faults(self, smoke_scenario):
        registry = repro.MetricsRegistry()
        repro.run_simulation(
            smoke_scenario.trace,
            smoke_scenario.cluster,
            config=SimulationConfig(
                strict=False,
                instrumentation=repro.Instrumentation(metrics=registry),
            ),
        )
        names = {family.name for family in registry.collect()}
        assert not any(name.startswith("repro_fault_") for name in names)


class TestFaultSweep:
    def test_sweep_shape_and_render(self):
        from repro.experiments.fault_sweep import fault_sweep

        sweep = fault_sweep(mtbf_minutes=(4000.0,), scale=0.03, seed=11)
        assert len(sweep.cells) == 3  # NoRes + two reschedulers
        assert {c.policy_name for c in sweep.cells} == {
            "NoRes",
            "ResSusUtil",
            "ResSusWaitUtil",
        }
        text = sweep.render()
        assert "MTBF 4000" in text
        assert "ResSusUtil" in text

    def test_sweep_deterministic(self):
        from repro.experiments.fault_sweep import fault_sweep

        a = fault_sweep(mtbf_minutes=(4000.0,), scale=0.03, seed=11)
        b = fault_sweep(mtbf_minutes=(4000.0,), scale=0.03, seed=11)
        assert a.render() == b.render()
