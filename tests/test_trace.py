"""Unit tests for repro.workload.trace."""

import pytest

from repro.errors import TraceError
from repro.workload.trace import Trace, TraceJob, jobs_by_task

from conftest import make_job


class TestTraceJob:
    def test_defaults(self):
        job = TraceJob(job_id=1, submit_minute=0.0, runtime_minutes=5.0)
        assert job.priority == 0
        assert job.cores == 1
        assert job.candidate_pools is None

    def test_validation(self):
        with pytest.raises(TraceError):
            TraceJob(job_id=-1, submit_minute=0.0, runtime_minutes=1.0)
        with pytest.raises(TraceError):
            TraceJob(job_id=1, submit_minute=-1.0, runtime_minutes=1.0)
        with pytest.raises(TraceError):
            TraceJob(job_id=1, submit_minute=0.0, runtime_minutes=0.0)
        with pytest.raises(TraceError):
            TraceJob(job_id=1, submit_minute=0.0, runtime_minutes=1.0, cores=0)
        with pytest.raises(TraceError):
            TraceJob(job_id=1, submit_minute=0.0, runtime_minutes=1.0, memory_gb=0.0)
        with pytest.raises(TraceError):
            TraceJob(
                job_id=1, submit_minute=0.0, runtime_minutes=1.0, candidate_pools=()
            )

    def test_is_allowed_in(self):
        unrestricted = make_job(1)
        assert unrestricted.is_allowed_in("anything")
        restricted = make_job(2, candidate_pools=("a", "b"))
        assert restricted.is_allowed_in("a")
        assert not restricted.is_allowed_in("c")

    def test_restricted_to(self):
        job = make_job(1).restricted_to(["x", "y"])
        assert job.candidate_pools == ("x", "y")


class TestTrace:
    def test_sorts_by_submit_time(self):
        trace = Trace([make_job(1, submit=5.0), make_job(2, submit=1.0)])
        assert [j.job_id for j in trace] == [2, 1]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TraceError):
            Trace([make_job(1), make_job(1, submit=2.0)])

    def test_window_selects_half_open_interval(self):
        trace = Trace([make_job(i, submit=float(i)) for i in range(10)])
        window = trace.window(3.0, 6.0)
        assert [j.job_id for j in window] == [3, 4, 5]

    def test_window_preserves_submit_times(self):
        trace = Trace([make_job(i, submit=float(i) + 10) for i in range(5)])
        window = trace.window(11.0, 14.0)
        assert window[0].submit_minute == 11.0

    def test_window_validation(self):
        with pytest.raises(TraceError):
            Trace([]).window(5.0, 1.0)

    def test_rebased_shifts_to_zero(self):
        trace = Trace([make_job(1, submit=100.0), make_job(2, submit=150.0)])
        rebased = trace.rebased()
        assert rebased[0].submit_minute == 0.0
        assert rebased[1].submit_minute == 50.0

    def test_rebased_empty_is_noop(self):
        trace = Trace.empty()
        assert trace.rebased() is trace

    def test_filter(self):
        trace = Trace([make_job(i, priority=i % 2) for i in range(6)])
        high = trace.filter(lambda j: j.priority == 1)
        assert len(high) == 3

    def test_merged_with(self):
        a = Trace([make_job(1, submit=1.0)])
        b = Trace([make_job(2, submit=0.5)])
        merged = a.merged_with(b)
        assert [j.job_id for j in merged] == [2, 1]

    def test_merged_with_id_collision_rejected(self):
        with pytest.raises(TraceError):
            Trace([make_job(1)]).merged_with(Trace([make_job(1)]))

    def test_head(self):
        trace = Trace([make_job(i, submit=float(i)) for i in range(5)])
        assert len(trace.head(2)) == 2
        with pytest.raises(TraceError):
            trace.head(-1)

    def test_horizon(self):
        assert Trace.empty().horizon() == 0.0
        trace = Trace([make_job(1, submit=3.0), make_job(2, submit=9.0)])
        assert trace.horizon() == 9.0

    def test_job_by_id(self):
        trace = Trace([make_job(7, submit=1.0)])
        assert trace.job_by_id(7).job_id == 7
        with pytest.raises(TraceError):
            trace.job_by_id(8)

    def test_equality(self):
        a = Trace([make_job(1)])
        b = Trace([make_job(1)])
        assert a == b
        assert a != Trace([])


class TestTraceStats:
    def test_empty_trace_stats(self):
        stats = Trace.empty().stats()
        assert stats.job_count == 0
        assert stats.mean_runtime == 0.0

    def test_basic_stats(self):
        trace = Trace(
            [
                make_job(1, submit=0.0, runtime=10.0, cores=2),
                make_job(2, submit=10.0, runtime=30.0, cores=1),
            ]
        )
        stats = trace.stats()
        assert stats.job_count == 2
        assert stats.horizon_minutes == 10.0
        assert stats.mean_runtime == 20.0
        assert stats.total_core_minutes == 50.0
        assert stats.mean_interarrival == 10.0

    def test_priority_fraction(self):
        trace = Trace([make_job(i, priority=100 if i < 2 else 0) for i in range(8)])
        stats = trace.stats()
        assert stats.fraction_with_priority_at_least(100) == 0.25
        assert stats.fraction_with_priority_at_least(0) == 1.0

    def test_offered_load(self):
        trace = Trace(
            [make_job(1, submit=0.0, runtime=50.0), make_job(2, submit=100.0, runtime=50.0)]
        )
        # 100 core-minutes over 100 minutes on 10 cores -> 0.1
        assert trace.offered_load(10) == pytest.approx(0.1)
        with pytest.raises(TraceError):
            trace.offered_load(0)


class TestJobsByTask:
    def test_groups_by_task(self):
        trace = Trace(
            [
                TraceJob(job_id=0, submit_minute=0.0, runtime_minutes=1.0, task_id=1),
                TraceJob(job_id=1, submit_minute=1.0, runtime_minutes=1.0, task_id=1),
                TraceJob(job_id=2, submit_minute=2.0, runtime_minutes=1.0, task_id=2),
                TraceJob(job_id=3, submit_minute=3.0, runtime_minutes=1.0),
            ]
        )
        grouped = jobs_by_task(trace)
        assert sorted(grouped) == [1, 2]
        assert len(grouped[1]) == 2
