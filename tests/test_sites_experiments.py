"""End-to-end tests for the inter-site experiment and engine caching."""

import pytest

from repro.sites import inter_site_ablation, multi_site_scenario
from repro.simulator.engine import SimulationEngine

from conftest import make_cluster, make_job, make_trace


class TestInterSiteAblation:
    @pytest.fixture(scope="class")
    def outcome(self):
        return inter_site_ablation(scale=0.06, transfer_minutes=30.0)

    def test_four_strategies(self, outcome):
        _, rows = outcome
        assert [r.policy_name for r in rows] == [
            "NoRes",
            "LocalOnly",
            "LocalFirst",
            "TransferAware",
        ]

    def test_all_jobs_complete_under_every_strategy(self, outcome):
        scenario, rows = outcome
        for row in rows:
            assert row.job_count == len(scenario.trace)
            assert row.rejected_count == 0

    def test_rescheduling_strategies_beat_baseline(self, outcome):
        _, rows = outcome
        baseline = rows[0]
        for row in rows[1:]:
            assert row.avg_wct < baseline.avg_wct

    def test_prebuilt_scenario_reused(self):
        scenario = multi_site_scenario(scale=0.05)
        returned, rows = inter_site_ablation(scenario=scenario)
        assert returned is scenario
        assert len(rows) == 4


class TestEligibilityCache:
    def test_signature_sharing(self):
        engine = SimulationEngine(
            make_trace([make_job(0), make_job(1, submit=1.0)]),
            make_cluster(),
        )
        a = engine.eligible_candidates(make_job(5, cores=2, memory_gb=4.0))
        b = engine.eligible_candidates(make_job(6, cores=2, memory_gb=4.0))
        # same requirement signature -> same cached tuple object
        assert a is b

    def test_whitelist_applied_after_cache(self):
        engine = SimulationEngine(
            make_trace([make_job(0)]),
            make_cluster([("p0", 1), ("p1", 1)]),
        )
        unrestricted = engine.eligible_candidates(make_job(5))
        restricted = engine.eligible_candidates(make_job(6, candidate_pools=("p1",)))
        assert unrestricted == ("p0", "p1")
        assert restricted == ("p1",)

    def test_ineligible_everywhere_empty(self):
        engine = SimulationEngine(
            make_trace([make_job(0)]),
            make_cluster(),
        )
        assert engine.eligible_candidates(make_job(5, os_family="solaris")) == ()
