"""Unit tests for the runtime Machine occupancy model."""

import pytest

from repro.errors import SchedulingError
from repro.simulator.job import Job
from repro.simulator.machine import Machine

from conftest import make_job, make_machine


def machine(cores=4, memory=16.0):
    return Machine(make_machine(cores=cores, memory_gb=memory))


def started(m, job_id=1, cores=1, memory=1.0, priority=0, runtime=10.0):
    job = Job(make_job(job_id, runtime=runtime, cores=cores, memory_gb=memory, priority=priority))
    m.place(job)
    job.start(m, "p0", 0.0)
    return job


class TestPlacement:
    def test_place_allocates(self):
        m = machine()
        started(m, cores=2, memory=4.0)
        assert m.free_cores == 2
        assert m.free_memory_gb == 12.0
        assert m.busy_cores == 2

    def test_place_rejects_overflow(self):
        m = machine(cores=2)
        started(m, cores=2)
        job = Job(make_job(2, cores=1))
        with pytest.raises(SchedulingError):
            m.place(job)

    def test_fits_now(self):
        m = machine(cores=2, memory=2.0)
        assert m.fits_now(make_job(1, cores=2, memory_gb=2.0))
        assert not m.fits_now(make_job(1, cores=3))
        assert not m.fits_now(make_job(1, memory_gb=3.0))

    def test_finish_releases_everything(self):
        m = machine()
        job = started(m, cores=2, memory=4.0)
        m.remove(job)
        assert m.free_cores == 4
        assert m.free_memory_gb == 16.0


class TestSuspension:
    def test_suspend_frees_cores_keeps_memory(self):
        m = machine()
        job = started(m, cores=2, memory=8.0)
        m.suspend(job)
        assert m.free_cores == 4
        assert m.free_memory_gb == 8.0
        assert job.job_id in m.suspended

    def test_resume_reacquires_cores(self):
        m = machine()
        job = started(m, cores=2, memory=8.0)
        job.suspend(0.0)
        m.suspend(job)
        m.resume(job)
        assert m.free_cores == 2
        assert job.job_id in m.running

    def test_resume_requires_free_cores(self):
        m = machine(cores=2)
        job = started(m, job_id=1, cores=2)
        job.suspend(0.0)
        m.suspend(job)
        other = started(m, job_id=2, cores=2)
        with pytest.raises(SchedulingError):
            m.resume(job)

    def test_remove_suspended_frees_memory(self):
        m = machine()
        job = started(m, cores=1, memory=8.0)
        m.suspend(job)
        m.remove(job)
        assert m.free_memory_gb == 16.0
        assert not m.suspended

    def test_suspend_unknown_job_rejected(self):
        m = machine()
        with pytest.raises(SchedulingError):
            m.suspend(Job(make_job(9)))

    def test_remove_unknown_job_rejected(self):
        m = machine()
        with pytest.raises(SchedulingError):
            m.remove(Job(make_job(9)))


class TestPreemption:
    def test_preemptible_cores_counts_lower_priority_only(self):
        m = machine(cores=4)
        started(m, job_id=1, cores=2, priority=0)
        started(m, job_id=2, cores=1, priority=100)
        assert m.preemptible_cores(50) == 2
        assert m.preemptible_cores(0) == 0

    def test_could_fit_by_preemption_checks_memory(self):
        m = machine(cores=4, memory=4.0)
        started(m, job_id=1, cores=4, memory=3.0, priority=0)
        # cores preemptible but memory is held by the victim:
        # only 1GB free for the new job
        assert m.could_fit_by_preemption(make_job(2, cores=1, memory_gb=1.0), 100)
        assert not m.could_fit_by_preemption(make_job(2, cores=1, memory_gb=2.0), 100)

    def test_victims_lowest_priority_then_submission_order(self):
        m = machine(cores=4)
        a = started(m, job_id=3, cores=1, priority=10)
        b = started(m, job_id=1, cores=1, priority=0)
        c = started(m, job_id=2, cores=1, priority=0)
        d = started(m, job_id=4, cores=1, priority=50)
        victims = m.preemption_victims(make_job(9, cores=2), 100)
        assert [v.job_id for v in victims] == [1, 2]

    def test_victim_set_is_minimal(self):
        m = machine(cores=4)
        started(m, job_id=1, cores=2, priority=0)
        started(m, job_id=2, cores=2, priority=0)
        victims = m.preemption_victims(make_job(9, cores=2), 100)
        assert len(victims) == 1

    def test_no_victims_when_unfittable(self):
        m = machine(cores=4)
        started(m, job_id=1, cores=4, priority=100)
        assert m.preemption_victims(make_job(9, cores=1), 50) == []

    def test_no_victims_when_free_cores_sufficient(self):
        m = machine(cores=4)
        started(m, job_id=1, cores=1, priority=0)
        # 3 cores free, needs 2 -> no preemption required
        assert m.preemption_victims(make_job(9, cores=2), 100) == []


class TestInvariants:
    def test_check_invariants_passes_on_consistent_state(self):
        m = machine()
        job = started(m, cores=2, memory=4.0)
        m.check_invariants()
        job.suspend(0.0)
        m.suspend(job)
        m.check_invariants()

    def test_check_invariants_detects_drift(self):
        m = machine()
        started(m, cores=2)
        m.free_cores = 4  # corrupt
        with pytest.raises(SchedulingError):
            m.check_invariants()
