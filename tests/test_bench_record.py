"""Tests for the engine-throughput trajectory harness (repro.benchtrack)."""

import json

import pytest

from repro import benchtrack
from repro.benchtrack import (
    BenchFormatError,
    BenchRecord,
    WorkloadResult,
    WorkloadSpec,
    check_regression,
    load_history,
    record_from_dict,
    record_to_dict,
    write_record,
)


def workload(name="cell", jps=100.0, digest="d" * 64, **spec_kwargs):
    spec = WorkloadSpec(name=name, **spec_kwargs)
    return WorkloadResult(
        spec=spec,
        jobs=1000,
        rounds=3,
        best_wall_seconds=1000.0 / jps,
        jobs_per_second=jps,
        result_digest=digest,
    )


def record(label="rec", calibration=10.0, workloads=(), **kwargs):
    return BenchRecord(
        schema_version=benchtrack.SCHEMA_VERSION,
        label=label,
        recorded_at=None,
        calibration_score=calibration,
        workloads=tuple(workloads),
        **kwargs,
    )


class TestSchemaRoundTrip:
    def test_round_trip_through_json(self):
        original = record(
            label="abc123",
            workloads=[workload(), workload(name="other", scale=0.25, faults=True)],
            table1_cold_seconds=2.5,
            table1_warm_seconds=0.1,
            notes="host class X",
        )
        payload = json.loads(json.dumps(record_to_dict(original)))
        assert record_from_dict(payload) == original

    def test_timestamp_survives(self):
        original = BenchRecord(
            schema_version=benchtrack.SCHEMA_VERSION,
            label="x",
            recorded_at="2026-08-09T00:00:00+00:00",
            calibration_score=1.0,
            workloads=(),
        )
        assert record_from_dict(record_to_dict(original)) == original

    def test_unsupported_schema_version_rejected(self):
        payload = record_to_dict(record())
        payload["schema_version"] = 999
        with pytest.raises(BenchFormatError):
            record_from_dict(payload)

    def test_missing_field_rejected(self):
        payload = record_to_dict(record())
        del payload["calibration_score"]
        with pytest.raises(BenchFormatError):
            record_from_dict(payload)


class TestHistoryFile:
    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.json")) == []

    def test_append_grows_history(self, tmp_path):
        path = str(tmp_path / "BENCH_engine.json")
        assert write_record(path, record(label="first")) == 1
        assert write_record(path, record(label="second")) == 2
        history = load_history(path)
        assert [r.label for r in history] == ["first", "second"]

    def test_overwrite_restarts_history(self, tmp_path):
        path = str(tmp_path / "BENCH_engine.json")
        write_record(path, record(label="first"))
        write_record(path, record(label="second"))
        assert write_record(path, record(label="fresh"), append=False) == 1
        assert [r.label for r in load_history(path)] == ["fresh"]

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(BenchFormatError):
            load_history(str(path))


class TestRegressionGate:
    def test_large_drop_fails(self):
        prev = record(workloads=[workload(jps=100.0)])
        cur = record(workloads=[workload(jps=70.0)])
        failures = check_regression(prev, cur, threshold=0.20)
        assert len(failures) == 1
        assert "cell" in failures[0]

    def test_small_drop_passes(self):
        prev = record(workloads=[workload(jps=100.0)])
        cur = record(workloads=[workload(jps=90.0)])
        assert check_regression(prev, cur, threshold=0.20) == []

    def test_speedup_passes(self):
        prev = record(workloads=[workload(jps=100.0)])
        cur = record(workloads=[workload(jps=500.0)])
        assert check_regression(prev, cur) == []

    def test_calibration_normalises_across_machines(self):
        # Half the raw throughput on a machine that calibrates at half
        # the score is not a regression.
        prev = record(calibration=10.0, workloads=[workload(jps=100.0)])
        cur = record(calibration=5.0, workloads=[workload(jps=50.0)])
        assert check_regression(prev, cur) == []

    def test_respec_starts_a_new_trajectory(self):
        prev = record(workloads=[workload(jps=100.0, scale=0.08)])
        cur = record(workloads=[workload(jps=10.0, scale=1.0)])
        assert check_regression(prev, cur) == []

    def test_new_workload_is_not_gated(self):
        prev = record(workloads=[])
        cur = record(workloads=[workload(jps=1.0)])
        assert check_regression(prev, cur) == []

    def test_bad_calibration_rejected(self):
        prev = record(calibration=0.0, workloads=[workload()])
        with pytest.raises(BenchFormatError):
            check_regression(prev, record(workloads=[workload()]))


class TestMeasurement:
    TINY = WorkloadSpec(name="tiny", scale=0.02)

    def test_fixed_seed_measurement_is_deterministic(self):
        first = benchtrack.measure_workload(self.TINY, rounds=1)
        second = benchtrack.measure_workload(self.TINY, rounds=1)
        assert first.jobs == second.jobs > 0
        assert first.result_digest == second.result_digest
        assert len(first.result_digest) == 64

    def test_rounds_cross_check_digests(self):
        # rounds > 1 re-runs the same seed and asserts digest equality
        # internally; reaching the return proves the engine replayed
        # identically.
        result = benchtrack.measure_workload(self.TINY, rounds=2)
        assert result.rounds == 2
        assert result.jobs_per_second > 0

    def test_quick_matrix_is_a_subset(self):
        names = {spec.name for spec in benchtrack.WORKLOADS}
        quick = {spec.name for spec in benchtrack.QUICK_WORKLOADS}
        assert quick < names
        assert all(spec.scale <= 0.25 for spec in benchtrack.QUICK_WORKLOADS)
