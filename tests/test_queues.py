"""Unit tests for the priority wait queue."""

import pytest

from repro.errors import SchedulingError
from repro.simulator.job import Job
from repro.simulator.queues import PriorityWaitQueue

from conftest import make_job


def job(job_id, priority=0):
    return Job(make_job(job_id, priority=priority))


class TestOrdering:
    def test_pop_highest_priority_first(self):
        q = PriorityWaitQueue()
        q.push(job(1, priority=0))
        q.push(job(2, priority=100))
        q.push(job(3, priority=50))
        assert q.pop().job_id == 2
        assert q.pop().job_id == 3
        assert q.pop().job_id == 1

    def test_fifo_within_priority(self):
        q = PriorityWaitQueue()
        for i in range(5):
            q.push(job(i, priority=10))
        assert [q.pop().job_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_does_not_remove(self):
        q = PriorityWaitQueue()
        q.push(job(1))
        assert q.peek().job_id == 1
        assert len(q) == 1

    def test_peek_empty(self):
        assert PriorityWaitQueue().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            PriorityWaitQueue().pop()


class TestRemoval:
    def test_remove_middle_entry(self):
        q = PriorityWaitQueue()
        jobs = [job(i) for i in range(3)]
        for j in jobs:
            q.push(j)
        q.remove(jobs[1])
        assert len(q) == 2
        assert [q.pop().job_id, q.pop().job_id] == [0, 2]

    def test_remove_absent_raises(self):
        q = PriorityWaitQueue()
        with pytest.raises(SchedulingError):
            q.remove(job(1))

    def test_push_duplicate_raises(self):
        q = PriorityWaitQueue()
        j = job(1)
        q.push(j)
        with pytest.raises(SchedulingError):
            q.push(j)

    def test_contains(self):
        q = PriorityWaitQueue()
        j = job(1)
        assert j not in q
        q.push(j)
        assert j in q

    def test_compaction_after_many_removals(self):
        q = PriorityWaitQueue()
        jobs = [job(i) for i in range(100)]
        for j in jobs:
            q.push(j)
        for j in jobs[:90]:
            q.remove(j)
        assert len(q) == 10
        assert len(q._heap) < 50  # lazily compacted
        assert [j.job_id for j in q.iter_jobs()] == list(range(90, 100))


class TestBestMatch:
    def test_best_match_respects_priority_and_fifo(self):
        q = PriorityWaitQueue()
        q.push(job(1, priority=0))
        q.push(job(2, priority=100))
        q.push(job(3, priority=100))
        assert q.best_match(lambda j: True).job_id == 2

    def test_best_match_filters(self):
        q = PriorityWaitQueue()
        q.push(job(1, priority=100))
        q.push(job(2, priority=0))
        assert q.best_match(lambda j: j.priority < 50).job_id == 2

    def test_best_match_none(self):
        q = PriorityWaitQueue()
        q.push(job(1))
        assert q.best_match(lambda j: False) is None

    def test_best_match_skips_removed(self):
        q = PriorityWaitQueue()
        a, b = job(1, priority=100), job(2, priority=0)
        q.push(a)
        q.push(b)
        q.remove(a)
        assert q.best_match(lambda j: True).job_id == 2

    def test_iter_jobs_priority_order(self):
        q = PriorityWaitQueue()
        q.push(job(1, priority=0))
        q.push(job(2, priority=100))
        assert [j.job_id for j in q.iter_jobs()] == [2, 1]
