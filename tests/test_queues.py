"""Unit tests for the priority wait queue."""

import pytest

from repro.errors import SchedulingError
from repro.simulator.job import Job
from repro.simulator.queues import PriorityWaitQueue

from conftest import make_job


def job(job_id, priority=0):
    return Job(make_job(job_id, priority=priority))


class TestOrdering:
    def test_pop_highest_priority_first(self):
        q = PriorityWaitQueue()
        q.push(job(1, priority=0))
        q.push(job(2, priority=100))
        q.push(job(3, priority=50))
        assert q.pop().job_id == 2
        assert q.pop().job_id == 3
        assert q.pop().job_id == 1

    def test_fifo_within_priority(self):
        q = PriorityWaitQueue()
        for i in range(5):
            q.push(job(i, priority=10))
        assert [q.pop().job_id for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_does_not_remove(self):
        q = PriorityWaitQueue()
        q.push(job(1))
        assert q.peek().job_id == 1
        assert len(q) == 1

    def test_peek_empty(self):
        assert PriorityWaitQueue().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            PriorityWaitQueue().pop()


class TestRemoval:
    def test_remove_middle_entry(self):
        q = PriorityWaitQueue()
        jobs = [job(i) for i in range(3)]
        for j in jobs:
            q.push(j)
        q.remove(jobs[1])
        assert len(q) == 2
        assert [q.pop().job_id, q.pop().job_id] == [0, 2]

    def test_remove_absent_raises(self):
        q = PriorityWaitQueue()
        with pytest.raises(SchedulingError):
            q.remove(job(1))

    def test_push_duplicate_raises(self):
        q = PriorityWaitQueue()
        j = job(1)
        q.push(j)
        with pytest.raises(SchedulingError):
            q.push(j)

    def test_contains(self):
        q = PriorityWaitQueue()
        j = job(1)
        assert j not in q
        q.push(j)
        assert j in q

    def test_repush_takes_back_of_line(self):
        # Regression: a removed-then-re-pushed job object must queue at
        # the back of its priority level.  The original single-heap
        # implementation validated entries by job identity alone, so the
        # stale first entry came alive again and the job kept its old
        # FIFO position (queue-jumping ahead of jobs pushed in between).
        q = PriorityWaitQueue()
        a, b, c = job(1), job(2), job(3)
        q.push(a)
        q.push(b)
        q.remove(a)
        q.push(c)
        q.push(a)  # same object, new wait episode
        assert [j.job_id for j in q.iter_jobs()] == [2, 3, 1]
        assert [q.pop().job_id for _ in range(3)] == [2, 3, 1]

    def test_repush_yields_once_in_iter_jobs(self):
        # Regression: with identity-only validation the stale entry also
        # made iter_jobs yield the job twice, which double-removed it
        # during pool drains.
        q = PriorityWaitQueue()
        a = job(1)
        q.push(a)
        q.remove(a)
        q.push(a)
        assert [j.job_id for j in q.iter_jobs()] == [1]
        assert len(q) == 1
        q.remove(a)  # a second remove must now be an error, not a no-op
        with pytest.raises(SchedulingError):
            q.remove(a)

    def test_repush_best_match_uses_new_position(self):
        q = PriorityWaitQueue()
        a, b = job(1), job(2)
        q.push(a)
        q.push(b)
        q.remove(a)
        q.push(a)
        assert q.best_match(lambda j: True) is b
        assert q.best_schedulable(lambda spec: True) is b

    def test_compaction_after_many_removals(self):
        q = PriorityWaitQueue()
        jobs = [job(i) for i in range(100)]
        for j in jobs:
            q.push(j)
        for j in jobs[:90]:
            q.remove(j)
        assert len(q) == 10
        assert q.storage_size < 50  # lazily compacted
        assert [j.job_id for j in q.iter_jobs()] == list(range(90, 100))


class TestBestMatch:
    def test_best_match_respects_priority_and_fifo(self):
        q = PriorityWaitQueue()
        q.push(job(1, priority=0))
        q.push(job(2, priority=100))
        q.push(job(3, priority=100))
        assert q.best_match(lambda j: True).job_id == 2

    def test_best_match_filters(self):
        q = PriorityWaitQueue()
        q.push(job(1, priority=100))
        q.push(job(2, priority=0))
        assert q.best_match(lambda j: j.priority < 50).job_id == 2

    def test_best_match_none(self):
        q = PriorityWaitQueue()
        q.push(job(1))
        assert q.best_match(lambda j: False) is None

    def test_best_match_skips_removed(self):
        q = PriorityWaitQueue()
        a, b = job(1, priority=100), job(2, priority=0)
        q.push(a)
        q.push(b)
        q.remove(a)
        assert q.best_match(lambda j: True).job_id == 2

    def test_iter_jobs_priority_order(self):
        q = PriorityWaitQueue()
        q.push(job(1, priority=0))
        q.push(job(2, priority=100))
        assert [j.job_id for j in q.iter_jobs()] == [2, 1]


class TestBestSchedulable:
    """The sharded fast path must agree with the O(n) best_match scan."""

    def sig_job(self, job_id, priority, cores, memory):
        return Job(make_job(job_id, priority=priority, cores=cores, memory_gb=memory))

    def test_matches_best_match_on_signature_predicates(self):
        import random

        rng = random.Random(1234)
        q = PriorityWaitQueue()
        jobs = []
        for i in range(400):
            j = self.sig_job(
                i,
                priority=rng.choice((0, 50, 100)),
                cores=rng.choice((1, 2, 4)),
                memory=rng.choice((1.0, 4.0, 16.0)),
            )
            jobs.append(j)
            q.push(j)
        for j in rng.sample(jobs, 150):
            q.remove(j)
        for free_cores, free_mem in ((1, 2.0), (2, 8.0), (4, 64.0), (0, 0.0)):
            fits = lambda spec: spec.cores <= free_cores and spec.memory_gb <= free_mem
            fast = q.best_schedulable(fits)
            slow = q.best_match(lambda job_: fits(job_.spec))
            assert (fast is None) == (slow is None)
            if fast is not None:
                assert fast is slow

    def test_cross_shard_fifo_ordering(self):
        q = PriorityWaitQueue()
        a = self.sig_job(1, priority=10, cores=1, memory=1.0)
        b = self.sig_job(2, priority=10, cores=2, memory=1.0)
        c = self.sig_job(3, priority=10, cores=1, memory=1.0)
        for j in (a, b, c):
            q.push(j)
        # All three fit: the oldest at the shared priority wins, even
        # though a and c share a shard and b sits in another.
        assert q.best_schedulable(lambda spec: True) is a
        q.remove(a)
        assert q.best_schedulable(lambda spec: True) is b

    def test_empty_and_no_fit(self):
        q = PriorityWaitQueue()
        assert q.best_schedulable(lambda spec: True) is None
        q.push(self.sig_job(1, priority=0, cores=4, memory=16.0))
        assert q.best_schedulable(lambda spec: spec.cores <= 2) is None
