"""Tests for per-pool usage analysis (repro.analysis.pools)."""

import pytest

from repro.analysis.pools import analyze_pools
from repro.errors import ConfigurationError
from repro.simulator.results import SimulationResult, StateSample



def sample(minute, busy_by_pool, waiting_by_pool=None, total=8):
    waiting_by_pool = waiting_by_pool or [0] * len(busy_by_pool)
    return StateSample(
        minute=minute,
        busy_cores=sum(busy_by_pool),
        total_cores=total,
        running_jobs=sum(busy_by_pool),
        suspended_jobs=0,
        waiting_jobs=sum(waiting_by_pool),
        per_pool_busy=tuple(busy_by_pool),
        per_pool_waiting=tuple(waiting_by_pool),
        per_pool_suspended=tuple(0 for _ in busy_by_pool),
    )


def result_with(samples, pool_ids=("a", "b")):
    return SimulationResult(
        records=[],
        samples=samples,
        pool_ids=pool_ids,
        policy_name="NoRes",
        scheduler_name="RoundRobin",
        total_cores=8,
    )


class TestAnalyzePools:
    def test_mean_and_peak_utilization(self):
        samples = [sample(float(m), [2, 4]) for m in range(10)]
        analysis = analyze_pools(result_with(samples), pool_cores=[4, 4])
        pool_a = analysis.pool("a")
        assert pool_a.mean_utilization == pytest.approx(0.5)
        assert analysis.pool("b").peak_utilization == pytest.approx(1.0)
        assert analysis.hottest().pool_id == "b"
        assert analysis.coldest().pool_id == "a"

    def test_spread(self):
        samples = [sample(float(m), [0, 4]) for m in range(5)]
        analysis = analyze_pools(result_with(samples), pool_cores=[4, 4])
        assert analysis.mean_spread == pytest.approx(1.0)

    def test_saturation_episode_detection(self):
        # pool b saturated for minutes 10..60, cluster util stays 0.5
        samples = []
        for m in range(100):
            busy_b = 4 if 10 <= m <= 60 else 0
            samples.append(sample(float(m), [4, busy_b]))
        analysis = analyze_pools(
            result_with(samples), pool_cores=[8, 4], min_episode=30.0
        )
        episodes = [e for e in analysis.episodes if e.pool_id == "b"]
        assert len(episodes) == 1
        episode = episodes[0]
        assert episode.start_minute == 10.0
        assert episode.duration == pytest.approx(51.0, abs=1.5)

    def test_short_blips_not_reported(self):
        samples = []
        for m in range(100):
            busy_b = 4 if m in (10, 50) else 0
            samples.append(sample(float(m), [0, busy_b]))
        analysis = analyze_pools(
            result_with(samples), pool_cores=[8, 4], min_episode=10.0
        )
        assert analysis.episodes == ()

    def test_hot_while_idle_fraction(self):
        # pool b (4 cores) saturated; pool a (8 cores) empty -> cluster 33%
        samples = [sample(float(m), [0, 4], total=12) for m in range(10)]
        analysis = analyze_pools(result_with(samples), pool_cores=[8, 4])
        assert analysis.hot_while_idle_fraction == pytest.approx(1.0)

    def test_waiting_statistics(self):
        samples = [sample(float(m), [1, 1], waiting_by_pool=[m, 0]) for m in range(5)]
        analysis = analyze_pools(result_with(samples), pool_cores=[4, 4])
        assert analysis.pool("a").peak_waiting == 4
        assert analysis.pool("a").mean_waiting == pytest.approx(2.0)

    def test_inferred_pool_cores(self):
        samples = [sample(float(m), [2, 4]) for m in range(5)]
        analysis = analyze_pools(result_with(samples))
        # inferred from peak busy: a=2, b=4 -> both appear fully busy
        assert analysis.pool("a").peak_utilization == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            analyze_pools(result_with([]))
        samples = [sample(0.0, [1, 1])]
        with pytest.raises(ConfigurationError):
            analyze_pools(result_with(samples), pool_cores=[4])
        with pytest.raises(ConfigurationError):
            analyze_pools(result_with(samples), pool_cores=[4, 4]).pool("zzz")

    def test_on_real_simulation(self, smoke_scenario, smoke_result):
        pool_cores = [p.total_cores for p in smoke_scenario.cluster]
        analysis = analyze_pools(
            smoke_result,
            pool_cores=pool_cores,
            up_to_minute=smoke_scenario.trace.horizon(),
        )
        assert len(analysis.pools) == len(smoke_scenario.cluster)
        assert 0.0 <= analysis.mean_spread <= 1.0
        # the burst saturates the target pools while others idle
        assert analysis.hottest().mean_utilization > analysis.coldest().mean_utilization
