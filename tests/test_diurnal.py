"""Tests for the diurnal arrival process and its scenario integration."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import DiurnalPoissonProcess
from repro.workload.scenarios import year


class TestDiurnalPoissonProcess:
    def test_rate_peaks_at_configured_minute(self):
        process = DiurnalPoissonProcess(
            base_rate=1.0, daily_amplitude=0.5, peak_minute_of_day=840.0
        )
        assert process.rate_at(840.0) == pytest.approx(1.5)
        assert process.rate_at(840.0 - 720.0) == pytest.approx(0.5)

    def test_weekend_dip(self):
        process = DiurnalPoissonProcess(base_rate=1.0, weekend_factor=0.25)
        monday_noon = 720.0
        saturday_noon = 5 * 1440.0 + 720.0
        assert process.rate_at(saturday_noon) == pytest.approx(
            0.25 * process.rate_at(monday_noon)
        )

    def test_arrivals_sorted_and_bounded(self):
        process = DiurnalPoissonProcess(base_rate=0.5)
        times = process.arrivals(5000.0, random.Random(1))
        assert times == sorted(times)
        assert all(0 <= t < 5000.0 for t in times)

    def test_count_tracks_expectation(self):
        process = DiurnalPoissonProcess(base_rate=1.0)
        horizon = 1440.0 * 21
        count = len(process.arrivals(horizon, random.Random(2)))
        expected = process.expected_count(horizon)
        assert abs(count - expected) / expected < 0.05

    def test_weekday_busier_than_weekend(self):
        process = DiurnalPoissonProcess(base_rate=1.0, weekend_factor=0.4)
        times = process.arrivals(1440.0 * 14, random.Random(3))
        weekday = sum(1 for t in times if (int(t // 1440) % 7) < 5)
        weekend = sum(1 for t in times if (int(t // 1440) % 7) >= 5)
        # 5 weekdays at full rate vs 2 weekend days at 40%
        assert weekday / 5 > weekend / 2

    def test_zero_rate(self):
        process = DiurnalPoissonProcess(base_rate=0.0)
        assert process.arrivals(1000.0, random.Random(0)) == []
        assert process.expected_count(1000.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalPoissonProcess(base_rate=-1.0)
        with pytest.raises(ConfigurationError):
            DiurnalPoissonProcess(base_rate=1.0, daily_amplitude=1.0)
        with pytest.raises(ConfigurationError):
            DiurnalPoissonProcess(base_rate=1.0, weekend_factor=0.0)
        with pytest.raises(ConfigurationError):
            DiurnalPoissonProcess(base_rate=1.0, peak_minute_of_day=2000.0)


class TestDiurnalScenario:
    def test_year_with_diurnal_differs_from_flat(self):
        flat = year(scale=0.03, horizon=20000.0, diurnal=False)
        cyclic = year(scale=0.03, horizon=20000.0, diurnal=True)
        assert flat.trace != cyclic.trace

    def test_diurnal_day_night_contrast(self):
        scenario = year(scale=0.03, horizon=1440.0 * 14, diurnal=True)
        base = [j for j in scenario.trace if j.priority != 100]
        # afternoon (12:00-16:00) vs night (00:00-04:00) submissions
        afternoon = sum(1 for j in base if 720 <= j.submit_minute % 1440 < 960)
        night = sum(1 for j in base if 0 <= j.submit_minute % 1440 < 240)
        assert afternoon > night
