"""Unit tests for repro.workload.arrivals."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import BurstProcess, PoissonProcess


class TestPoissonProcess:
    def test_arrivals_sorted_and_in_range(self):
        process = PoissonProcess(rate=0.5)
        times = process.arrivals(1000.0, random.Random(1))
        assert times == sorted(times)
        assert all(0 <= t < 1000.0 for t in times)

    def test_rate_zero_produces_nothing(self):
        assert PoissonProcess(rate=0.0).arrivals(1000.0, random.Random(1)) == []

    def test_count_close_to_expectation(self):
        process = PoissonProcess(rate=2.0)
        count = len(process.arrivals(10000.0, random.Random(2)))
        assert abs(count - process.expected_count(10000.0)) < 500

    def test_iter_matches_list_generation_statistically(self):
        process = PoissonProcess(rate=1.0)
        lazy = list(process.iter_arrivals(500.0, random.Random(3)))
        assert lazy == sorted(lazy)
        assert all(0 <= t < 500.0 for t in lazy)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=-1.0)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=1.0).arrivals(-1.0, random.Random(0))


class TestBurstProcess:
    def test_windows_are_disjoint_and_ordered(self):
        process = BurstProcess(mean_gap=100.0, mean_duration=50.0, burst_rate=1.0)
        windows = process.windows(5000.0, random.Random(1))
        assert len(windows) > 5
        for earlier, later in zip(windows, windows[1:]):
            assert earlier.end <= later.start

    def test_arrivals_inside_windows(self):
        process = BurstProcess(mean_gap=100.0, mean_duration=50.0, burst_rate=2.0)
        for window in process.windows(5000.0, random.Random(2)):
            assert all(window.start <= t < window.end for t in window.arrivals)

    def test_flat_arrivals_sorted(self):
        process = BurstProcess(mean_gap=50.0, mean_duration=50.0, burst_rate=1.0)
        times = process.arrivals(5000.0, random.Random(3))
        assert times == sorted(times)

    def test_expected_count_reasonable(self):
        process = BurstProcess(mean_gap=100.0, mean_duration=100.0, burst_rate=1.0)
        count = len(process.arrivals(100000.0, random.Random(4)))
        expected = process.expected_count(100000.0)
        assert abs(count - expected) / expected < 0.2

    def test_deterministic_first_burst(self):
        process = BurstProcess(
            mean_gap=1e9,
            mean_duration=100.0,
            burst_rate=1.0,
            first_burst_start=500.0,
            first_burst_duration=200.0,
        )
        windows = process.windows(2000.0, random.Random(5))
        assert len(windows) == 1
        assert windows[0].start == 500.0
        assert windows[0].end == 700.0
        assert len(windows[0]) > 100  # ~200 arrivals at rate 1

    def test_first_burst_past_horizon_yields_nothing(self):
        process = BurstProcess(
            mean_gap=10.0, mean_duration=10.0, burst_rate=1.0, first_burst_start=5000.0
        )
        assert process.windows(1000.0, random.Random(6)) == []

    def test_window_duration_property(self):
        process = BurstProcess(
            mean_gap=1e9,
            mean_duration=100.0,
            burst_rate=0.0,
            first_burst_start=0.0,
            first_burst_duration=50.0,
        )
        (window,) = process.windows(1000.0, random.Random(0))
        assert window.duration == 50.0
        assert len(window) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstProcess(mean_gap=0.0, mean_duration=1.0, burst_rate=1.0)
        with pytest.raises(ConfigurationError):
            BurstProcess(mean_gap=1.0, mean_duration=0.0, burst_rate=1.0)
        with pytest.raises(ConfigurationError):
            BurstProcess(mean_gap=1.0, mean_duration=1.0, burst_rate=-1.0)
        with pytest.raises(ConfigurationError):
            BurstProcess(
                mean_gap=1.0, mean_duration=1.0, burst_rate=1.0, first_burst_start=-1.0
            )
