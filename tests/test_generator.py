"""Unit tests for repro.workload.generator."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import BurstProcess
from repro.workload.distributions import RandomStreams
from repro.workload.generator import (
    WorkloadGenerator,
    WorkloadModel,
    default_burst_runtime_model,
    default_runtime_model,
    generate_trace,
)
from repro.workload.trace import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_MEDIUM


def small_model(**overrides) -> WorkloadModel:
    defaults = dict(
        horizon_minutes=2000.0,
        base_rate=0.5,
        burst=BurstProcess(
            mean_gap=1e9,
            mean_duration=200.0,
            burst_rate=1.0,
            first_burst_start=500.0,
            first_burst_duration=200.0,
        ),
        burst_pool_choices=("pool-00", "pool-01", "pool-02"),
        burst_pools_per_burst=2,
    )
    defaults.update(overrides)
    return WorkloadModel(**defaults)


class TestWorkloadModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            small_model(horizon_minutes=0.0)
        with pytest.raises(ConfigurationError):
            small_model(base_rate=-1.0)
        with pytest.raises(ConfigurationError):
            small_model(medium_priority_fraction=1.5)
        with pytest.raises(ConfigurationError):
            small_model(burst_pools_per_burst=0)
        with pytest.raises(ConfigurationError):
            small_model(burst_pool_choices=())
        with pytest.raises(ConfigurationError):
            small_model(task_size=-1)
        with pytest.raises(ConfigurationError):
            small_model(low_priority=100, medium_priority=50, high_priority=0)
        with pytest.raises(ConfigurationError):
            small_model(group_pool_sets=())
        with pytest.raises(ConfigurationError):
            small_model(group_pool_sets=((),))

    def test_expected_job_count(self):
        model = small_model()
        expected = model.expected_job_count()
        assert expected > model.base_rate * model.horizon_minutes


class TestWorkloadGenerator:
    def test_deterministic_given_seed(self):
        model = small_model()
        a = generate_trace(model, seed=3)
        b = generate_trace(model, seed=3)
        assert a == b

    def test_different_seed_different_trace(self):
        model = small_model()
        assert generate_trace(model, seed=3) != generate_trace(model, seed=4)

    def test_job_count_near_expectation(self):
        model = small_model()
        trace = generate_trace(model, seed=1)
        assert abs(len(trace) - model.expected_job_count()) < 150

    def test_priorities_present(self):
        trace = generate_trace(small_model(), seed=1)
        priorities = {j.priority for j in trace}
        assert PRIORITY_LOW in priorities
        assert PRIORITY_HIGH in priorities
        assert PRIORITY_MEDIUM in priorities

    def test_burst_jobs_pinned_to_choice_pools(self):
        model = small_model()
        trace = generate_trace(model, seed=1)
        for job in trace:
            if job.priority == PRIORITY_HIGH:
                assert job.candidate_pools is not None
                assert len(job.candidate_pools) == 2
                assert set(job.candidate_pools) <= set(model.burst_pool_choices)

    def test_burst_jobs_in_burst_window(self):
        trace = generate_trace(small_model(), seed=1)
        for job in trace:
            if job.priority == PRIORITY_HIGH:
                assert 500.0 <= job.submit_minute < 700.0

    def test_medium_fraction_roughly_respected(self):
        trace = generate_trace(small_model(medium_priority_fraction=0.3), seed=1)
        base = [j for j in trace if j.priority != PRIORITY_HIGH]
        medium = [j for j in base if j.priority == PRIORITY_MEDIUM]
        assert 0.2 < len(medium) / len(base) < 0.4

    def test_task_grouping(self):
        trace = generate_trace(small_model(task_size=4), seed=1)
        low = [j for j in trace if j.priority == PRIORITY_LOW]
        with_task = [j for j in low if j.task_id is not None]
        assert with_task, "low-priority jobs should carry task ids"
        counts = {}
        for job in with_task:
            counts[job.task_id] = counts.get(job.task_id, 0) + 1
        # all tasks except possibly the last truncated one have full size
        sizes = sorted(counts.values(), reverse=True)
        assert sizes[0] == 4

    def test_group_pool_sets_restrict_linux_base_jobs(self):
        sets = (("pool-00", "pool-05"), ("pool-01", "pool-06"))
        trace = generate_trace(small_model(group_pool_sets=sets), seed=1)
        base_linux = [
            j
            for j in trace
            if j.priority != PRIORITY_HIGH and j.os_family == "linux"
        ]
        assert base_linux
        for job in base_linux:
            assert job.candidate_pools in sets
            assert job.user.startswith("group-")

    def test_windows_jobs_unrestricted(self):
        sets = (("pool-00",),)
        trace = generate_trace(small_model(group_pool_sets=sets), seed=1)
        windows = [
            j
            for j in trace
            if j.priority != PRIORITY_HIGH and j.os_family == "windows"
        ]
        assert windows
        assert all(j.candidate_pools is None for j in windows)

    def test_runtime_floor(self):
        trace = generate_trace(small_model(), seed=1)
        assert all(j.runtime_minutes >= 0.5 for j in trace)

    def test_model_property(self):
        model = small_model()
        generator = WorkloadGenerator(model, RandomStreams(1))
        assert generator.model is model


class TestDefaultModels:
    def test_runtime_model_heavy_tailed(self):
        model = default_runtime_model()
        # mean far above median is the heavy-tail signature
        assert model.mean() > 250.0

    def test_burst_runtime_mean(self):
        model = default_burst_runtime_model()
        assert 100.0 < model.mean() < 400.0
