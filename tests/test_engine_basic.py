"""Micro-scenario tests of the engine: exact times on tiny hand-built inputs.

All clusters here use speed_factor 1.0 so completion times are exact.
"""

import pytest

from repro.errors import SimulationError, UnschedulableJobError
from repro.simulator.engine import SimulationEngine
from repro.workload.cluster import ClusterSpec, PoolSpec

from conftest import make_cluster, make_job, make_machine, make_pool, make_trace, run_tiny


def single_machine_cluster(cores=1, memory=16.0):
    return ClusterSpec([make_pool("p0", 1, cores=cores, memory_gb=memory)])


class TestBasicExecution:
    def test_single_job_runs_to_completion(self):
        result = run_tiny([make_job(0, submit=5.0, runtime=10.0)])
        (record,) = result.records
        assert record.finish_minute == 15.0
        assert record.completion_time == 10.0
        assert record.wait_time == 0.0
        assert record.pools_visited == ("p0",)

    def test_speed_factor_shortens_execution(self):
        cluster = ClusterSpec(
            [PoolSpec("p0", (make_machine("p0/m0", "p0", speed_factor=2.0),))]
        )
        result = run_tiny([make_job(0, runtime=10.0)], cluster=cluster)
        assert result.records[0].finish_minute == 5.0

    def test_fifo_queueing_on_single_core(self):
        cluster = single_machine_cluster()
        jobs = [
            make_job(0, submit=0.0, runtime=10.0),
            make_job(1, submit=1.0, runtime=10.0),
        ]
        result = run_tiny(jobs, cluster=cluster)
        first = result.record_by_id(0)
        second = result.record_by_id(1)
        assert first.finish_minute == 10.0
        assert second.finish_minute == 20.0
        assert second.wait_time == 9.0

    def test_round_robin_spreads_across_pools(self):
        cluster = make_cluster([("p0", 1), ("p1", 1)])
        jobs = [make_job(i, submit=float(i) * 0.1, runtime=100.0) for i in range(2)]
        result = run_tiny(jobs, cluster=cluster)
        pools = {r.pools_visited[0] for r in result.records}
        assert pools == {"p0", "p1"}

    def test_completion_time_identity_without_suspension(self):
        # CT == wait + runtime for speed-1 machines and no suspension
        cluster = single_machine_cluster()
        jobs = [make_job(i, submit=0.0, runtime=7.0) for i in range(4)]
        result = run_tiny(jobs, cluster=cluster)
        for record in result.records:
            assert record.completion_time == pytest.approx(
                record.wait_time + record.runtime_minutes
            )

    def test_rejected_job_strict_raises(self):
        with pytest.raises(UnschedulableJobError):
            run_tiny([make_job(0, os_family="solaris")], strict=True)

    def test_rejected_job_lenient_records(self):
        result = run_tiny([make_job(0, os_family="solaris")], strict=False)
        (record,) = result.records
        assert record.rejected
        assert result.rejected_count() == 1

    def test_candidate_pools_respected(self):
        cluster = make_cluster([("p0", 1), ("p1", 1)])
        jobs = [make_job(0, candidate_pools=("p1",), runtime=5.0)]
        result = run_tiny(jobs, cluster=cluster)
        assert result.records[0].pools_visited == ("p1",)

    def test_engine_single_use(self):
        engine = SimulationEngine(make_trace([make_job(0)]), make_cluster())
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()

    def test_max_minutes_guard(self):
        with pytest.raises(SimulationError):
            run_tiny([make_job(0, runtime=100.0)], max_minutes=10.0)

    def test_empty_trace(self):
        result = run_tiny([])
        assert len(result.records) == 0


class TestPreemptionAndResume:
    def test_high_priority_preempts_and_victim_resumes(self):
        cluster = single_machine_cluster()
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0),
            make_job(1, submit=4.0, runtime=6.0, priority=100),
        ]
        result = run_tiny(jobs, cluster=cluster)
        victim = result.record_by_id(0)
        preemptor = result.record_by_id(1)
        assert preemptor.finish_minute == 10.0
        assert preemptor.wait_time == 0.0
        # victim: ran 4, suspended 6, ran remaining 6
        assert victim.suspension_count == 1
        assert victim.suspend_time == 6.0
        assert victim.finish_minute == 16.0
        assert victim.was_suspended

    def test_suspended_resumes_before_queued_jobs(self):
        cluster = single_machine_cluster()
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0),
            make_job(1, submit=2.0, runtime=5.0, priority=100),
            make_job(2, submit=3.0, runtime=5.0, priority=100),
        ]
        result = run_tiny(jobs, cluster=cluster)
        victim = result.record_by_id(0)
        # job 2 queues (cannot preempt equal priority); when job 1
        # finishes at 7, the resident victim resumes first (host-level
        # residency), so job 2 starts only after the victim finishes.
        assert victim.finish_minute == 15.0
        assert result.record_by_id(2).finish_minute == 20.0
        assert victim.suspend_time == 5.0

    def test_repeated_suspension(self):
        cluster = single_machine_cluster()
        jobs = [
            make_job(0, submit=0.0, runtime=20.0, priority=0),
            make_job(1, submit=5.0, runtime=5.0, priority=100),
            make_job(2, submit=12.0, runtime=5.0, priority=100),
        ]
        result = run_tiny(jobs, cluster=cluster)
        victim = result.record_by_id(0)
        assert victim.suspension_count == 2
        assert victim.suspend_time == 10.0
        assert victim.finish_minute == 30.0

    def test_memory_blocks_preemption(self):
        cluster = single_machine_cluster(cores=1, memory=4.0)
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0, memory_gb=3.0),
            make_job(1, submit=2.0, runtime=5.0, priority=100, memory_gb=2.0),
        ]
        result = run_tiny(jobs, cluster=cluster)
        # suspension would keep the victim's 3GB resident; the high
        # priority job cannot fit and must wait instead.
        victim = result.record_by_id(0)
        high = result.record_by_id(1)
        assert victim.suspension_count == 0
        assert victim.finish_minute == 10.0
        assert high.wait_time == 8.0

    def test_multi_victim_preemption(self):
        cluster = ClusterSpec([make_pool("p0", 1, cores=4, memory_gb=64.0)])
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0, cores=2),
            make_job(1, submit=0.0, runtime=10.0, priority=0, cores=2),
            make_job(2, submit=1.0, runtime=4.0, priority=100, cores=4),
        ]
        result = run_tiny(jobs, cluster=cluster)
        assert result.record_by_id(0).suspension_count == 1
        assert result.record_by_id(1).suspension_count == 1
        assert result.record_by_id(2).finish_minute == 5.0

    def test_medium_preempted_by_high(self):
        cluster = single_machine_cluster()
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=50),
            make_job(1, submit=1.0, runtime=2.0, priority=100),
        ]
        result = run_tiny(jobs, cluster=cluster)
        assert result.record_by_id(0).suspension_count == 1
        assert result.record_by_id(1).finish_minute == 3.0


class TestSampling:
    def test_samples_cover_active_horizon(self):
        result = run_tiny([make_job(0, runtime=10.0)])
        minutes = [s.minute for s in result.samples]
        assert minutes[0] == 0.0
        assert minutes[-1] >= 10.0
        # per-minute samples
        assert minutes[1] - minutes[0] == 1.0

    def test_sample_counts_running_and_busy(self):
        cluster = single_machine_cluster()
        result = run_tiny([make_job(0, runtime=10.0)], cluster=cluster)
        mid = [s for s in result.samples if 1.0 <= s.minute < 10.0]
        assert all(s.busy_cores == 1 and s.running_jobs == 1 for s in mid)
        assert all(s.utilization == 1.0 for s in mid)

    def test_suspension_visible_in_samples(self):
        cluster = single_machine_cluster()
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0),
            make_job(1, submit=2.0, runtime=5.0, priority=100),
        ]
        result = run_tiny(jobs, cluster=cluster)
        suspended_minutes = [s.minute for s in result.samples if s.suspended_jobs == 1]
        assert suspended_minutes
        assert min(suspended_minutes) >= 2.0
        assert max(suspended_minutes) <= 7.0

    def test_record_samples_disabled(self):
        result = run_tiny([make_job(0)], record_samples=False)
        assert result.samples == ()

    def test_per_pool_busy_matches_total(self):
        cluster = make_cluster([("p0", 1), ("p1", 1)])
        result = run_tiny(
            [make_job(i, runtime=20.0) for i in range(3)], cluster=cluster
        )
        for sample in result.samples:
            assert sum(sample.per_pool_busy) == sample.busy_cores
