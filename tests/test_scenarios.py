"""Unit tests for repro.workload.scenarios."""


from repro.workload.scenarios import (
    DEFAULT_WAIT_THRESHOLD,
    WEEK_MINUTES,
    busy_week,
    high_load,
    high_suspension,
    smoke,
    year,
)
from repro.workload.trace import PRIORITY_HIGH


TINY = 0.06  # scale used across these tests to keep generation fast


class TestBusyWeek:
    def test_contains_a_burst(self):
        scenario = busy_week(scale=TINY)
        high = [j for j in scenario.trace if j.priority == PRIORITY_HIGH]
        assert high, "the busy week must contain its burst"
        assert min(j.submit_minute for j in high) >= 1800.0

    def test_horizon_is_one_week(self):
        scenario = busy_week(scale=TINY)
        assert scenario.trace.horizon() <= WEEK_MINUTES

    def test_deterministic(self):
        assert busy_week(scale=TINY).trace == busy_week(scale=TINY).trace

    def test_seed_changes_trace(self):
        assert busy_week(scale=TINY, seed=1).trace != busy_week(scale=TINY, seed=2).trace

    def test_offered_load_near_target(self):
        scenario = busy_week(scale=0.15)
        base = scenario.trace.filter(lambda j: j.priority != PRIORITY_HIGH)
        load = base.offered_load(scenario.cluster.total_cores)
        assert 0.2 < load < 0.5

    def test_default_wait_threshold(self):
        assert busy_week(scale=TINY).wait_threshold == DEFAULT_WAIT_THRESHOLD == 30.0

    def test_burst_targets_large_pools(self):
        scenario = busy_week(scale=TINY)
        large = {"pool-00", "pool-01", "pool-02", "pool-03"}
        for job in scenario.trace:
            if job.priority == PRIORITY_HIGH:
                assert set(job.candidate_pools) <= large


class TestHighLoad:
    def test_same_trace_half_cores(self):
        normal = busy_week(scale=TINY)
        high = high_load(scale=TINY)
        assert high.trace == normal.trace
        assert high.cluster.total_cores < normal.cluster.total_cores
        assert high.cluster.total_machines == normal.cluster.total_machines

    def test_name_marks_high_load(self):
        assert "high-load" in high_load(scale=TINY).name


class TestHighSuspension:
    def test_more_burst_exposure_than_busy_week(self):
        hs = high_suspension(scale=TINY)
        bw = busy_week(scale=TINY)
        hs_high = sum(1 for j in hs.trace if j.priority == PRIORITY_HIGH)
        bw_high = sum(1 for j in bw.trace if j.priority == PRIORITY_HIGH)
        assert hs_high / max(len(hs.trace), 1) > bw_high / max(len(bw.trace), 1)


class TestYear:
    def test_long_horizon(self):
        scenario = year(scale=0.03, horizon=20000.0)
        assert scenario.trace.horizon() <= 20000.0
        assert scenario.trace.horizon() > 15000.0

    def test_contains_multiple_bursts(self):
        scenario = year(scale=0.03, horizon=60000.0)
        high_times = sorted(
            j.submit_minute for j in scenario.trace if j.priority == PRIORITY_HIGH
        )
        assert high_times
        # multiple bursts -> large gaps between clusters of high submissions
        gaps = [b - a for a, b in zip(high_times, high_times[1:])]
        assert max(gaps) > 1000.0


class TestSmoke:
    def test_small_and_fast(self):
        scenario = smoke()
        assert len(scenario.trace) < 2000
        assert scenario.cluster.total_machines < 30

    def test_contains_priorities(self):
        scenario = smoke()
        priorities = {j.priority for j in scenario.trace}
        assert len(priorities) >= 2
