"""Engine tests for the job-duplication extension."""

import pytest

import repro
from repro.core.policies import DuplicateSuspended
from repro.core.selectors import LowestUtilizationSelector
from repro.workload.cluster import ClusterSpec

from conftest import make_job, make_pool, run_tiny


def two_pools(cores=1):
    return ClusterSpec([make_pool("p0", 1, cores=cores), make_pool("p1", 1, cores=cores)])


def dup_policy():
    return DuplicateSuspended(LowestUtilizationSelector())


class TestDuplication:
    def test_shadow_wins_when_original_stays_suspended(self):
        cluster = two_pools()
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0, candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=60.0, priority=100, candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=dup_policy())
        victim = result.record_by_id(0)
        # original suspended at 4 (4 min progress); shadow starts fresh
        # at p1 and finishes at 14 while the original is still suspended
        # (the preemptor runs 60 minutes).
        assert victim.finish_minute == 14.0
        # loser's progress is counted as rescheduling waste
        assert victim.wasted_restart_time == pytest.approx(4.0)
        assert victim.suspension_count == 1
        assert "p1" in victim.pools_visited

    def test_original_wins_when_resuming_quickly(self):
        cluster = two_pools()
        jobs = [
            # p1 busy until t=9 so the shadow waits there
            make_job(2, submit=0.0, runtime=9.0, candidate_pools=("p1",)),
            make_job(0, submit=0.0, runtime=10.0, priority=0, candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=2.0, priority=100, candidate_pools=("p0",)),
        ]

        # util guard would block the duplicate (p1 busy); disable it
        policy = DuplicateSuspended(LowestUtilizationSelector(guard=False))
        result = run_tiny(jobs, cluster=cluster, policy=policy)
        victim = result.record_by_id(0)
        # original resumes at 6 with 6 left -> finishes at 12.
        # shadow starts at 9 and would finish at 19: original wins.
        assert victim.finish_minute == 12.0
        # the losing shadow ran from 9 to 12; that progress is waste
        assert victim.wasted_restart_time == pytest.approx(3.0)

    def test_only_one_record_per_logical_job(self):
        cluster = two_pools()
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0, candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=60.0, priority=100, candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=dup_policy())
        assert sorted(r.job_id for r in result.records) == [0, 1]

    def test_duplication_never_worse_than_no_res(self, smoke_scenario):
        baseline = repro.run_simulation(
            smoke_scenario.trace,
            smoke_scenario.cluster,
            config=repro.SimulationConfig(strict=False, record_samples=False),
        )
        duplicated = repro.run_simulation(
            smoke_scenario.trace,
            smoke_scenario.cluster,
            policy=dup_policy(),
            config=repro.SimulationConfig(strict=False, record_samples=False),
        )
        base = repro.summarize(baseline)
        dup = repro.summarize(duplicated)
        # duplication keeps the original attempt alive, so suspended
        # jobs' completion cannot regress much; allow small scheduling
        # noise from the extra load.
        if base.avg_ct_suspended and dup.avg_ct_suspended:
            assert dup.avg_ct_suspended <= base.avg_ct_suspended * 1.10

    def test_second_suspension_does_not_spawn_second_shadow(self):
        cluster = two_pools()
        jobs = [
            make_job(0, submit=0.0, runtime=30.0, priority=0, candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=3.0, priority=100, candidate_pools=("p0",)),
            make_job(2, submit=9.0, runtime=50.0, priority=100, candidate_pools=("p0",)),
        ]
        # shadow created at first suspension occupies p1; original
        # resumes at 7, suspended again at 9 -> no second shadow.
        result = run_tiny(jobs, cluster=cluster, policy=dup_policy())
        victim = result.record_by_id(0)
        assert victim.suspension_count >= 2
        # completion comes from the shadow at p1: started ~4, runs 30
        assert victim.finish_minute == pytest.approx(34.0)
