"""Tests for task-level analysis (repro.analysis.tasks)."""

import pytest

from repro.analysis.tasks import analyze_tasks
from repro.errors import ConfigurationError
from repro.simulator.results import JobRecord, SimulationResult


def record(job_id, task_id, submit, finish, suspended=False):
    return JobRecord(
        job_id=job_id,
        priority=0,
        submit_minute=submit,
        finish_minute=finish,
        runtime_minutes=finish - submit,
        cores=1,
        memory_gb=1.0,
        wait_time=0.0,
        suspend_time=10.0 if suspended else 0.0,
        wasted_restart_time=0.0,
        suspension_count=1 if suspended else 0,
        restart_count=0,
        migration_count=0,
        waiting_move_count=0,
        pools_visited=("p0",),
        rejected=False,
        task_id=task_id,
        user="u",
    )


def result(records):
    return SimulationResult(
        records=records,
        samples=[],
        pool_ids=("p0",),
        policy_name="NoRes",
        scheduler_name="RoundRobin",
        total_cores=4,
    )


class TestAnalyzeTasks:
    def test_task_completion_is_last_job(self):
        records = [
            record(0, task_id=1, submit=0.0, finish=10.0),
            record(1, task_id=1, submit=0.0, finish=50.0),
            record(2, task_id=1, submit=5.0, finish=30.0),
        ]
        analysis = analyze_tasks(result(records))
        (task,) = analysis.tasks
        assert task.job_count == 3
        assert task.completion_minute == 50.0
        assert task.completion_time == 50.0
        assert analysis.avg_task_completion == 50.0

    def test_amplification_over_member_jobs(self):
        records = [
            record(0, task_id=1, submit=0.0, finish=10.0),
            record(1, task_id=1, submit=0.0, finish=50.0),
        ]
        analysis = analyze_tasks(result(records))
        assert analysis.avg_member_job_completion == 30.0
        assert analysis.amplification == pytest.approx(50.0 / 30.0)

    def test_partial_completion_fraction(self):
        records = [
            record(0, task_id=1, submit=0.0, finish=10.0),
            record(1, task_id=1, submit=0.0, finish=20.0),
            record(2, task_id=1, submit=0.0, finish=1000.0),  # straggler
            record(3, task_id=1, submit=0.0, finish=30.0),
        ]
        full = analyze_tasks(result(records), completion_fraction=1.0)
        partial = analyze_tasks(result(records), completion_fraction=0.75)
        assert full.avg_task_completion == 1000.0
        assert partial.avg_task_completion == 30.0

    def test_straggler_suspension_flag(self):
        records = [
            record(0, task_id=1, submit=0.0, finish=10.0),
            record(1, task_id=1, submit=0.0, finish=99.0, suspended=True),
            record(2, task_id=2, submit=0.0, finish=10.0),
            record(3, task_id=2, submit=0.0, finish=20.0),
        ]
        analysis = analyze_tasks(result(records))
        assert analysis.tasks_delayed_by_suspension == 0.5
        by_id = {t.task_id: t for t in analysis.tasks}
        assert by_id[1].straggler_was_suspended
        assert not by_id[2].straggler_was_suspended
        assert by_id[1].suspended_jobs == 1

    def test_jobs_without_tasks_ignored(self):
        records = [
            record(0, task_id=None, submit=0.0, finish=10.0),
            record(1, task_id=3, submit=0.0, finish=20.0),
        ]
        analysis = analyze_tasks(result(records))
        assert len(analysis) == 1

    def test_no_tasks_raises(self):
        with pytest.raises(ConfigurationError):
            analyze_tasks(result([record(0, task_id=None, submit=0.0, finish=1.0)]))

    def test_fraction_validation(self):
        records = [record(0, task_id=1, submit=0.0, finish=1.0)]
        with pytest.raises(ConfigurationError):
            analyze_tasks(result(records), completion_fraction=0.0)
        with pytest.raises(ConfigurationError):
            analyze_tasks(result(records), completion_fraction=1.5)

    def test_on_real_simulation(self, smoke_result):
        analysis = analyze_tasks(smoke_result)
        assert len(analysis) > 10
        # waiting for all members can only take longer than the average member
        assert analysis.amplification >= 1.0
        assert 0.0 <= analysis.tasks_delayed_by_suspension <= 1.0
