"""Tests for repro.experiments (tables, figures, ablations, runner, presets).

All experiment functions run here at tiny scale so the suite stays fast;
the benchmarks run them at the calibrated scale.
"""

import pytest

import repro
from repro.errors import ConfigurationError
from repro.experiments import ablations, figures, presets, tables
from repro.experiments.runner import ExperimentRunner
from repro.simulator.config import SimulationConfig

TINY = 0.06
FAST = SimulationConfig(strict=False, record_samples=False)


class TestPresets:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert presets.table_scale() == presets.DEFAULT_TABLE_SCALE
        assert presets.seed() == presets.DEFAULT_SEED

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_SEED", "77")
        assert presets.table_scale() == 0.5
        assert presets.seed() == 77

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(ConfigurationError):
            presets.table_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ConfigurationError):
            presets.table_scale()
        monkeypatch.setenv("REPRO_SEED", "xyz")
        with pytest.raises(ConfigurationError):
            presets.seed()


class TestTables:
    def test_table1_rows_and_render(self):
        comparison = tables.table1(scale=TINY, config=FAST)
        names = [s.policy_name for s in comparison.summaries]
        assert names == ["NoRes", "ResSusUtil", "ResSusRand"]
        text = tables.render(comparison, "Table 1")
        assert "NoRes" in text and "ResSusUtil" in text

    def test_table2_uses_half_cores(self):
        t1 = tables.table1(scale=TINY, config=FAST)
        t2 = tables.table2(scale=TINY, config=FAST)
        # high load roughly doubles utilization pressure -> higher AvgCT
        assert t2.baseline().avg_ct_all > t1.baseline().avg_ct_all

    def test_table4_rows(self):
        comparison = tables.table4(scale=TINY, config=FAST)
        names = [s.policy_name for s in comparison.summaries]
        assert names == ["NoRes", "ResSusWaitUtil", "ResSusWaitRand"]

    def test_table3_and_5_use_util_scheduler(self):
        t3 = tables.table3(scale=TINY, config=FAST)
        assert all(s.scheduler_name == "UtilizationBased" for s in t3.summaries)
        t5 = tables.table5(scale=TINY, config=FAST)
        assert all(s.scheduler_name == "UtilizationBased" for s in t5.summaries)

    def test_high_suspension_has_elevated_suspend_rate(self):
        hs = tables.high_suspension_experiment(scale=TINY, config=FAST)
        t1 = tables.table1(scale=TINY, config=FAST)
        assert hs.baseline().suspend_rate > t1.baseline().suspend_rate


class TestFigures:
    def test_figure2_stats(self):
        figure = figures.figure2(scale=0.04, horizon=15000.0)
        assert figure.analysis.suspended_jobs > 0
        assert figure.cdf_points
        text = figure.render()
        assert "median suspension" in text

    def test_figure3_three_bars(self):
        figure = figures.figure3(scale=TINY)
        assert figure.strategy_names() == ["NoRes", "ResSusUtil", "ResSusRand"]
        assert figure.bars()["NoRes"].resched_time == 0.0
        text = figures.render_figure3(figure)
        assert "Figure 3" in text

    def test_figure4_series(self):
        figure = figures.figure4(scale=0.04, horizon=15000.0)
        analysis = figure.analysis
        assert len(analysis.points) > 50
        assert 0 < analysis.mean_utilization_pct < 100
        assert "utilization" in figure.render()


class TestAblations:
    def test_selector_ablation_names(self):
        comparison = ablations.selector_ablation(scale=TINY)
        names = [s.policy_name for s in comparison.summaries]
        assert names[0] == "NoRes"
        assert any("util" in n for n in names)
        assert len(names) == 6

    def test_threshold_sweep(self):
        comparison = ablations.threshold_sweep(thresholds=(15.0, 60.0), scale=TINY)
        assert len(comparison.summaries) == 3

    def test_overhead_sweep_monotone_overheadcost(self):
        summaries = ablations.overhead_sweep(fixed_minutes=(0.0, 120.0), scale=TINY)
        assert set(summaries) == {0.0, 120.0}
        # higher restart cost cannot reduce total waste
        assert summaries[120.0].avg_wct >= summaries[0.0].avg_wct * 0.8

    def test_duplication_ablation(self):
        comparison = ablations.duplication_ablation(scale=TINY)
        names = [s.policy_name for s in comparison.summaries]
        assert names == ["NoRes", "ResSusUtil", "DupSusUtil", "MigSusUtil"]

    def test_migration_ablation_keys(self):
        summaries = ablations.migration_ablation(dilations=(0.0, 0.2), scale=TINY)
        assert set(summaries) == {0.0, 0.2}


class TestRunner:
    def test_grid_dimensions(self, smoke_scenario):
        runner = ExperimentRunner(config=FAST)
        cells = runner.run_grid(
            scenarios=[smoke_scenario],
            policy_factories=[repro.no_res, repro.res_sus_util],
        )
        assert len(cells) == 2
        assert cells[0].scenario_name == "smoke"
        assert cells[0].result is None

    def test_keep_results(self, smoke_scenario):
        runner = ExperimentRunner(config=FAST, keep_results=True)
        cells = runner.run_grid([smoke_scenario], [repro.no_res])
        assert cells[0].result is not None

    def test_by_scenario_grouping(self, smoke_scenario):
        runner = ExperimentRunner(config=FAST)
        cells = runner.run_grid([smoke_scenario], [repro.no_res])
        grouped = ExperimentRunner.by_scenario(cells)
        assert list(grouped) == ["smoke"]

    def test_validation(self, smoke_scenario):
        runner = ExperimentRunner()
        with pytest.raises(ConfigurationError):
            runner.run_grid([], [repro.no_res])
        with pytest.raises(ConfigurationError):
            runner.run_grid([smoke_scenario], [])
