"""Unit tests for repro.workload.distributions."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.distributions import (
    BoundedPareto,
    Categorical,
    Constant,
    Exponential,
    LogNormal,
    Mixture,
    RandomStreams,
    Uniform,
    empirical_mean,
    lognormal_from_median,
    quantile,
)


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=1)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=42).stream("x").random()
        b = RandomStreams(seed=42).stream("x").random()
        assert a == b

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x").random()
        b = RandomStreams(seed=2).stream("x").random()
        assert a != b

    def test_spawn_creates_independent_family(self):
        streams = RandomStreams(seed=1)
        child = streams.spawn("workload")
        assert child.seed != streams.seed
        assert child.stream("a").random() != streams.stream("a").random()

    def test_spawn_is_deterministic(self):
        a = RandomStreams(seed=5).spawn("w").seed
        b = RandomStreams(seed=5).spawn("w").seed
        assert a == b

    def test_non_int_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomStreams(seed=1.5)


class TestConstant:
    def test_sample_and_mean(self):
        c = Constant(3.5)
        assert c.sample(random.Random(0)) == 3.5
        assert c.mean() == 3.5


class TestUniform:
    def test_samples_in_range(self):
        u = Uniform(2.0, 5.0)
        rng = random.Random(0)
        for _ in range(100):
            assert 2.0 <= u.sample(rng) <= 5.0

    def test_mean(self):
        assert Uniform(2.0, 6.0).mean() == 4.0

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            Uniform(5.0, 2.0)


class TestExponential:
    def test_mean_matches_parameter(self):
        e = Exponential(mean_value=10.0)
        assert e.mean() == 10.0
        assert abs(empirical_mean(e, random.Random(1), 20000) - 10.0) < 0.5

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            Exponential(mean_value=0.0)


class TestLogNormal:
    def test_analytic_mean(self):
        d = LogNormal(mu=1.0, sigma=0.5)
        assert math.isclose(d.mean(), math.exp(1.0 + 0.125))

    def test_from_median(self):
        d = lognormal_from_median(100.0, sigma=1.0)
        assert math.isclose(d.median(), 100.0)

    def test_empirical_mean_close(self):
        d = lognormal_from_median(50.0, sigma=0.5)
        measured = empirical_mean(d, random.Random(3), 50000)
        assert abs(measured - d.mean()) / d.mean() < 0.05

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            LogNormal(mu=0.0, sigma=-1.0)

    def test_bad_median_rejected(self):
        with pytest.raises(ConfigurationError):
            lognormal_from_median(0.0, sigma=1.0)


class TestBoundedPareto:
    def test_samples_within_bounds(self):
        d = BoundedPareto(alpha=1.3, low=10.0, high=1000.0)
        rng = random.Random(0)
        for _ in range(1000):
            value = d.sample(rng)
            assert 10.0 <= value <= 1000.0

    def test_analytic_mean_matches_empirical(self):
        d = BoundedPareto(alpha=1.5, low=10.0, high=500.0)
        measured = empirical_mean(d, random.Random(7), 100000)
        assert abs(measured - d.mean()) / d.mean() < 0.05

    def test_alpha_one_special_case(self):
        d = BoundedPareto(alpha=1.0, low=10.0, high=100.0)
        measured = empirical_mean(d, random.Random(9), 100000)
        assert abs(measured - d.mean()) / d.mean() < 0.05

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedPareto(alpha=0.0, low=1.0, high=2.0)
        with pytest.raises(ConfigurationError):
            BoundedPareto(alpha=1.0, low=5.0, high=2.0)
        with pytest.raises(ConfigurationError):
            BoundedPareto(alpha=1.0, low=0.0, high=2.0)


class TestMixture:
    def test_mean_is_weighted(self):
        m = Mixture(components=(Constant(10.0), Constant(20.0)), weights=(1.0, 3.0))
        assert math.isclose(m.mean(), 17.5)

    def test_samples_from_components(self):
        m = Mixture(components=(Constant(1.0), Constant(2.0)), weights=(0.5, 0.5))
        values = {m.sample(random.Random(i)) for i in range(50)}
        assert values == {1.0, 2.0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Mixture(components=(Constant(1.0),), weights=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            Mixture(components=(), weights=())
        with pytest.raises(ConfigurationError):
            Mixture(components=(Constant(1.0),), weights=(0.0,))


class TestCategorical:
    def test_returns_given_values(self):
        c = Categorical(values=("a", "b"), weights=(1.0, 1.0))
        assert c.sample(random.Random(0)) in {"a", "b"}

    def test_weighted_mean(self):
        c = Categorical(values=(2, 4), weights=(3.0, 1.0))
        assert math.isclose(c.mean(), 2.5)

    def test_zero_weight_never_sampled(self):
        c = Categorical(values=("always", "never"), weights=(1.0, 0.0))
        rng = random.Random(0)
        assert all(c.sample(rng) == "always" for _ in range(100))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Categorical(values=(), weights=())
        with pytest.raises(ConfigurationError):
            Categorical(values=(1,), weights=(-1.0,))


class TestQuantile:
    def test_median_of_two(self):
        assert quantile([1.0, 3.0], 0.5) == 2.0

    def test_endpoints(self):
        values = [1.0, 2.0, 3.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 3.0

    def test_single_value(self):
        assert quantile([5.0], 0.7) == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            quantile([], 0.5)
        with pytest.raises(ConfigurationError):
            quantile([1.0], 1.5)
