"""Unit tests for repro.workload.cluster."""

import pytest

from repro.errors import ClusterError
from repro.workload.cluster import ClusterSpec, ClusterTemplate, PoolSpec
from repro.workload.distributions import RandomStreams

from conftest import make_cluster, make_machine, make_pool


class TestMachineSpec:
    def test_validation(self):
        with pytest.raises(ClusterError):
            make_machine(cores=0)
        with pytest.raises(ClusterError):
            make_machine(memory_gb=0.0)
        with pytest.raises(ClusterError):
            make_machine(speed_factor=0.0)


class TestPoolSpec:
    def test_totals(self):
        pool = make_pool("p0", machine_count=3, cores=4, memory_gb=8.0)
        assert pool.total_cores == 12
        assert pool.total_memory_gb == 24.0
        assert len(pool) == 3

    def test_empty_pool_rejected(self):
        with pytest.raises(ClusterError):
            PoolSpec(pool_id="p0", machines=())

    def test_mismatched_pool_id_rejected(self):
        machine = make_machine(pool_id="other")
        with pytest.raises(ClusterError):
            PoolSpec(pool_id="p0", machines=(machine,))

    def test_empty_pool_id_rejected(self):
        with pytest.raises(ClusterError):
            PoolSpec(pool_id="", machines=(make_machine(pool_id=""),))


class TestClusterSpec:
    def test_lookup_and_order(self):
        cluster = make_cluster([("a", 1), ("b", 2)])
        assert cluster.pool_ids == ("a", "b")
        assert cluster.pool("b").total_cores == 8
        with pytest.raises(ClusterError):
            cluster.pool("missing")

    def test_totals(self):
        cluster = make_cluster([("a", 2), ("b", 3)])
        assert cluster.total_machines == 5
        assert cluster.total_cores == 20

    def test_duplicate_pool_ids_rejected(self):
        with pytest.raises(ClusterError):
            ClusterSpec([make_pool("a"), make_pool("a")])

    def test_duplicate_machine_ids_rejected(self):
        pool_a = PoolSpec("a", (make_machine("m0", "a"),))
        pool_b = PoolSpec("b", (make_machine("m0", "b"),))
        with pytest.raises(ClusterError):
            ClusterSpec([pool_a, pool_b])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            ClusterSpec([])

    def test_with_cores_halved(self):
        cluster = make_cluster([("a", 2)])
        halved = cluster.with_cores_halved()
        assert halved.total_cores == cluster.total_cores // 2
        # memory untouched
        assert halved.pool("a").total_memory_gb == cluster.pool("a").total_memory_gb

    def test_halving_floors_at_one_core(self):
        pool = PoolSpec("a", (make_machine("m0", "a", cores=1),))
        halved = ClusterSpec([pool]).with_cores_halved()
        assert halved.pool("a").machines[0].cores == 1

    def test_scaled_cores(self):
        cluster = make_cluster([("a", 1)])
        assert cluster.scaled_cores(2.0).total_cores == 8
        with pytest.raises(ClusterError):
            cluster.scaled_cores(0.0)

    def test_subset(self):
        cluster = make_cluster([("a", 1), ("b", 1), ("c", 1)])
        subset = cluster.subset(["c", "a"])
        assert subset.pool_ids == ("c", "a")

    def test_equality(self):
        assert make_cluster([("a", 1)]) == make_cluster([("a", 1)])
        assert make_cluster([("a", 1)]) != make_cluster([("a", 2)])


class TestClusterTemplate:
    def test_build_pool_count_and_ids(self):
        template = ClusterTemplate(scale=0.1)
        cluster = template.build(RandomStreams(1))
        assert len(cluster) == template.pool_count() == 20
        assert cluster.pool_ids[0] == "pool-00"
        assert cluster.pool_ids[-1] == "pool-19"

    def test_scale_changes_machine_counts(self):
        small = ClusterTemplate(scale=0.1).build(RandomStreams(1))
        large = ClusterTemplate(scale=0.2).build(RandomStreams(1))
        assert large.total_machines > small.total_machines

    def test_deterministic_given_seed(self):
        a = ClusterTemplate(scale=0.1).build(RandomStreams(9))
        b = ClusterTemplate(scale=0.1).build(RandomStreams(9))
        assert a == b

    def test_minimum_one_machine_per_pool(self):
        cluster = ClusterTemplate(scale=0.001).build(RandomStreams(1))
        assert all(len(pool) >= 1 for pool in cluster)

    def test_large_pool_ids(self):
        template = ClusterTemplate()
        assert template.large_pool_ids() == ("pool-00", "pool-01", "pool-02", "pool-03")

    def test_windows_pools_are_medium_class(self):
        template = ClusterTemplate(scale=0.1)
        cluster = template.build(RandomStreams(1))
        windows_ids = template.windows_pool_ids()
        assert len(windows_ids) == template.windows_pool_count
        for pool_id in windows_ids:
            machines = cluster.pool(pool_id).machines
            assert all(m.os_family == "windows" for m in machines)
        # everything else is linux
        for pool in cluster:
            if pool.pool_id not in windows_ids:
                assert all(m.os_family == "linux" for m in pool.machines)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ClusterError):
            ClusterTemplate(scale=0.0)

    def test_invalid_windows_count_rejected(self):
        with pytest.raises(ClusterError):
            ClusterTemplate(windows_pool_count=-1)
        with pytest.raises(ClusterError):
            ClusterTemplate(windows_pool_count=99)

    def test_empty_size_classes_rejected(self):
        with pytest.raises(ClusterError):
            ClusterTemplate(size_classes=())
