"""OnlineResults: streaming aggregates vs materialized summarize()."""

from __future__ import annotations

import dataclasses

import pytest

import repro
from repro.simulator.config import SimulationConfig
from repro.simulator.online import StreamingHistogram

from conftest import make_cluster, make_job, make_trace


def _mid_size_trace():
    """A few hundred deterministic jobs spanning priorities and sizes."""
    jobs = []
    for i in range(300):
        jobs.append(
            make_job(
                i,
                submit=i * 0.7,
                runtime=5.0 + (i % 37) * 1.3,
                priority=(0, 50, 100)[i % 3],
                cores=1 + (i % 4),
                memory_gb=1.0 + (i % 3),
            )
        )
    # A statically impossible job exercises the rejected path.
    jobs.append(make_job(300, submit=10.0, runtime=5.0, cores=64))
    jobs.sort(key=lambda j: j.submit_minute)
    return make_trace(
        [dataclasses.replace(j, job_id=k) for k, j in enumerate(jobs)]
    )


class TestSummaryEquality:
    @pytest.mark.parametrize("policy_name", [None, "ResSusUtil"])
    def test_streaming_summary_is_bit_identical(self, policy_name):
        from repro.core.policies import policy_from_name

        trace = _mid_size_trace()
        cluster = make_cluster((("p0", 3), ("p1", 3), ("p2", 2)))
        config = SimulationConfig(strict=False)  # the 64-core job rejects
        policy = policy_from_name(policy_name) if policy_name else None
        materialized = repro.summarize(
            repro.run_simulation(trace, cluster, policy=policy, config=config)
        )
        policy2 = policy_from_name(policy_name) if policy_name else None
        streamed = repro.run_streaming(
            iter(trace.jobs), cluster, policy=policy2, config=config
        ).summary()
        assert streamed == materialized

    def test_rejected_jobs_are_counted_not_leaked(self):
        trace = _mid_size_trace()
        cluster = make_cluster()
        sink = repro.run_streaming(
            iter(trace.jobs), cluster, config=SimulationConfig(strict=False)
        )
        assert sink.rejected_count == sink.summary().rejected_count
        assert sink.summary().rejected_count >= 1
        assert sink.summary().job_count == len(trace.jobs)


class TestStreamingHistogram:
    def test_counts_and_mean(self):
        hist = StreamingHistogram(edges=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            hist.add(v)
        assert sum(hist.counts) == 4
        assert hist.counts == (1, 1, 1, 1)
        assert hist.mean() == pytest.approx(138.875)
        assert hist.minimum == 0.5
        assert hist.maximum == 500.0

    def test_quantile_is_monotone(self):
        hist = StreamingHistogram()
        for v in range(1, 1000):
            hist.add(float(v))
        q50 = hist.quantile(0.5)
        q90 = hist.quantile(0.9)
        q99 = hist.quantile(0.99)
        assert q50 <= q90 <= q99

    def test_render_mentions_label_and_counts(self):
        hist = StreamingHistogram()
        hist.add(5.0)
        rendered = hist.render("completion minutes")
        assert rendered.startswith("completion minutes: n=1")

    def test_bad_edges_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            StreamingHistogram(edges=(5.0, 1.0))
