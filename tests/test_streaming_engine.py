"""Streaming engine path: equivalence with the materialized path."""

from __future__ import annotations

import pytest

import repro
from repro.errors import SimulationError
from repro.faults import FaultConfig, MachineChurn
from repro.simulator.config import SimulationConfig
from repro.workload.distributions import Exponential
from repro.workload.traces import TraceReplaySpec, default_replay_spec, generate_swf_fixture

from conftest import make_cluster, make_job, make_trace


class TestEquivalence:
    def test_streaming_matches_materialized_records(self):
        jobs = [
            make_job(i, submit=i * 2.0, runtime=20.0 + (i % 5) * 7,
                     priority=(0, 100)[i % 2], cores=1 + i % 3)
            for i in range(60)
        ]
        materialized = repro.run_simulation(make_trace(jobs), make_cluster())
        sink = repro.OnlineResults(keep_samples=True)
        streamed = repro.run_streaming(iter(jobs), make_cluster(), sink=sink)
        assert streamed.summary() == repro.summarize(materialized)
        assert len(streamed.samples) == len(materialized.samples)

    def test_streaming_matches_under_faults(self):
        jobs = [make_job(i, submit=i * 3.0, runtime=30.0) for i in range(40)]
        config = SimulationConfig(
            faults=FaultConfig(
                machine_churn=MachineChurn(
                    mtbf=Exponential(200.0), mttr=Exponential(15.0)
                )
            )
        )
        materialized = repro.run_simulation(
            make_trace(jobs), make_cluster(), config=config
        )
        streamed = repro.run_streaming(iter(jobs), make_cluster(), config=config)
        assert streamed.summary() == repro.summarize(materialized)

    def test_replay_feed_drives_the_engine_end_to_end(self, tmp_path):
        path = tmp_path / "t.swf"
        generate_swf_fixture(path, 400, seed=6, target_cores=60)
        template = repro.ClusterTemplate(scale=0.02)
        cluster = template.build(repro.RandomStreams(2010))
        spec = default_replay_spec(template)
        sink = repro.run_streaming(spec.replay(path, "swf"), cluster)
        summary = sink.summary()
        assert summary.job_count > 0
        assert summary.completed_count + summary.rejected_count <= summary.job_count
        # Replaying the identical feed is bit-identical.
        again = repro.run_streaming(
            default_replay_spec(template).replay(path, "swf"),
            template.build(repro.RandomStreams(2010)),
        )
        assert again.summary() == summary


class TestFeedValidation:
    def test_unsorted_feed_raises(self):
        jobs = [make_job(0, submit=50.0), make_job(1, submit=10.0)]
        with pytest.raises(SimulationError, match="not sorted"):
            repro.run_streaming(iter(jobs), make_cluster())

    def test_empty_feed_finalizes_cleanly(self):
        sink = repro.run_streaming(iter(()), make_cluster())
        summary = sink.summary()
        assert summary.job_count == 0
        assert summary.completed_count == 0

    def test_quantized_replay_bounds_engine_caches(self):
        # The constant-memory contract end to end: feed many jobs with
        # near-unique raw memory through a quantizing spec and check the
        # engine's signature caches stay small.
        import io

        from repro.simulator.engine import SimulationEngine
        from repro.workload.traces.swf import SWFJob, write_swf

        raw = [
            SWFJob(
                job_number=i, submit_time=i * 30, wait_time=-1, run_time=300,
                allocated_procs=1, avg_cpu_time=-1, used_memory_kb=900_000 + i,
                requested_procs=1, requested_time=300,
                requested_memory_kb=900_000 + i, status=1, user_id=i % 8,
                group_id=0, executable=1, queue=0, partition=1,
                preceding_job=-1, think_time=-1,
            )
            for i in range(1, 501)
        ]
        buffer = io.StringIO()
        write_swf(buffer, raw)
        feed = TraceReplaySpec().replay_swf(io.StringIO(buffer.getvalue()))
        cluster = make_cluster()
        engine = SimulationEngine(iter(feed), cluster)
        engine.run()
        assert len(engine._signature_pools) <= 4
        assert len(engine._eligibility_cache) <= 4
