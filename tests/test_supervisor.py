"""Tests for the self-healing fleet supervisor.

The state machine under test (see ``repro/fabric/supervisor.py``):

* a crashed worker is restarted with exponential backoff and
  deterministic jitter;
* a slot that crash-loops past its restart budget is quarantined;
* a healthy-then-dead worker does not accumulate a crash streak;
* the fleet grows toward the remaining work and shrinks by attrition,
  bounded by ``min_workers``/``max_workers`` and a hard spawn budget;
* clean exits with work remaining trigger one re-scan, then retire;
* a drain request terminates the fleet gracefully.

Everything here drives the supervisor with fake clocks and fake
process handles; the chaos harness (``tests/test_chaos.py``) runs the
same machine against real SIGKILLed subprocesses.
"""

from __future__ import annotations

import pytest

from repro.fabric import build_grid, run_grid_fabric
from repro.fabric.supervisor import (
    FleetSupervisor,
    SupervisedWorkerBackend,
    SupervisorConfig,
    deterministic_jitter,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class FakeHandle:
    """A process handle whose death is scripted.

    ``lifetime`` is how long after spawn ``poll()`` starts reporting
    ``returncode`` (None = immortal until terminated).
    """

    def __init__(self, clock, lifetime=None, returncode=-9, pid=4242):
        self._clock = clock
        self._born = clock()
        self._lifetime = lifetime
        self._returncode = returncode
        self.pid = pid
        self.terminated = False
        self.killed = False

    def poll(self):
        if self.terminated or self.killed:
            return -15
        if self._lifetime is not None and (
            self._clock() - self._born >= self._lifetime
        ):
            return self._returncode
        return None

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.killed = True


def make_supervisor(clock, spawn, config=None, **kwargs):
    defaults = dict(initial_workers=1, min_workers=1, max_workers=1)
    defaults.update(kwargs)
    return FleetSupervisor(
        spawn,
        config=config or SupervisorConfig(
            backoff_base_seconds=1.0,
            backoff_factor=2.0,
            backoff_max_seconds=60.0,
            jitter_fraction=0.0,
            restart_budget=3,
            healthy_uptime_seconds=100.0,
            rescan_budget=1,
            # Exactly one slot's crash-loop: quarantined/retired
            # capacity is normally *replaced* by _resize while work
            # remains, and an unbounded budget would let these tests
            # watch replacement slots crash-loop forever.
            spawn_budget_factor=4,
            drain_timeout_seconds=5.0,
        ),
        name="test-fleet",
        clock=clock,
        sleep=clock.sleep,
        on_event=lambda kind, msg: None,
        **defaults,
    )


class TestJitter:
    def test_stable_and_bounded(self):
        values = {deterministic_jitter(f"run|{i}|0", 0.25) for i in range(64)}
        assert all(-0.25 <= v <= 0.25 for v in values)
        assert len(values) > 32  # actually spreads
        assert deterministic_jitter("run|3|1", 0.25) == deterministic_jitter(
            "run|3|1", 0.25
        )

    def test_zero_fraction_is_zero(self):
        assert deterministic_jitter("anything", 0.0) == 0.0


class TestCrashLoop:
    def test_restart_budget_then_quarantine(self):
        clock = FakeClock()
        spawn_times = []

        def spawn(slot, incarnation):
            spawn_times.append((incarnation, clock()))
            return FakeHandle(clock, lifetime=0.1)  # dies almost at once

        sup = make_supervisor(clock, spawn)
        stats = sup.run(lambda: 5, poll_interval=0.1)

        # incarnations 0..3 spawned: the original plus restart_budget
        # restarts; the 4th crash (streak 4 > budget 3) quarantines.
        assert [inc for inc, _ in spawn_times] == [0, 1, 2, 3]
        assert stats.restarts == 3
        assert stats.quarantined == 1
        assert stats.first_failure_at is not None
        assert stats.completed_at is None  # grid never finished

    def test_backoff_gaps_grow_exponentially(self):
        clock = FakeClock()
        spawn_times = []

        def spawn(slot, incarnation):
            spawn_times.append(clock())
            return FakeHandle(clock, lifetime=0.0)

        sup = make_supervisor(clock, spawn)
        sup.run(lambda: 5, poll_interval=0.01)

        gaps = [b - a for a, b in zip(spawn_times, spawn_times[1:])]
        # Scheduled delays are 1, 2, 4 (base 1.0, factor 2, no jitter);
        # observed gaps are quantised up by at most one poll interval.
        assert len(gaps) == 3
        for gap, scheduled in zip(gaps, (1.0, 2.0, 4.0)):
            assert scheduled <= gap <= scheduled + 0.05

    def test_jitter_skews_backoff_deterministically(self):
        def run_once():
            clock = FakeClock()
            spawn_times = []

            def spawn(slot, incarnation):
                spawn_times.append(clock())
                return FakeHandle(clock, lifetime=0.0)

            config = SupervisorConfig(
                backoff_base_seconds=1.0, backoff_factor=2.0,
                backoff_max_seconds=60.0, jitter_fraction=0.25,
                restart_budget=2, healthy_uptime_seconds=100.0,
            )
            sup = make_supervisor(clock, spawn, config=config)
            sup.run(lambda: 5, poll_interval=0.01)
            return spawn_times

        first, second = run_once(), run_once()
        assert first == second  # replays exactly
        gaps = [b - a for a, b in zip(first, first[1:])]
        assert any(abs(gap - round(gap)) > 0.01 for gap in gaps)  # skewed

    def test_healthy_uptime_resets_streak(self):
        clock = FakeClock()
        incarnations = []

        def spawn(slot, incarnation):
            incarnations.append(incarnation)
            return FakeHandle(clock, lifetime=200.0)  # healthy, then dies

        config = SupervisorConfig(
            backoff_base_seconds=0.1, backoff_factor=2.0,
            backoff_max_seconds=1.0, jitter_fraction=0.0,
            restart_budget=2, healthy_uptime_seconds=100.0,
            spawn_budget_factor=5,
        )
        sup = make_supervisor(clock, spawn, config=config)
        stats = sup.run(lambda: 5, poll_interval=1.0)

        # Every death follows 200s of honest work, so the streak never
        # exceeds 1 and nobody is quarantined; the run ends only when
        # the hard spawn budget (5 x max_workers=1) is exhausted.
        assert stats.quarantined == 0
        assert stats.spawned == 5
        assert len(incarnations) == 5


class TestElasticity:
    def test_grows_toward_remaining_work(self):
        clock = FakeClock()
        handles = []

        def spawn(slot, incarnation):
            handle = FakeHandle(clock)  # immortal
            handles.append((slot, handle))
            return handle

        remaining = iter([10, 10, 0])
        sup = make_supervisor(
            clock, spawn, initial_workers=1, min_workers=1, max_workers=4
        )
        stats = sup.run(lambda: next(remaining), poll_interval=0.1)

        assert stats.grown == 3  # 1 initial + 3 grown = 4 = max_workers
        assert sorted(slot for slot, _ in handles) == [0, 1, 2, 3]
        assert stats.completed_at is not None

    def test_attrition_shrink_when_fleet_covers_work(self):
        clock = FakeClock()
        handles = {}

        def spawn(slot, incarnation):
            # Slot 1's first incarnation dies quickly; slot 0 lives.
            lifetime = 0.5 if slot == 1 else None
            handle = FakeHandle(clock, lifetime=lifetime)
            handles[(slot, incarnation)] = handle
            return handle

        remaining = iter([1, 1, 1, 1, 0])
        sup = make_supervisor(
            clock, spawn, initial_workers=2, min_workers=1, max_workers=2
        )
        stats = sup.run(lambda: next(remaining), poll_interval=0.3)

        # One cell left and a surviving worker to cover it: the dead
        # slot is retired by attrition, not restarted.
        assert stats.shrunk == 1
        assert stats.restarts == 0
        assert (1, 1) not in handles

    def test_explicit_grow_and_shrink_respect_bounds(self):
        clock = FakeClock()

        def spawn(slot, incarnation):
            return FakeHandle(clock)

        sup = make_supervisor(
            clock, spawn, initial_workers=2, min_workers=1, max_workers=3
        )
        # Prime two slots without entering the run loop.
        sup._resize(2, clock())
        assert sup.grow(5) == 1  # clamped at max_workers=3
        assert sup.shrink(5) == 2  # clamped at min_workers=1
        assert sup._active_count() == 1

    def test_spawn_budget_bounds_every_recovery_loop(self):
        clock = FakeClock()
        spawned = []

        def spawn(slot, incarnation):
            spawned.append((slot, incarnation))
            return FakeHandle(clock, lifetime=0.0)

        config = SupervisorConfig(
            backoff_base_seconds=0.01, backoff_factor=1.0,
            backoff_max_seconds=0.01, jitter_fraction=0.0,
            restart_budget=10_000, healthy_uptime_seconds=1e9,
            spawn_budget_factor=3,
        )
        sup = make_supervisor(
            clock, spawn, config=config, initial_workers=2,
            min_workers=1, max_workers=2,
        )
        stats = sup.run(lambda: 5, poll_interval=0.01)
        assert stats.spawned == 6  # 3 x max_workers, then exhausted
        assert len(spawned) == 6


class TestCleanExits:
    def test_clean_exit_with_work_remaining_rescans_once(self):
        clock = FakeClock()
        spawns = []

        def spawn(slot, incarnation):
            spawns.append(incarnation)
            return FakeHandle(clock, lifetime=0.5, returncode=0)

        config = SupervisorConfig(
            backoff_base_seconds=1.0, backoff_factor=2.0,
            backoff_max_seconds=60.0, jitter_fraction=0.0,
            restart_budget=3, healthy_uptime_seconds=100.0,
            rescan_budget=1, spawn_budget_factor=2,
        )
        sup = make_supervisor(clock, spawn, config=config)
        stats = sup.run(lambda: 5, poll_interval=0.3)

        # First clean exit -> one re-scan incarnation (counted as a
        # restart, but never as a failure); its clean exit retires the
        # slot (rescan budget 1) and the fleet is empty.
        assert spawns == [0, 1]
        assert stats.shrunk == 1
        assert stats.restarts == 1
        assert stats.first_failure_at is None
        assert stats.quarantined == 0


class TestCompletionAndDrain:
    def test_completion_drains_fleet_and_stamps_recovery(self):
        clock = FakeClock()
        handles = []

        def spawn(slot, incarnation):
            handle = FakeHandle(clock)
            handles.append(handle)
            return handle

        remaining = iter([3, 2, 0])
        sup = make_supervisor(clock, spawn)
        stats = sup.run(lambda: next(remaining), poll_interval=0.1)

        assert stats.completed_at is not None
        assert stats.recovery_seconds() == 0.0  # nothing ever died
        assert handles[0].terminated  # drained, not abandoned

    def test_recovery_window_spans_failure_to_completion(self):
        clock = FakeClock()

        def spawn(slot, incarnation):
            # First incarnation dies at t=1; the restart is immortal.
            lifetime = 1.0 if incarnation == 0 else None
            return FakeHandle(clock, lifetime=lifetime)

        calls = {"n": 0}

        def status():
            calls["n"] += 1
            return 0 if clock() >= 20.0 else 4

        config = SupervisorConfig(
            backoff_base_seconds=1.0, backoff_factor=2.0,
            backoff_max_seconds=60.0, jitter_fraction=0.0,
            restart_budget=3, healthy_uptime_seconds=0.5,
        )
        sup = make_supervisor(clock, spawn, config=config)
        stats = sup.run(status, poll_interval=0.5)
        assert stats.restarts == 1
        assert stats.recovery_seconds() == pytest.approx(19.0, abs=1.0)

    def test_drain_request_terminates_and_reports(self):
        clock = FakeClock()
        handles = []

        def spawn(slot, incarnation):
            handle = FakeHandle(clock)
            handles.append(handle)
            return handle

        sup = make_supervisor(clock, spawn)

        calls = {"n": 0}

        def status():
            calls["n"] += 1
            if calls["n"] == 3:
                sup.request_drain()  # the SIGTERM hook fires mid-run
            return 7

        stats = sup.run(status, poll_interval=0.1)
        assert stats.drained
        assert handles[0].terminated


@pytest.mark.slow
class TestSupervisedBackendIntegration:
    def test_happy_fleet_matches_serial(self, tmp_path):
        from repro.experiments.cache import ResultCache, stable_hash
        from repro.experiments.parallel import run_grid_parallel

        tasks = build_grid("smoke")
        serial = run_grid_parallel(tasks, n_workers=1)
        backend = SupervisedWorkerBackend(
            min_workers=1, max_workers=2, poll_interval=0.05
        )
        report = run_grid_fabric(
            build_grid("smoke"), backend, ResultCache(tmp_path),
            poll_interval=0.05,
        )
        assert report.ok
        assert [stable_hash(o.summary) for o in report.completed] == [
            stable_hash(o.summary) for o in serial.completed
        ]
        stats = backend.last_supervisor_stats
        assert stats is not None
        assert stats.quarantined == 0
        assert not stats.drained
        assert backend.last_swept_leases == 0
