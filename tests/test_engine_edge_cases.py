"""Engine edge cases: multiple VPMs, sampling intervals, OS routing,
restart-overhead arrivals racing other events, and pathological inputs.
"""

import pytest

import repro
from repro.core.overheads import RestartOverhead
from repro.core.policies import RescheduleSuspendedAndWaiting
from repro.core.selectors import LowestUtilizationSelector
from repro.errors import SimulationError
from repro.simulator.engine import SimulationEngine
from repro.workload.cluster import ClusterSpec

from conftest import make_cluster, make_job, make_pool, make_trace, run_tiny


class TestMultipleVpms:
    def test_jobs_partition_across_vpms(self):
        # two VPMs with independent round-robin cursors still place all jobs
        cluster = make_cluster([("p0", 2), ("p1", 2)])
        jobs = [make_job(i, submit=float(i) * 0.01, runtime=5.0) for i in range(8)]
        result = run_tiny(jobs, cluster=cluster, vpm_count=2)
        assert len(result.records) == 8
        assert all(not r.rejected for r in result.records)

    def test_many_vpms_more_than_jobs(self):
        result = run_tiny([make_job(0)], vpm_count=5)
        assert len(result.records) == 1


class TestSamplingIntervals:
    def test_coarse_interval_fewer_samples(self):
        fine = run_tiny([make_job(0, runtime=100.0)], sample_interval=1.0)
        coarse = run_tiny([make_job(0, runtime=100.0)], sample_interval=10.0)
        assert len(coarse.samples) < len(fine.samples)
        assert coarse.samples[1].minute - coarse.samples[0].minute == 10.0

    def test_fractional_interval(self):
        result = run_tiny([make_job(0, runtime=2.0)], sample_interval=0.5)
        minutes = [s.minute for s in result.samples]
        assert minutes[1] - minutes[0] == 0.5


class TestOsRouting:
    def make_mixed_cluster(self):
        return ClusterSpec(
            [
                make_pool("linux-pool", 2, os_family="linux"),
                make_pool("win-pool", 2, os_family="windows"),
            ]
        )

    def test_windows_jobs_land_on_windows_pools(self):
        cluster = self.make_mixed_cluster()
        jobs = [
            make_job(0, os_family="windows", runtime=5.0),
            make_job(1, os_family="linux", runtime=5.0),
        ]
        result = run_tiny(jobs, cluster=cluster)
        assert result.record_by_id(0).pools_visited == ("win-pool",)
        assert result.record_by_id(1).pools_visited == ("linux-pool",)

    def test_selector_never_targets_ineligible_pool(self):
        # a windows victim's only alternate is a linux pool -> must stay
        cluster = ClusterSpec(
            [
                make_pool("win-pool", 1, cores=1, os_family="windows"),
                make_pool("linux-pool", 1, cores=1, os_family="linux"),
            ]
        )
        jobs = [
            make_job(0, os_family="windows", runtime=10.0, priority=0),
            make_job(1, submit=4.0, os_family="windows", runtime=6.0, priority=100),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=repro.res_sus_rand())
        victim = result.record_by_id(0)
        assert victim.restart_count == 0
        assert victim.pools_visited == ("win-pool",)


class TestOverheadRaces:
    def test_in_transit_job_finishes_after_late_arrival(self):
        # the restarted job's arrival event lands after other traffic
        cluster = ClusterSpec(
            [make_pool("p0", 1, cores=1), make_pool("p1", 1, cores=1)]
        )
        policy = RescheduleSuspendedAndWaiting(
            LowestUtilizationSelector(), wait_threshold=5.0
        )
        jobs = [
            make_job(0, submit=0.0, runtime=20.0, priority=0,
                     candidate_pools=("p0", "p1")),
            make_job(1, submit=2.0, runtime=30.0, priority=100,
                     candidate_pools=("p0",)),
            make_job(2, submit=3.0, runtime=4.0, priority=0,
                     candidate_pools=("p1",)),
        ]
        result = run_tiny(
            jobs,
            cluster=cluster,
            policy=policy,
            restart_overhead=RestartOverhead(fixed_minutes=10.0),
        )
        victim = result.record_by_id(0)
        # suspended at 2, in transit until 12; job 2 used p1 from 3-7;
        # the victim restarts on p1 at 12 and runs its full 20 minutes.
        assert victim.restart_count == 1
        assert victim.finish_minute == pytest.approx(32.0)

    def test_wait_timer_spans_transit(self):
        # a job moved into a busy pool re-arms its timer there
        cluster = ClusterSpec(
            [make_pool("p0", 1, cores=1), make_pool("p1", 1, cores=1)]
        )
        policy = RescheduleSuspendedAndWaiting(
            LowestUtilizationSelector(guard=False), wait_threshold=5.0
        )
        jobs = [
            make_job(0, submit=0.0, runtime=100.0, candidate_pools=("p0",)),
            make_job(1, submit=0.0, runtime=100.0, candidate_pools=("p1",)),
            make_job(2, submit=1.0, runtime=10.0, candidate_pools=("p0", "p1")),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=policy)
        mover = result.record_by_id(2)
        # both pools stay busy until 100; the job ping-pongs between
        # the queues (a move every threshold) until one frees.
        assert mover.waiting_move_count >= 2
        assert mover.finish_minute == pytest.approx(110.0)


class TestPathologicalInputs:
    def test_zero_core_cluster_impossible(self):
        # machines always have >= 1 core; a 1-core cluster still works
        cluster = ClusterSpec([make_pool("p0", 1, cores=1)])
        result = run_tiny([make_job(i, runtime=1.0) for i in range(5)], cluster=cluster)
        assert len(result.records) == 5

    def test_simultaneous_submissions(self):
        cluster = ClusterSpec([make_pool("p0", 1, cores=4)])
        jobs = [make_job(i, submit=1.0, runtime=5.0) for i in range(4)]
        result = run_tiny(jobs, cluster=cluster)
        assert all(r.finish_minute == 6.0 for r in result.records)

    def test_job_larger_than_any_machine_rejected(self):
        result = run_tiny([make_job(0, cores=64)], strict=False)
        assert result.records[0].rejected

    def test_tiny_runtime(self):
        result = run_tiny([make_job(0, runtime=0.5)])
        assert result.records[0].finish_minute == pytest.approx(0.5)

    def test_engine_rejects_negative_progression(self):
        # directly build an engine and confirm single-use enforcement
        engine = SimulationEngine(make_trace([make_job(0)]), make_cluster())
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()
