"""Shared fixtures and builders for the test suite.

The builders create minimal, fully deterministic clusters and traces so
engine tests can assert exact times and states; the session-scoped
``smoke_*`` fixtures run the small stochastic scenario once and share
its results across integration tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest

import repro
from repro.simulator.config import SimulationConfig
from repro.workload.cluster import ClusterSpec, MachineSpec, PoolSpec
from repro.workload.trace import Trace, TraceJob


def make_machine(
    machine_id: str = "p0/m0",
    pool_id: str = "p0",
    cores: int = 4,
    memory_gb: float = 16.0,
    speed_factor: float = 1.0,
    os_family: str = "linux",
) -> MachineSpec:
    """A machine spec with sensible defaults for unit tests."""
    return MachineSpec(
        machine_id=machine_id,
        pool_id=pool_id,
        cores=cores,
        memory_gb=memory_gb,
        speed_factor=speed_factor,
        os_family=os_family,
    )


def make_pool(
    pool_id: str = "p0",
    machine_count: int = 2,
    cores: int = 4,
    memory_gb: float = 16.0,
    speed_factor: float = 1.0,
    os_family: str = "linux",
) -> PoolSpec:
    """A pool of identical machines."""
    machines = tuple(
        make_machine(
            machine_id=f"{pool_id}/m{i}",
            pool_id=pool_id,
            cores=cores,
            memory_gb=memory_gb,
            speed_factor=speed_factor,
            os_family=os_family,
        )
        for i in range(machine_count)
    )
    return PoolSpec(pool_id=pool_id, machines=machines)


def make_cluster(pool_sizes: Sequence[Tuple[str, int]] = (("p0", 2), ("p1", 2))) -> ClusterSpec:
    """A cluster of identical 4-core/16GB pools, sized per ``pool_sizes``."""
    return ClusterSpec([make_pool(pool_id, count) for pool_id, count in pool_sizes])


def make_job(
    job_id: int,
    submit: float = 0.0,
    runtime: float = 10.0,
    priority: int = 0,
    cores: int = 1,
    memory_gb: float = 1.0,
    os_family: str = "linux",
    candidate_pools: Optional[Tuple[str, ...]] = None,
) -> TraceJob:
    """A trace job with unit-test-friendly defaults."""
    return TraceJob(
        job_id=job_id,
        submit_minute=submit,
        runtime_minutes=runtime,
        priority=priority,
        cores=cores,
        memory_gb=memory_gb,
        os_family=os_family,
        candidate_pools=candidate_pools,
    )


def make_trace(jobs: List[TraceJob]) -> Trace:
    """A trace from explicit jobs."""
    return Trace(jobs)


def run_tiny(
    jobs: List[TraceJob],
    cluster: Optional[ClusterSpec] = None,
    policy=None,
    initial_scheduler=None,
    **config_kwargs,
):
    """Run a simulation over explicit jobs with invariant checking on."""
    config_kwargs.setdefault("check_invariants", True)
    config_kwargs.setdefault("strict", True)
    return repro.run_simulation(
        make_trace(jobs),
        cluster or make_cluster(),
        policy=policy,
        initial_scheduler=initial_scheduler,
        config=SimulationConfig(**config_kwargs),
    )


@pytest.fixture(scope="session")
def smoke_scenario():
    """The small stochastic scenario, built once per test session."""
    return repro.smoke(seed=7)


@pytest.fixture(scope="session")
def smoke_result(smoke_scenario):
    """A NoRes run of the smoke scenario with invariant checks enabled."""
    return repro.run_simulation(
        smoke_scenario.trace,
        smoke_scenario.cluster,
        config=SimulationConfig(check_invariants=True, strict=False),
    )


@pytest.fixture(scope="session")
def smoke_resched_result(smoke_scenario):
    """A ResSusWaitUtil run of the smoke scenario."""
    return repro.run_simulation(
        smoke_scenario.trace,
        smoke_scenario.cluster,
        policy=repro.res_sus_wait_util(),
        config=SimulationConfig(check_invariants=True, strict=False),
    )
