"""Tests for the content-addressed on-disk result cache.

The hygiene contract (exercised by CI's cache-hygiene step): a corrupt,
truncated, stale, or otherwise invalid entry is *detected*, *evicted*
from disk, and transparently *recomputed* — never crashes, never
returns garbage.
"""

from __future__ import annotations

import hashlib
import pickle

import pytest

import repro
from repro.errors import CacheError, ConfigurationError
from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    cell_cache_key,
    engine_salt,
    open_cache,
    stable_hash,
)
from repro.experiments.runner import ExperimentRunner
from repro.simulator.config import SimulationConfig
from repro.simulator.observer import EventLog
from repro.telemetry import Instrumentation, MetricsRegistry

FAST = SimulationConfig(strict=False, record_samples=False)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash({"a": 1.5, "b": (1, 2)}) == stable_hash(
            {"b": (1, 2), "a": 1.5}
        )

    def test_distinguishes_values(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})
        assert stable_hash(1.0) != stable_hash(1)


class TestCellKey:
    def test_key_changes_with_policy(self, smoke_scenario):
        base = cell_cache_key(smoke_scenario, repro.no_res(), None, FAST)
        other = cell_cache_key(smoke_scenario, repro.res_sus_util(), None, FAST)
        assert base != other

    def test_key_changes_with_config(self, smoke_scenario):
        base = cell_cache_key(smoke_scenario, repro.no_res(), None, FAST)
        slower = cell_cache_key(
            smoke_scenario,
            repro.no_res(),
            None,
            SimulationConfig(strict=False, record_samples=False, sample_interval=5.0),
        )
        assert base != slower

    def test_key_changes_with_scenario_content(self):
        a = cell_cache_key(repro.smoke(seed=7), repro.no_res(), None, FAST)
        b = cell_cache_key(repro.smoke(seed=8), repro.no_res(), None, FAST)
        assert a != b

    def test_key_stable_for_equivalent_inputs(self):
        a = cell_cache_key(repro.smoke(seed=7), repro.no_res(), None, FAST)
        b = cell_cache_key(repro.smoke(seed=7), repro.no_res(), None, FAST)
        assert a == b

    def test_key_includes_engine_salt(self, smoke_scenario):
        key = cell_cache_key(smoke_scenario, repro.no_res(), None, FAST)
        assert key is not None and len(key) == 64
        assert repro.__version__ in engine_salt()

    def test_observer_keyword_raises(self, smoke_scenario):
        with pytest.raises(ConfigurationError, match="Instrumentation\\(observers="):
            SimulationConfig(strict=False, observer=EventLog())

    def test_observer_instrumentation_blocks_caching(self, smoke_scenario):
        config = SimulationConfig(
            strict=False, instrumentation=Instrumentation(observers=(EventLog(),))
        )
        assert cell_cache_key(smoke_scenario, repro.no_res(), None, config) is None

    def test_instrumentation_blocks_caching(self, smoke_scenario):
        config = SimulationConfig(
            strict=False, instrumentation=Instrumentation(metrics=MetricsRegistry())
        )
        assert cell_cache_key(smoke_scenario, repro.no_res(), None, config) is None

    def test_disabled_instrumentation_keeps_key(self, smoke_scenario):
        explicit = SimulationConfig(strict=False, instrumentation=Instrumentation())
        assert cell_cache_key(
            smoke_scenario, repro.no_res(), None, explicit
        ) == cell_cache_key(
            smoke_scenario, repro.no_res(), None, SimulationConfig(strict=False)
        )


class TestResultCacheIO:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_absent_key_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" + "0" * 62) is None
        assert cache.stats.misses == 1

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda blob: b"",  # empty file
            lambda blob: blob[: len(blob) // 2],  # truncated
            lambda blob: b"junk" + blob,  # bad magic
            lambda blob: blob[:-3] + b"xyz",  # payload flipped -> checksum fails
        ],
    )
    def test_corrupt_entry_detected_and_evicted(self, tmp_path, mutation):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, {"answer": 42})
        path = cache.path_for(key)
        path.write_bytes(mutation(path.read_bytes()))
        assert cache.get(key) is None
        assert not path.exists(), "corrupt entry must be evicted from disk"
        assert cache.stats.evictions == 1 and cache.stats.misses == 1

    def test_checksum_valid_but_unpicklable_payload_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "aa" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = b"not a pickle at all"
        path.write_bytes(b"repro-cache\x00" + hashlib.sha256(payload).digest() + payload)
        assert cache.get(key) is None
        assert not path.exists()

    def test_stale_salt_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "bb" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "salt": "repro/0.0.0/schema0", "value": 1}
        )
        path.write_bytes(b"repro-cache\x00" + hashlib.sha256(payload).digest() + payload)
        assert cache.get(key) is None
        assert not path.exists()


class TestRunnerCaching:
    def test_second_grid_run_is_all_hits(self, smoke_scenario, tmp_path):
        cold = ExperimentRunner(config=FAST, cache_dir=tmp_path)
        cells_cold = cold.run_grid([smoke_scenario], [repro.no_res, repro.res_sus_util])
        assert cold.cache_stats.misses == 2 and cold.cache_stats.stores == 2

        warm = ExperimentRunner(config=FAST, cache_dir=tmp_path)
        cells_warm = warm.run_grid([smoke_scenario], [repro.no_res, repro.res_sus_util])
        assert warm.cache_stats.hits == 2 and warm.cache_stats.misses == 0
        assert all(c.from_cache for c in cells_warm)
        assert [c.summary for c in cells_cold] == [c.summary for c in cells_warm]

    def test_corrupt_grid_entry_recomputed(self, smoke_scenario, tmp_path):
        cold = ExperimentRunner(config=FAST, cache_dir=tmp_path)
        cells_cold = cold.run_grid([smoke_scenario], [repro.no_res])
        entries = list(tmp_path.rglob("*.bin"))
        assert len(entries) == 1
        entries[0].write_bytes(b"garbage" * 100)

        warm = ExperimentRunner(config=FAST, cache_dir=tmp_path)
        cells_warm = warm.run_grid([smoke_scenario], [repro.no_res])
        assert warm.cache_stats.evictions == 1
        assert warm.cache_stats.hits == 0 and warm.cache_stats.stores == 1
        assert not cells_warm[0].from_cache
        assert cells_warm[0].summary == cells_cold[0].summary

        # and the recomputed entry is served on the next run
        third = ExperimentRunner(config=FAST, cache_dir=tmp_path)
        cells_third = third.run_grid([smoke_scenario], [repro.no_res])
        assert third.cache_stats.hits == 1
        assert cells_third[0].summary == cells_cold[0].summary

    def test_keep_results_upgrade_recomputes(self, smoke_scenario, tmp_path):
        summary_only = ExperimentRunner(config=FAST, cache_dir=tmp_path)
        summary_only.run_grid([smoke_scenario], [repro.no_res])

        wants_results = ExperimentRunner(
            config=FAST, cache_dir=tmp_path, keep_results=True
        )
        cells = wants_results.run_grid([smoke_scenario], [repro.no_res])
        assert cells[0].result is not None, "summary-only entry cannot satisfy keep_results"
        assert wants_results.cache_stats.misses == 1

        # ... but afterwards the full-result entry serves both kinds
        again = ExperimentRunner(config=FAST, cache_dir=tmp_path, keep_results=True)
        cells_again = again.run_grid([smoke_scenario], [repro.no_res])
        assert again.cache_stats.hits == 1
        assert cells_again[0].result is not None

    def test_parallel_run_populates_and_uses_cache(self, smoke_scenario, tmp_path):
        cold = ExperimentRunner(config=FAST, n_workers=2, cache_dir=tmp_path)
        cells_cold = cold.run_grid(
            [smoke_scenario], [repro.no_res, repro.res_sus_util, repro.res_sus_rand]
        )
        warm = ExperimentRunner(config=FAST, n_workers=2, cache_dir=tmp_path)
        cells_warm = warm.run_grid(
            [smoke_scenario], [repro.no_res, repro.res_sus_util, repro.res_sus_rand]
        )
        assert warm.cache_stats.hits == 3
        assert [c.summary for c in cells_cold] == [c.summary for c in cells_warm]


class TestOpenCache:
    def test_disabled_without_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert open_cache() is None

    def test_env_directory_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = open_cache()
        assert cache is not None and cache.root == tmp_path

    def test_no_cache_env_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert open_cache() is None

    def test_use_cache_false_wins(self, tmp_path):
        assert open_cache(tmp_path, use_cache=False) is None

    def test_use_cache_true_needs_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(CacheError):
            open_cache(use_cache=True)
