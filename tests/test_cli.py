"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_choices(self):
        args = build_parser().parse_args(["table", "1"])
        assert args.which == "1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "busy-week"
        assert args.policy == "NoRes"

    def test_policy_flags_accept_free_form_specs(self):
        args = build_parser().parse_args(["run", "--policy", "dfrs:share=0.5"])
        assert args.policy == "dfrs:share=0.5"
        args = build_parser().parse_args(
            ["table", "2", "--policy", "NoRes", "--policy", "dfrs:share=0.5"]
        )
        assert args.policy == ["NoRes", "dfrs:share=0.5"]
        args = build_parser().parse_args(["table", "2"])
        assert args.policy is None
        args = build_parser().parse_args(
            ["run-grid", "--preset", "smoke", "--policy", "migration_cost"]
        )
        assert args.policy == ["migration_cost"]


class TestCommands:
    def test_run_smoke(self, capsys):
        code = main(["run", "--scenario", "smoke", "--policy", "ResSusUtil"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ResSusUtil" in out
        assert "SuspRate" in out

    def test_run_with_util_scheduler(self, capsys):
        code = main(
            ["run", "--scenario", "smoke", "--initial-scheduler", "utilization"]
        )
        assert code == 0

    def test_generate_and_analyze_round_trip(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["generate-trace", str(out), "--scenario", "smoke"])
        assert code == 0
        assert out.exists()
        code = main(["analyze-trace", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "jobs:" in text
        assert "priority" in text

    def test_analyze_missing_file_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        code = main(["analyze-trace", str(missing)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_table_small_scale(self, capsys):
        code = main(["table", "1", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "NoRes" in out

    def test_figure3_small_scale(self, capsys):
        code = main(["figure", "3", "--scale", "0.05"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out


class TestCliEvents:
    def test_run_with_event_log(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        code = main(["run", "--scenario", "smoke", "--events", str(path)])
        assert code == 0
        assert path.exists()
        first_line = path.read_text().splitlines()[0]
        assert '"event": "submit"' in first_line


class TestCliTelemetry:
    def test_run_telemetry_dir_and_stats(self, tmp_path, capsys):
        teldir = tmp_path / "telemetry"
        code = main(
            [
                "run", "--scenario", "smoke", "--policy", "ResSusUtil",
                "--telemetry-dir", str(teldir), "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events/sec" in out  # the profile table printed
        assert (teldir / "metrics.prom").exists()
        assert (teldir / "metrics.jsonl").exists()

        code = main(["stats", str(teldir)])
        assert code == 0
        rendered = capsys.readouterr().out
        assert "event counters" in rendered
        assert "per-pool gauges" in rendered
        assert "submit" in rendered

    def test_stats_missing_dir_fails_cleanly(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_table_progress_and_cells(self, tmp_path, capsys):
        teldir = tmp_path / "cells"
        code = main(
            [
                "table", "1", "--scale", "0.05",
                "--progress", "--telemetry-dir", str(teldir),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "cells" in captured.err  # heartbeat went to stderr
        assert (teldir / "cells.jsonl").exists()

        code = main(["stats", str(teldir)])
        assert code == 0
        assert "experiment cells" in capsys.readouterr().out

    def test_policies_list(self, capsys):
        code = main(["policies", "list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("NoRes", "ResSusUtil", "dfrs", "migration_cost"):
            assert name in out
        assert "selectors" in out
        assert "spec grammar" in out

    def test_run_with_registry_spec(self, capsys):
        code = main(
            ["run", "--scenario", "smoke", "--policy", "dfrs:share=0.5,floor=0.1"]
        )
        assert code == 0
        assert "DFRS[share=0.5,floor=0.1]" in capsys.readouterr().out

    def test_run_with_migration_cost_spec(self, capsys):
        code = main(
            [
                "run", "--scenario", "smoke",
                "--policy", "migration_cost:transfer_minutes=5",
            ]
        )
        assert code == 0
        assert "MigCost[" in capsys.readouterr().out

    def test_run_unknown_policy_fails_cleanly(self, capsys):
        code = main(["run", "--scenario", "smoke", "--policy", "nonsense"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "nonsense" in err

    def test_table_policy_override_echoes_spec(self, capsys):
        code = main(
            [
                "table", "1", "--scale", "0.05",
                "--policy", "NoRes", "--policy", "dfrs:share=0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DFRS[share=0.5,floor=0.05]" in out
        assert "<dfrs:share=0.5>" in out  # per-cell spec echo
