"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_choices(self):
        args = build_parser().parse_args(["table", "1"])
        assert args.which == "1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "busy-week"
        assert args.policy == "NoRes"


class TestCommands:
    def test_run_smoke(self, capsys):
        code = main(["run", "--scenario", "smoke", "--policy", "ResSusUtil"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ResSusUtil" in out
        assert "SuspRate" in out

    def test_run_with_util_scheduler(self, capsys):
        code = main(
            ["run", "--scenario", "smoke", "--initial-scheduler", "utilization"]
        )
        assert code == 0

    def test_generate_and_analyze_round_trip(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["generate-trace", str(out), "--scenario", "smoke"])
        assert code == 0
        assert out.exists()
        code = main(["analyze-trace", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "jobs:" in text
        assert "priority" in text

    def test_analyze_missing_file_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(FileNotFoundError):
            main(["analyze-trace", str(missing)])

    def test_table_small_scale(self, capsys):
        code = main(["table", "1", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "NoRes" in out

    def test_figure3_small_scale(self, capsys):
        code = main(["figure", "3", "--scale", "0.05"])
        assert code == 0
        assert "Figure 3" in capsys.readouterr().out


class TestCliEvents:
    def test_run_with_event_log(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        code = main(["run", "--scenario", "smoke", "--events", str(path)])
        assert code == 0
        assert path.exists()
        first_line = path.read_text().splitlines()[0]
        assert '"event": "submit"' in first_line
