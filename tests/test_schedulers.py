"""Unit tests for repro.schedulers (initial schedulers, eligibility)."""

import pytest

from repro.core.context import PoolSnapshot, StaticSystemView
from repro.schedulers.eligibility import machine_eligible, pool_has_eligible_machine
from repro.schedulers.initial import (
    INITIAL_SCHEDULER_NAMES,
    LeastWaitingScheduler,
    RandomInitialScheduler,
    RoundRobinScheduler,
    UtilizationBasedScheduler,
    initial_scheduler_from_name,
)

from conftest import make_job, make_machine


def snap(pool_id, busy, total=10, waiting=0):
    return PoolSnapshot(pool_id, total, busy, waiting, 0)


def view(*snapshots, seed=0):
    return StaticSystemView(now=0.0, snapshots=list(snapshots), seed=seed)


class TestEligibility:
    def test_os_must_match(self):
        machine = make_machine(os_family="linux")
        assert machine_eligible(machine, make_job(1, os_family="linux"))
        assert not machine_eligible(machine, make_job(1, os_family="windows"))

    def test_total_cores_and_memory(self):
        machine = make_machine(cores=4, memory_gb=8.0)
        assert machine_eligible(machine, make_job(1, cores=4, memory_gb=8.0))
        assert not machine_eligible(machine, make_job(1, cores=5))
        assert not machine_eligible(machine, make_job(1, memory_gb=9.0))

    def test_pool_has_eligible_machine(self):
        machines = [make_machine(cores=2), make_machine("p0/m1", cores=8)]
        assert pool_has_eligible_machine(machines, make_job(1, cores=8))
        assert not pool_has_eligible_machine(machines, make_job(1, cores=16))


class TestRoundRobin:
    def test_cycles_through_candidates(self):
        scheduler = RoundRobinScheduler()
        v = view(snap("a", 0), snap("b", 0), snap("c", 0))
        candidates = ("a", "b", "c")
        assert scheduler.order(candidates, v)[0] == "a"
        assert scheduler.order(candidates, v)[0] == "b"
        assert scheduler.order(candidates, v)[0] == "c"
        assert scheduler.order(candidates, v)[0] == "a"

    def test_order_is_rotation(self):
        scheduler = RoundRobinScheduler()
        v = view(snap("a", 0), snap("b", 0), snap("c", 0))
        scheduler.order(("a", "b", "c"), v)
        assert scheduler.order(("a", "b", "c"), v) == ["b", "c", "a"]

    def test_separate_cursor_per_candidate_set(self):
        scheduler = RoundRobinScheduler()
        v = view(snap("a", 0), snap("b", 0), snap("c", 0))
        assert scheduler.order(("a", "b"), v)[0] == "a"
        assert scheduler.order(("a", "c"), v)[0] == "a"  # own cursor
        assert scheduler.order(("a", "b"), v)[0] == "b"

    def test_empty_candidates(self):
        assert RoundRobinScheduler().order((), view(snap("a", 0))) == []


class TestUtilizationBased:
    def test_orders_by_increasing_utilization(self):
        scheduler = UtilizationBasedScheduler()
        v = view(snap("a", 8), snap("b", 2), snap("c", 5))
        assert scheduler.order(("a", "b", "c"), v) == ["b", "c", "a"]

    def test_tie_broken_by_id(self):
        scheduler = UtilizationBasedScheduler()
        v = view(snap("b", 2), snap("a", 2))
        assert scheduler.order(("b", "a"), v) == ["a", "b"]


class TestRandomInitial:
    def test_is_permutation(self):
        scheduler = RandomInitialScheduler()
        v = view(snap("a", 0), snap("b", 0), snap("c", 0), seed=3)
        order = scheduler.order(("a", "b", "c"), v)
        assert sorted(order) == ["a", "b", "c"]


class TestLeastWaiting:
    def test_orders_by_queue_length(self):
        scheduler = LeastWaitingScheduler()
        v = view(snap("a", 0, waiting=7), snap("b", 0, waiting=1))
        assert scheduler.order(("a", "b"), v) == ["b", "a"]


class TestRegistry:
    def test_all_names_constructible(self):
        for name in INITIAL_SCHEDULER_NAMES:
            scheduler = initial_scheduler_from_name(name)
            assert scheduler.order(("a",), view(snap("a", 0))) == ["a"]

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            initial_scheduler_from_name("nope")
