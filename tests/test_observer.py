"""Tests for the event-observation API (ASCA-style event logs)."""


import repro
from repro.simulator.observer import (
    EVENT_TYPES,
    EventLog,
    JsonlEventWriter,
    SimEvent,
)
from repro.simulator.config import SimulationConfig
from repro.telemetry import Instrumentation
from repro.workload.cluster import ClusterSpec

from conftest import make_cluster, make_job, make_pool, make_trace


def run_logged(jobs, cluster=None, policy=None, **config_kwargs):
    log = EventLog()
    result = repro.run_simulation(
        make_trace(jobs),
        cluster or make_cluster(),
        policy=policy,
        config=SimulationConfig(
            strict=False,
            instrumentation=Instrumentation(observers=(log,)),
            **config_kwargs,
        ),
    )
    return result, log


class TestSimEvent:
    def test_as_dict_omits_optionals(self):
        event = SimEvent(minute=1.0, event="submit", job_id=3)
        assert event.as_dict() == {"minute": 1.0, "event": "submit", "job_id": 3}

    def test_as_dict_includes_context(self):
        event = SimEvent(minute=1.0, event="start", job_id=3, pool_id="p0", detail="x")
        record = event.as_dict()
        assert record["pool_id"] == "p0"
        assert record["detail"] == "x"


class TestEventEmission:
    def test_simple_lifecycle(self):
        _, log = run_logged([make_job(0, runtime=10.0)])
        kinds = [e.event for e in log.for_job(0)]
        assert kinds == ["submit", "start", "finish"]
        assert all(e.event in EVENT_TYPES for e in log.events)

    def test_queueing_lifecycle(self):
        cluster = ClusterSpec([make_pool("p0", 1, cores=1)])
        _, log = run_logged(
            [make_job(0, runtime=10.0), make_job(1, submit=1.0, runtime=5.0)],
            cluster=cluster,
        )
        kinds = [e.event for e in log.for_job(1)]
        assert kinds == ["submit", "queue", "start", "finish"]

    def test_suspension_and_resume(self):
        cluster = ClusterSpec([make_pool("p0", 1, cores=1)])
        jobs = [
            make_job(0, runtime=10.0, priority=0),
            make_job(1, submit=4.0, runtime=6.0, priority=100),
        ]
        _, log = run_logged(jobs, cluster=cluster)
        kinds = [e.event for e in log.for_job(0)]
        assert kinds == ["submit", "start", "suspend", "resume", "finish"]
        (suspend,) = log.of_type("suspend")
        assert suspend.detail == "preempted-by=1"
        assert suspend.minute == 4.0

    def test_restart_events(self):
        cluster = ClusterSpec([make_pool("p0", 1, cores=1), make_pool("p1", 1, cores=1)])
        jobs = [
            make_job(0, runtime=10.0, priority=0, candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=6.0, priority=100, candidate_pools=("p0",)),
        ]
        _, log = run_logged(jobs, cluster=cluster, policy=repro.res_sus_util())
        kinds = [e.event for e in log.for_job(0)]
        assert kinds == ["submit", "start", "suspend", "restart", "start", "finish"]
        (restart,) = log.of_type("restart")
        assert restart.pool_id == "p1"
        assert restart.detail == "from=p0"

    def test_event_times_monotone(self, smoke_scenario):
        log = EventLog()
        repro.run_simulation(
            smoke_scenario.trace,
            smoke_scenario.cluster,
            policy=repro.res_sus_wait_util(),
            config=SimulationConfig(
                strict=False,
                record_samples=False,
                instrumentation=Instrumentation(observers=(log,)),
            ),
        )
        minutes = [e.minute for e in log.events]
        assert minutes == sorted(minutes)
        counts = log.counts()
        assert counts["submit"] == len(smoke_scenario.trace)
        assert counts["finish"] >= len(smoke_scenario.trace)
        assert counts["start"] >= counts["finish"]

    def test_no_observer_costs_nothing(self):
        # just confirms the default path still runs (no attribute errors)
        result = repro.run_simulation(
            make_trace([make_job(0)]), make_cluster(),
            config=SimulationConfig(strict=False),
        )
        assert len(result.records) == 1


class TestJsonlWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = JsonlEventWriter(path)
        repro.run_simulation(
            make_trace([make_job(0, runtime=5.0)]),
            make_cluster(),
            config=SimulationConfig(
                strict=False, instrumentation=Instrumentation(observers=(writer,))
            ),
        )
        assert writer.written >= 3
        events = JsonlEventWriter.read(path)
        assert [e.event for e in events] == ["submit", "start", "finish"]
        assert events[0].job_id == 0
