"""Atomic file writes: a reader (or a crash) never sees a torn file.

Every on-disk artifact the library produces — cache entries, telemetry
exports, grid checkpoints — goes through :mod:`repro.fsutil`, which
writes to a same-directory temp file and ``os.replace``s it into place.
These tests pin the contract: full content or nothing, no temp litter,
and graceful degradation when a crash *does* leave partial bytes (by
simulating a SIGKILL mid-write).
"""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.fsutil import atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_bytes_round_trip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_text_round_trip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "héllo\nwörld\n")
        assert path.read_text(encoding="utf-8") == "héllo\nwörld\n"

    def test_overwrites_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "x")
        atomic_write_bytes(tmp_path / "b.bin", b"y")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.txt", "b.bin"]

    def test_failed_write_leaves_target_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "survivor")

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_text(path, "clobber")
        monkeypatch.undo()
        # the original content survived and the temp file was cleaned up
        assert path.read_text() == "survivor"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestSigkillMidWrite:
    """Simulate a writer killed between ``write`` and ``os.replace``."""

    def _partial(self, path, data, fraction=0.5):
        path.write_bytes(data[: int(len(data) * fraction)])

    def test_cache_survives_torn_entry(self, tmp_path, smoke_scenario):
        import repro
        from repro.experiments.cache import ResultCache, cell_cache_key
        from repro.simulator.config import SimulationConfig

        cache = ResultCache(tmp_path / "cache")
        config = SimulationConfig(strict=False)
        key = cell_cache_key(smoke_scenario, repro.no_res(), None, config)
        cache.put(key, {"summary": "something"})
        entry = cache.path_for(key)

        # SIGKILL mid-write: the entry file holds half its bytes.
        self._partial(entry, entry.read_bytes())
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get(key) is None  # torn entry reads as a miss
        fresh.put(key, {"summary": "rewritten"})
        assert fresh.get(key) == {"summary": "rewritten"}

    def test_checkpoint_survives_torn_file(self, tmp_path):
        from repro.experiments.checkpoint import GridCheckpoint

        path = tmp_path / "grid.ckpt"
        ckpt = GridCheckpoint(path)
        ckpt.put("cell-a", "key-a", {"value": 1})
        assert GridCheckpoint(path).get("cell-a", "key-a")["value"] == 1

        self._partial(path, path.read_bytes())
        recovered = GridCheckpoint(path)
        assert len(recovered) == 0
        assert recovered.get("cell-a", "key-a") is None
        # and the file is fully usable again after the next put
        recovered.put("cell-b", "key-b", {"value": 2})
        assert GridCheckpoint(path).get("cell-b", "key-b")["value"] == 2

    def test_checkpoint_rejects_garbage_and_wrong_magic(self, tmp_path):
        from repro.experiments.checkpoint import GridCheckpoint

        garbage = tmp_path / "garbage.ckpt"
        garbage.write_bytes(b"\x80\x04not a checkpoint at all")
        assert len(GridCheckpoint(garbage)) == 0

        missing = GridCheckpoint(tmp_path / "never-written.ckpt")
        assert len(missing) == 0
        assert missing.get("x", "y") is None

    def test_checkpoint_ignores_entry_with_stale_cache_key(self, tmp_path):
        from repro.experiments.checkpoint import GridCheckpoint

        path = tmp_path / "grid.ckpt"
        GridCheckpoint(path).put("cell-a", "old-key", {"value": 1})
        assert GridCheckpoint(path).get("cell-a", "new-key") is None


class TestTelemetryExportsAreAtomic:
    def test_jsonl_snapshot_is_complete_json_per_line(self, tmp_path):
        from repro.telemetry.exporters import write_jsonl_snapshot
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("demo_total", "demo")
        counter.inc(3)
        path = tmp_path / "metrics.jsonl"
        write_jsonl_snapshot(registry, path)
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)  # every line parses: never half-written

    def test_prometheus_export_written_atomically(self, tmp_path, monkeypatch):
        from repro.telemetry import exporters
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("demo_total", "demo").inc()
        path = tmp_path / "metrics.prom"
        exporters.write_prometheus(registry, path)
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        registry.counter("demo_total", "demo").inc()
        with pytest.raises(OSError):
            exporters.write_prometheus(registry, path)
        monkeypatch.undo()
        assert path.read_text() == before  # old export intact, not torn


class TestValidation:
    def test_rejects_directory_target(self, tmp_path):
        with pytest.raises((ConfigurationError, OSError, IsADirectoryError)):
            atomic_write_text(tmp_path, "nope")
