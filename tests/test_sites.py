"""Tests for the multi-site layer (topology, overheads, selectors)."""

import pytest

from repro.core.context import PoolSnapshot, StaticSystemView
from repro.core.overheads import RestartOverhead
from repro.errors import ClusterError, ConfigurationError
from repro.sites import (
    InterSiteOverhead,
    LocalFirstSelector,
    SiteSpec,
    SiteTopology,
    TransferAwareSelector,
    multi_site_scenario,
    rename_pools,
)
from repro.workload.cluster import ClusterSpec

from conftest import make_job, make_pool


def two_site_topology(transfer=30.0):
    site_a = SiteSpec("A", (make_pool("A/p0", 1), make_pool("A/p1", 1)))
    site_b = SiteSpec("B", (make_pool("B/p0", 1),))
    return SiteTopology([site_a, site_b], transfer_minutes=transfer)


def snap(pool_id, busy, total=10, waiting=0, suspended=0):
    return PoolSnapshot(pool_id, total, busy, waiting, suspended)


class TestSiteTopology:
    def test_site_of_and_local_pools(self):
        topo = two_site_topology()
        assert topo.site_of("A/p1") == "A"
        assert topo.local_pools("A/p0") == ("A/p0", "A/p1")
        assert topo.same_site("A/p0", "A/p1")
        assert not topo.same_site("A/p0", "B/p0")

    def test_transfer_minutes(self):
        topo = two_site_topology(transfer=25.0)
        assert topo.transfer_minutes("A/p0", "A/p1") == 0.0
        assert topo.transfer_minutes("A/p0", "B/p0") == 25.0

    def test_pairwise_latency_map(self):
        site_a = SiteSpec("A", (make_pool("A/p0", 1),))
        site_b = SiteSpec("B", (make_pool("B/p0", 1),))
        site_c = SiteSpec("C", (make_pool("C/p0", 1),))
        topo = SiteTopology(
            [site_a, site_b, site_c],
            transfer_minutes={("A", "B"): 10.0, ("A", "C"): 50.0, ("B", "C"): 20.0},
        )
        assert topo.transfer_minutes("A/p0", "B/p0") == 10.0
        assert topo.transfer_minutes("B/p0", "A/p0") == 10.0
        assert topo.transfer_minutes("C/p0", "B/p0") == 20.0

    def test_missing_pair_latency_raises(self):
        site_a = SiteSpec("A", (make_pool("A/p0", 1),))
        site_b = SiteSpec("B", (make_pool("B/p0", 1),))
        topo = SiteTopology([site_a, site_b], transfer_minutes={})
        with pytest.raises(ConfigurationError):
            topo.transfer_minutes("A/p0", "B/p0")

    def test_flattened_cluster(self):
        topo = two_site_topology()
        cluster = topo.cluster()
        assert cluster.pool_ids == ("A/p0", "A/p1", "B/p0")

    def test_validation(self):
        with pytest.raises(ClusterError):
            SiteTopology([])
        pool = make_pool("p0", 1)
        with pytest.raises(ClusterError):
            SiteTopology(
                [SiteSpec("A", (pool,)), SiteSpec("B", (pool,))]
            )  # pool in two sites
        with pytest.raises(ClusterError):
            two_site_topology().site_of("nope")
        with pytest.raises(ClusterError):
            two_site_topology().pools_in_site("nope")
        with pytest.raises(ConfigurationError):
            two_site_topology(transfer=-1.0)


class TestRenamePools:
    def test_prefixes_everything(self):
        cluster = ClusterSpec([make_pool("p0", 2)])
        renamed = rename_pools(cluster, "siteX")
        assert renamed.pool_ids == ("siteX/p0",)
        machine = renamed.pool("siteX/p0").machines[0]
        assert machine.pool_id == "siteX/p0"
        assert machine.machine_id.startswith("siteX/")

    def test_empty_prefix_rejected(self):
        with pytest.raises(ConfigurationError):
            rename_pools(ClusterSpec([make_pool("p0", 1)]), "")


class TestInterSiteOverhead:
    def test_local_move_costs_local_only(self):
        topo = two_site_topology(transfer=30.0)
        overhead = InterSiteOverhead(
            topology=topo, local=RestartOverhead(fixed_minutes=2.0)
        )
        job = make_job(1, memory_gb=4.0)
        assert overhead.delay_between(job, "A/p0", "A/p1") == 2.0

    def test_cross_site_adds_transfer_and_data(self):
        topo = two_site_topology(transfer=30.0)
        overhead = InterSiteOverhead(topology=topo, per_gb_minutes=1.5)
        job = make_job(1, memory_gb=4.0)
        assert overhead.delay_between(job, "A/p0", "B/p0") == 30.0 + 6.0

    def test_delay_for_fallback(self):
        topo = two_site_topology()
        overhead = InterSiteOverhead(
            topology=topo, local=RestartOverhead(fixed_minutes=3.0)
        )
        assert overhead.delay_for(make_job(1)) == 3.0

    def test_is_free(self):
        free = InterSiteOverhead(topology=two_site_topology(transfer=0.0))
        assert free.is_free
        costly = InterSiteOverhead(topology=two_site_topology(transfer=1.0))
        assert not costly.is_free


class TestLocalFirstSelector:
    def view(self):
        return StaticSystemView(
            now=0.0,
            snapshots=[snap("A/p0", 9), snap("A/p1", 5), snap("B/p0", 0)],
        )

    def test_prefers_local(self):
        selector = LocalFirstSelector(two_site_topology())
        # B/p0 is emptier, but A/p1 is an acceptable local choice
        choice = selector.select(("A/p0", "A/p1", "B/p0"), "A/p0", self.view())
        assert choice == "A/p1"

    def test_falls_back_to_remote(self):
        view = StaticSystemView(
            now=0.0,
            snapshots=[snap("A/p0", 5), snap("A/p1", 9), snap("B/p0", 0)],
        )
        selector = LocalFirstSelector(two_site_topology())
        # the only local alternative is busier (guard declines) -> remote
        assert selector.select(("A/p0", "A/p1", "B/p0"), "A/p0", view) == "B/p0"

    def test_strictly_local(self):
        view = StaticSystemView(
            now=0.0,
            snapshots=[snap("A/p0", 5), snap("A/p1", 9), snap("B/p0", 0)],
        )
        selector = LocalFirstSelector(two_site_topology(), allow_remote=False)
        assert selector.select(("A/p0", "A/p1", "B/p0"), "A/p0", view) is None


class TestTransferAwareSelector:
    def test_transfer_latency_taxes_remote_pools(self):
        topo = two_site_topology(transfer=1000.0)
        selector = TransferAwareSelector(topo, mean_runtime=100.0)
        view = StaticSystemView(
            now=0.0,
            snapshots=[
                snap("A/p0", 10, waiting=50),  # current: heavy backlog
                snap("A/p1", 10, waiting=20),  # local: some backlog
                snap("B/p0", 0),  # remote: empty but 1000 min away
            ],
        )
        choice = selector.select(("A/p0", "A/p1", "B/p0"), "A/p0", view)
        assert choice == "A/p1"

    def test_remote_wins_when_transfer_cheap(self):
        topo = two_site_topology(transfer=10.0)
        selector = TransferAwareSelector(topo, mean_runtime=100.0)
        view = StaticSystemView(
            now=0.0,
            snapshots=[
                snap("A/p0", 10, waiting=50),
                snap("A/p1", 10, waiting=40),
                snap("B/p0", 0),
            ],
        )
        assert selector.select(("A/p0", "A/p1", "B/p0"), "A/p0", view) == "B/p0"

    def test_min_gain_guard(self):
        topo = two_site_topology(transfer=0.0)
        selector = TransferAwareSelector(topo, mean_runtime=100.0, min_gain_minutes=1e9)
        view = StaticSystemView(
            now=0.0, snapshots=[snap("A/p0", 10, waiting=50), snap("B/p0", 0)]
        )
        assert selector.select(("A/p0", "B/p0"), "A/p0", view) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransferAwareSelector(two_site_topology(), mean_runtime=0.0)
        with pytest.raises(ConfigurationError):
            TransferAwareSelector(two_site_topology(), min_gain_minutes=-1.0)


class TestMultiSiteScenario:
    def test_structure(self):
        scenario = multi_site_scenario(site_count=2, scale=0.05)
        assert scenario.topology.site_ids == ("site-0", "site-1")
        assert scenario.burst_site == "site-0"
        assert len(scenario.trace) > 100
        # burst jobs pinned to site-0's large pools
        for job in scenario.trace:
            if job.priority == 100:
                assert all(p.startswith("site-0/") for p in job.candidate_pools)

    def test_site_count_validation(self):
        with pytest.raises(ConfigurationError):
            multi_site_scenario(site_count=1)

    def test_deterministic(self):
        a = multi_site_scenario(scale=0.05)
        b = multi_site_scenario(scale=0.05)
        assert a.trace == b.trace
        assert a.cluster == b.cluster
