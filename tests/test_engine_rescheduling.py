"""Engine tests for the rescheduling machinery (restart, wait-timeout,
overheads) on exact micro-scenarios.

Cluster layout used throughout: two single-machine pools ``p0``/``p1``
(1 core each, speed 1.0) unless stated otherwise, so every timestamp is
exact.
"""


import repro
from repro.core.overheads import RestartOverhead
from repro.core.policies import (
    NoRescheduling,
    RescheduleSuspended,
    RescheduleSuspendedAndWaiting,
)
from repro.core.selectors import LowestUtilizationSelector
from repro.core.policy import ReschedulingPolicy
from repro.core.decisions import STAY, restart
from repro.workload.cluster import ClusterSpec

from conftest import make_job, make_pool, run_tiny


def two_pools(cores=1):
    return ClusterSpec([make_pool("p0", 1, cores=cores), make_pool("p1", 1, cores=cores)])


class TestSuspendedRestart:
    def test_suspended_job_restarts_at_empty_pool(self):
        cluster = two_pools()
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0, candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=6.0, priority=100, candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=repro.res_sus_util())
        victim = result.record_by_id(0)
        # suspended at 4 with 4 minutes progress, restarted at p1 from
        # scratch: finishes at 4 + 10 = 14, wasting the 4 minutes.
        assert victim.restart_count == 1
        assert victim.wasted_restart_time == 4.0
        assert victim.suspend_time == 0.0
        assert victim.finish_minute == 14.0
        assert victim.pools_visited == ("p0", "p1")

    def test_guard_keeps_job_when_alternatives_busier(self):
        cluster = two_pools()
        jobs = [
            # p1 is fully busy with a long job
            make_job(2, submit=0.0, runtime=50.0, candidate_pools=("p1",)),
            make_job(0, submit=0.0, runtime=10.0, priority=0, candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=6.0, priority=100, candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=repro.res_sus_util())
        victim = result.record_by_id(0)
        # ResSusUtil's guard: p1 (util 1.0) is no better than p0, stay.
        assert victim.restart_count == 0
        assert victim.suspend_time == 6.0
        assert victim.finish_minute == 16.0

    def test_restarted_job_queues_at_busy_target(self):
        class AlwaysToP1(ReschedulingPolicy):
            name = "AlwaysToP1"

            def on_suspend(self, job, view):
                return restart("p1")

        cluster = two_pools()
        jobs = [
            make_job(2, submit=0.0, runtime=20.0, candidate_pools=("p1",)),
            make_job(0, submit=0.0, runtime=10.0, priority=0, candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=50.0, priority=100, candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=AlwaysToP1())
        victim = result.record_by_id(0)
        # restarted into p1 at t=4, waits behind job 2 until 20, runs 10.
        assert victim.restart_count == 1
        assert victim.wait_time == 16.0
        assert victim.finish_minute == 30.0

    def test_restart_frees_memory_for_queued_work(self):
        cluster = ClusterSpec(
            [make_pool("p0", 1, cores=2, memory_gb=4.0), make_pool("p1", 1, cores=2, memory_gb=4.0)]
        )
        jobs = [
            make_job(0, submit=0.0, runtime=30.0, priority=0, cores=2, memory_gb=3.0,
                     candidate_pools=("p0", "p1")),
            make_job(1, submit=2.0, runtime=30.0, priority=100, memory_gb=1.0,
                     candidate_pools=("p0",)),
            # needs 3GB on p0: blocked while the suspended victim holds 3GB
            make_job(2, submit=3.0, runtime=5.0, priority=100, memory_gb=3.0,
                     candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=repro.res_sus_util())
        blocked = result.record_by_id(2)
        # victim 0 was suspended at t=2 and restarted to p1, releasing
        # its memory, so job 2 starts immediately at 3.
        assert result.record_by_id(0).restart_count == 1
        assert blocked.wait_time == 0.0
        assert blocked.finish_minute == 8.0

    def test_restart_target_never_statically_ineligible(self):
        class BadPolicy(ReschedulingPolicy):
            name = "Bad"

            def on_suspend(self, job, view):
                return restart("p1")  # p1 cannot run the job (memory)

        cluster = ClusterSpec(
            [make_pool("p0", 1, cores=1, memory_gb=16.0), make_pool("p1", 1, cores=1, memory_gb=1.0)]
        )
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0, memory_gb=8.0),
            make_job(1, submit=4.0, runtime=6.0, priority=100, memory_gb=1.0),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=BadPolicy())
        # the engine degrades the invalid target to STAY
        victim = result.record_by_id(0)
        assert victim.restart_count == 0
        assert victim.suspension_count == 1

    def test_chained_preemption_via_restart(self):
        # medium restarts into p1 and preempts the low job running there
        class MediumHopper(ReschedulingPolicy):
            name = "Hopper"

            def on_suspend(self, job, view):
                if job.spec.priority == 50:
                    return restart("p1")
                return STAY

        cluster = two_pools()
        jobs = [
            make_job(0, submit=0.0, runtime=30.0, priority=0, candidate_pools=("p1",)),
            make_job(1, submit=0.0, runtime=30.0, priority=50, candidate_pools=("p0", "p1")),
            make_job(2, submit=5.0, runtime=10.0, priority=100, candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=MediumHopper())
        medium = result.record_by_id(1)
        low = result.record_by_id(0)
        assert medium.restart_count == 1
        assert medium.pools_visited == ("p0", "p1")
        # the restarted medium preempted the low job in p1
        assert low.suspension_count == 1


class TestWaitTimeout:
    def test_waiting_job_moves_after_threshold(self):
        cluster = two_pools()
        policy = RescheduleSuspendedAndWaiting(
            LowestUtilizationSelector(), wait_threshold=5.0
        )
        jobs = [
            make_job(0, submit=0.0, runtime=30.0, candidate_pools=("p0",)),
            make_job(1, submit=1.0, runtime=10.0, candidate_pools=("p0", "p1")),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=policy)
        mover = result.record_by_id(1)
        # queued at p0 (RR sends it there first); at 1+5=6 the timeout
        # fires, p1 is idle, job moves and runs 10 minutes.
        assert mover.waiting_move_count == 1
        assert mover.wait_time == 5.0
        assert mover.finish_minute == 16.0
        assert mover.pools_visited == ("p1",)

    def test_stay_decision_rearms_timer(self):
        cluster = two_pools()
        policy = RescheduleSuspendedAndWaiting(
            LowestUtilizationSelector(), wait_threshold=5.0
        )
        jobs = [
            # both pools busy; job 2 waits and the timer re-arms until p1 frees at 12
            make_job(0, submit=0.0, runtime=30.0, candidate_pools=("p0",)),
            make_job(1, submit=0.0, runtime=12.0, candidate_pools=("p1",)),
            make_job(2, submit=1.0, runtime=10.0, candidate_pools=("p0", "p1")),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=policy)
        mover = result.record_by_id(2)
        # timeout at 6 and 11: both pools util 1.0 -> stay; at 11+5=16
        # p1 is free... but p1 frees at 12 and fill starts nothing
        # (job 2 waits at p0). The move happens at the first timeout
        # with p1 strictly less utilized: t=16.
        assert mover.waiting_move_count == 1
        assert mover.wait_time == 15.0
        assert mover.finish_minute == 26.0

    def test_timeout_stale_after_job_starts(self):
        cluster = two_pools()
        policy = RescheduleSuspendedAndWaiting(
            LowestUtilizationSelector(), wait_threshold=50.0
        )
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, candidate_pools=("p0",)),
            make_job(1, submit=1.0, runtime=5.0, candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=policy)
        second = result.record_by_id(1)
        # starts at 10 when p0 frees, long before the 51-minute timeout
        assert second.waiting_move_count == 0
        assert second.finish_minute == 15.0

    def test_no_res_never_schedules_timeouts(self):
        cluster = two_pools()
        jobs = [
            make_job(0, submit=0.0, runtime=30.0, candidate_pools=("p0",)),
            make_job(1, submit=1.0, runtime=10.0, candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=NoRescheduling())
        assert result.record_by_id(1).waiting_move_count == 0

    def test_moved_waiting_job_can_preempt_at_target(self):
        cluster = two_pools()
        policy = RescheduleSuspendedAndWaiting(
            LowestUtilizationSelector(guard=False), wait_threshold=5.0
        )
        jobs = [
            make_job(0, submit=0.0, runtime=30.0, priority=100, candidate_pools=("p0",)),
            make_job(1, submit=0.0, runtime=30.0, priority=0, candidate_pools=("p1",)),
            make_job(2, submit=1.0, runtime=10.0, priority=100, candidate_pools=("p0", "p1")),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=policy)
        mover = result.record_by_id(2)
        low = result.record_by_id(1)
        # at t=6 the high job moves to p1 and preempts the low job there
        assert mover.finish_minute == 16.0
        assert low.suspension_count == 1


class TestRestartOverhead:
    def test_overhead_delays_arrival(self):
        cluster = two_pools()
        policy = RescheduleSuspended(LowestUtilizationSelector())
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0, memory_gb=2.0,
                     candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=6.0, priority=100, candidate_pools=("p0",)),
        ]
        result = run_tiny(
            jobs,
            cluster=cluster,
            policy=policy,
            restart_overhead=RestartOverhead(fixed_minutes=3.0, per_gb_minutes=1.0),
        )
        victim = result.record_by_id(0)
        # suspended at 4, in transit 3 + 2*1 = 5 minutes, restarts at 9
        assert victim.finish_minute == 19.0
        assert victim.restart_count == 1

    def test_zero_overhead_is_instant(self):
        cluster = two_pools()
        policy = RescheduleSuspended(LowestUtilizationSelector())
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0, candidate_pools=("p0", "p1")),
            make_job(1, submit=4.0, runtime=6.0, priority=100, candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=policy)
        assert result.record_by_id(0).finish_minute == 14.0


class TestDeterminism:
    def test_same_seed_same_records(self, smoke_scenario):
        import repro as r

        def run():
            return r.run_simulation(
                smoke_scenario.trace,
                smoke_scenario.cluster,
                policy=r.res_sus_wait_rand(),
                config=r.SimulationConfig(seed=11, strict=False, record_samples=False),
            )

        a, b = run(), run()
        assert [(x.job_id, x.finish_minute) for x in a.records] == [
            (x.job_id, x.finish_minute) for x in b.records
        ]

    def test_different_seed_changes_random_choices(self):
        # one hot pool, three cold alternates: the random selector's
        # pick is seed-dependent, so the victim's destination differs.
        from repro.workload.cluster import ClusterSpec
        from conftest import make_pool

        cluster = ClusterSpec([make_pool(f"p{i}", 1, cores=1) for i in range(4)])
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0,
                     candidate_pools=("p0", "p1", "p2", "p3")),
            make_job(1, submit=4.0, runtime=6.0, priority=100, candidate_pools=("p0",)),
        ]
        destinations = set()
        for seed in range(8):
            result = run_tiny(
                jobs, cluster=cluster, policy=repro.res_sus_rand(), seed=seed
            )
            destinations.add(result.record_by_id(0).pools_visited[-1])
        assert len(destinations) > 1
