"""Integration tests on the smoke scenario: global invariants that must
hold for every policy, and the paper's qualitative orderings at small
scale.
"""

import pytest

import repro
from repro.core.policies import DuplicateSuspended, RescheduleWaitingOnly
from repro.core.selectors import LowestUtilizationSelector
from repro.simulator.config import SimulationConfig

ALL_POLICIES = [
    repro.no_res,
    repro.res_sus_util,
    repro.res_sus_rand,
    repro.res_sus_wait_util,
    repro.res_sus_wait_rand,
    lambda: DuplicateSuspended(LowestUtilizationSelector()),
    lambda: RescheduleWaitingOnly(LowestUtilizationSelector()),
]


@pytest.fixture(scope="module", params=range(len(ALL_POLICIES)))
def policy_result(request, smoke_scenario):
    policy = ALL_POLICIES[request.param]()
    result = repro.run_simulation(
        smoke_scenario.trace,
        smoke_scenario.cluster,
        policy=policy,
        config=SimulationConfig(check_invariants=True, strict=False),
    )
    return smoke_scenario, result


class TestConservation:
    def test_every_job_accounted_for(self, policy_result):
        scenario, result = policy_result
        assert len(result.records) == len(scenario.trace)
        assert sorted(r.job_id for r in result.records) == sorted(
            j.job_id for j in scenario.trace
        )

    def test_all_jobs_finish(self, policy_result):
        _, result = policy_result
        for record in result.records:
            if not record.rejected:
                assert record.finish_minute is not None
                assert record.finish_minute >= record.submit_minute

    def test_accounting_is_non_negative(self, policy_result):
        _, result = policy_result
        for record in result.completed_records():
            assert record.wait_time >= -1e-9
            assert record.suspend_time >= -1e-9
            assert record.wasted_restart_time >= -1e-9

    def test_waste_bounded_by_completion_time(self, policy_result):
        _, result = policy_result
        for record in result.completed_records():
            # wait and suspend are real elapsed intervals of the job's
            # life; restart waste re-executes work, so it is bounded by
            # elapsed time too (progress accrues in real time).
            assert (
                record.wait_time + record.suspend_time
                <= record.completion_time + 1e-6
            )

    def test_suspension_flag_consistent(self, policy_result):
        _, result = policy_result
        for record in result.completed_records():
            if record.suspend_time > 0:
                assert record.suspension_count > 0

    def test_minimum_runtime_respected(self, policy_result):
        _, result = policy_result
        for record in result.completed_records():
            # a job cannot finish faster than its demand on the fastest
            # machine (speed factors are <= 1.3)
            assert record.completion_time >= record.runtime_minutes / 1.31 - 1e-6

    def test_samples_monotone_time(self, policy_result):
        _, result = policy_result
        minutes = [s.minute for s in result.samples]
        assert minutes == sorted(minutes)

    def test_utilization_bounded(self, policy_result):
        _, result = policy_result
        for s in result.samples:
            assert 0.0 <= s.utilization <= 1.0
            assert s.busy_cores <= s.total_cores


class TestQualitativeOrderings:
    """The paper's headline effects, checked at smoke scale."""

    @pytest.fixture(scope="class")
    def summaries(self, smoke_scenario):
        out = {}
        for factory in (repro.no_res, repro.res_sus_util, repro.res_sus_wait_util):
            policy = factory()
            result = repro.run_simulation(
                smoke_scenario.trace,
                smoke_scenario.cluster,
                policy=policy,
                config=SimulationConfig(strict=False, record_samples=False),
            )
            out[policy.name] = repro.summarize(result)
        return out

    def test_rescheduling_reduces_suspended_completion_time(self, summaries):
        assert (
            summaries["ResSusUtil"].avg_ct_suspended
            < summaries["NoRes"].avg_ct_suspended
        )

    def test_combined_rescheduling_reduces_waste(self, summaries):
        # At smoke scale (a few hundred jobs, ~10 suspended) the
        # suspended-only policy's AvgWCT is noisy; the combined policy's
        # waste reduction is the robust signal.
        assert summaries["ResSusWaitUtil"].avg_wct < summaries["NoRes"].avg_wct

    def test_waiting_rescheduling_reduces_waste(self, summaries):
        # the combined policy's headline effect is on waste; at smoke
        # scale (bursts hit half the 4-pool cluster) raw completion
        # time can fluctuate, so allow modest slack on AvgCT.
        assert summaries["ResSusWaitUtil"].avg_wct < summaries["NoRes"].avg_wct
        assert (
            summaries["ResSusWaitUtil"].avg_ct_all
            <= summaries["NoRes"].avg_ct_all * 1.15
        )

    def test_rescheduling_slashes_suspend_time(self, summaries):
        # rescheduled suspended jobs leave their hosts, so time spent
        # suspended collapses (paper: AvgST 1189 -> ~82)
        if summaries["NoRes"].avg_st:
            assert (
                summaries["ResSusUtil"].waste.suspend_time
                < summaries["NoRes"].waste.suspend_time
            )

    def test_no_res_has_zero_resched_waste(self, summaries):
        assert summaries["NoRes"].waste.resched_time == 0.0
        assert summaries["ResSusUtil"].waste.resched_time > 0.0
