"""Tests for the fabric's work-claiming lease protocol.

The contract under test (see ``repro/fabric/lease.py``):

* exactly one of N racing claimants wins a fresh cell;
* a live holder's lease is not stealable, a stale one is;
* takeover is atomic and self-confirming (the loser of a takeover
  race discovers it);
* done markers journal who computed a cell and survive as provenance
  until ``cache gc`` removes them;
* torn/garbage lease files read as claimable, never crash.
"""

from __future__ import annotations

import json
import threading

from repro.fabric.lease import CLAIMED, DONE, Lease, LeaseStore


def make_store(tmp_path, worker="w0", run="run-a", ttl=60.0, clock=None):
    kwargs = {"ttl_seconds": ttl}
    if clock is not None:
        kwargs["clock"] = clock
    return LeaseStore(tmp_path, run_id=run, worker_id=worker, **kwargs)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


KEY = "ab" + "0" * 62


class TestClaim:
    def test_first_claim_wins(self, tmp_path):
        a = make_store(tmp_path, "a")
        b = make_store(tmp_path, "b")
        assert a.claim(KEY)
        assert not b.claim(KEY)
        lease = b.read(KEY)
        assert lease.status == CLAIMED
        assert lease.worker_id == "a"

    def test_claim_is_exclusive_under_thread_race(self, tmp_path):
        stores = [make_store(tmp_path, f"w{i}") for i in range(8)]
        barrier = threading.Barrier(len(stores))
        wins = []

        def race(store):
            barrier.wait()
            if store.claim(KEY):
                wins.append(store.worker_id)

        threads = [threading.Thread(target=race, args=(s,)) for s in stores]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_done_lease_is_never_claimable(self, tmp_path):
        a = make_store(tmp_path, "a")
        b = make_store(tmp_path, "b")
        assert a.claim(KEY)
        a.release_done(KEY, wall_seconds=1.5)
        assert not b.claim(KEY)
        lease = b.read(KEY)
        assert lease.status == DONE
        assert lease.wall_seconds == 1.5

    def test_garbage_lease_file_reads_as_none(self, tmp_path):
        a = make_store(tmp_path, "a")
        a.path_for(KEY).write_text("{not json", encoding="utf-8")
        assert a.read(KEY) is None
        # and does not crash claim (retries next poll)
        assert not a.claim(KEY)


class TestStaleTakeover:
    def test_fresh_lease_not_stealable(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        clock.advance(30.0)
        assert not b.claim(KEY)

    def test_stale_lease_taken_over(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        clock.advance(61.0)
        assert b.claim(KEY)
        lease = b.read(KEY)
        assert lease.worker_id == "b"
        assert lease.takeovers == 1

    def test_heartbeat_keeps_lease_fresh(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        for _ in range(5):
            clock.advance(40.0)
            assert a.heartbeat(KEY)
            assert not b.claim(KEY)

    def test_original_holder_discovers_theft_via_heartbeat(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        clock.advance(61.0)
        assert b.claim(KEY)
        assert not a.heartbeat(KEY)

    def test_takeover_race_has_exactly_one_winner(self, tmp_path):
        clock = FakeClock()
        holder = make_store(tmp_path, "dead", ttl=10.0, clock=clock)
        assert holder.claim(KEY)
        clock.advance(11.0)
        stealers = [
            make_store(tmp_path, f"s{i}", ttl=10.0, clock=clock) for i in range(6)
        ]
        results = [s.claim(KEY) for s in stealers]
        # every successful claim() must agree with the file's final owner
        final = stealers[0].read(KEY)
        winners = [
            s.worker_id for s, ok in zip(stealers, results) if ok
        ]
        assert winners == [final.worker_id]


class TestRelease:
    def test_release_failed_clears_own_lease(self, tmp_path):
        a = make_store(tmp_path, "a")
        b = make_store(tmp_path, "b")
        assert a.claim(KEY)
        a.release_failed(KEY)
        assert a.read(KEY) is None
        assert b.claim(KEY)

    def test_release_failed_never_clears_others(self, tmp_path):
        a = make_store(tmp_path, "a")
        b = make_store(tmp_path, "b")
        assert a.claim(KEY)
        b.release_failed(KEY)
        assert a.read(KEY) is not None

    def test_done_marker_records_run_identity(self, tmp_path):
        a = make_store(tmp_path, "a", run="run-a")
        assert a.claim(KEY)
        a.release_done(KEY)
        other = make_store(tmp_path, "x", run="run-b")
        lease = other.read(KEY)
        assert lease.run_id == "run-a"
        assert lease.status == DONE


class TestLeaseSerialization:
    def test_round_trip(self):
        lease = Lease(
            key=KEY, status=CLAIMED, run_id="r", worker_id="w", pid=1,
            host="h", claimed_at=1.0, heartbeat_at=2.0, takeovers=3,
            wall_seconds=4.0,
        )
        assert Lease.from_dict(lease.to_dict()) == lease

    def test_from_dict_ignores_unknown_fields(self):
        data = {
            "key": KEY, "status": DONE, "run_id": "r", "worker_id": "w",
            "pid": 1, "host": "h", "claimed_at": 1.0, "heartbeat_at": 2.0,
            "future_field": "ignored",
        }
        lease = Lease.from_dict(data)
        assert lease.status == DONE

    def test_lease_file_is_sorted_json(self, tmp_path):
        a = make_store(tmp_path, "a")
        assert a.claim(KEY)
        data = json.loads(a.path_for(KEY).read_text(encoding="utf-8"))
        assert list(data) == sorted(data)
