"""Tests for the fabric's work-claiming lease protocol.

The contract under test (see ``repro/fabric/lease.py``):

* exactly one of N racing claimants wins a fresh cell;
* a live holder's lease is not stealable, a stale one is;
* takeover is atomic and self-confirming (the loser of a takeover
  race discovers it);
* done markers journal who computed a cell and survive as provenance
  until ``cache gc`` removes them;
* torn/garbage lease files read as claimable, never crash.
"""

from __future__ import annotations

import json
import threading
import time

from repro.fabric.lease import CLAIMED, DONE, Lease, LeaseStore
from repro.fsutil import atomic_write_text


def make_store(tmp_path, worker="w0", run="run-a", ttl=60.0, clock=None):
    kwargs = {"ttl_seconds": ttl}
    if clock is not None:
        kwargs["clock"] = clock
    return LeaseStore(tmp_path, run_id=run, worker_id=worker, **kwargs)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


KEY = "ab" + "0" * 62


class TestClaim:
    def test_first_claim_wins(self, tmp_path):
        a = make_store(tmp_path, "a")
        b = make_store(tmp_path, "b")
        assert a.claim(KEY)
        assert not b.claim(KEY)
        lease = b.read(KEY)
        assert lease.status == CLAIMED
        assert lease.worker_id == "a"

    def test_claim_is_exclusive_under_thread_race(self, tmp_path):
        stores = [make_store(tmp_path, f"w{i}") for i in range(8)]
        barrier = threading.Barrier(len(stores))
        wins = []

        def race(store):
            barrier.wait()
            if store.claim(KEY):
                wins.append(store.worker_id)

        threads = [threading.Thread(target=race, args=(s,)) for s in stores]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_done_lease_is_never_claimable(self, tmp_path):
        a = make_store(tmp_path, "a")
        b = make_store(tmp_path, "b")
        assert a.claim(KEY)
        a.release_done(KEY, wall_seconds=1.5)
        assert not b.claim(KEY)
        lease = b.read(KEY)
        assert lease.status == DONE
        assert lease.wall_seconds == 1.5

    def test_garbage_lease_file_reads_as_none(self, tmp_path):
        a = make_store(tmp_path, "a")
        a.path_for(KEY).write_text("{not json", encoding="utf-8")
        assert a.read(KEY) is None
        # and does not crash claim (retries next poll)
        assert not a.claim(KEY)


class TestStaleTakeover:
    def test_fresh_lease_not_stealable(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        clock.advance(30.0)
        assert not b.claim(KEY)

    def test_stale_lease_taken_over(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        clock.advance(61.0)
        assert b.claim(KEY)
        lease = b.read(KEY)
        assert lease.worker_id == "b"
        assert lease.takeovers == 1

    def test_heartbeat_keeps_lease_fresh(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        for _ in range(5):
            clock.advance(40.0)
            assert a.heartbeat(KEY)
            assert not b.claim(KEY)

    def test_original_holder_discovers_theft_via_heartbeat(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        clock.advance(61.0)
        assert b.claim(KEY)
        assert not a.heartbeat(KEY)

    def test_takeover_race_has_exactly_one_winner(self, tmp_path):
        clock = FakeClock()
        holder = make_store(tmp_path, "dead", ttl=10.0, clock=clock)
        assert holder.claim(KEY)
        clock.advance(11.0)
        stealers = [
            make_store(tmp_path, f"s{i}", ttl=10.0, clock=clock) for i in range(6)
        ]
        results = [s.claim(KEY) for s in stealers]
        # every successful claim() must agree with the file's final owner
        final = stealers[0].read(KEY)
        winners = [
            s.worker_id for s, ok in zip(stealers, results) if ok
        ]
        assert winners == [final.worker_id]


class TestRelease:
    def test_release_failed_clears_own_lease(self, tmp_path):
        a = make_store(tmp_path, "a")
        b = make_store(tmp_path, "b")
        assert a.claim(KEY)
        a.release_failed(KEY)
        assert a.read(KEY) is None
        assert b.claim(KEY)

    def test_release_failed_never_clears_others(self, tmp_path):
        a = make_store(tmp_path, "a")
        b = make_store(tmp_path, "b")
        assert a.claim(KEY)
        b.release_failed(KEY)
        assert a.read(KEY) is not None

    def test_done_marker_records_run_identity(self, tmp_path):
        a = make_store(tmp_path, "a", run="run-a")
        assert a.claim(KEY)
        a.release_done(KEY)
        other = make_store(tmp_path, "x", run="run-b")
        lease = other.read(KEY)
        assert lease.run_id == "run-a"
        assert lease.status == DONE


class TestLeaseSerialization:
    def test_round_trip(self):
        lease = Lease(
            key=KEY, status=CLAIMED, run_id="r", worker_id="w", pid=1,
            host="h", claimed_at=1.0, heartbeat_at=2.0, takeovers=3,
            wall_seconds=4.0,
        )
        assert Lease.from_dict(lease.to_dict()) == lease

    def test_from_dict_ignores_unknown_fields(self):
        data = {
            "key": KEY, "status": DONE, "run_id": "r", "worker_id": "w",
            "pid": 1, "host": "h", "claimed_at": 1.0, "heartbeat_at": 2.0,
            "future_field": "ignored",
        }
        lease = Lease.from_dict(data)
        assert lease.status == DONE

    def test_lease_file_is_sorted_json(self, tmp_path):
        a = make_store(tmp_path, "a")
        assert a.claim(KEY)
        data = json.loads(a.path_for(KEY).read_text(encoding="utf-8"))
        assert list(data) == sorted(data)


class TestClockSteps:
    """Staleness under wall-clock steps (NTP corrections, VM resume).

    Regression tests for the monotonic-observation layer: a backwards
    wall-clock step must neither grant spurious takeovers (negative
    ages clamp to fresh) nor pin a dead holder's lease fresh forever
    (a heartbeat that stays unchanged for a full TTL of *local
    monotonic* time is stale whatever the wall clock says).
    """

    def _stores(self, tmp_path, wall, mono, ttl=60.0):
        a = LeaseStore(
            tmp_path, run_id="run-a", worker_id="a", ttl_seconds=ttl,
            clock=wall, monotonic=mono,
        )
        b = LeaseStore(
            tmp_path, run_id="run-a", worker_id="b", ttl_seconds=ttl,
            clock=wall, monotonic=mono,
        )
        return a, b

    def test_negative_heartbeat_age_clamps_to_fresh(self, tmp_path):
        wall, mono = FakeClock(), FakeClock(start=0.0)
        a, b = self._stores(tmp_path, wall, mono)
        assert a.claim(KEY)
        wall.now -= 3600.0  # observer's clock steps back an hour
        lease = b.read(KEY)
        assert lease.age(wall()) == 0.0
        assert not lease.is_stale(wall(), 60.0)

    def test_backwards_step_does_not_grant_takeover(self, tmp_path):
        wall, mono = FakeClock(), FakeClock(start=0.0)
        a, b = self._stores(tmp_path, wall, mono)
        assert a.claim(KEY)
        wall.now -= 3600.0
        mono.advance(30.0)  # under a TTL of real time has passed
        assert not b.claim(KEY)
        assert b.read(KEY).worker_id == "a"

    def test_monotonic_observation_unpins_dead_holder(self, tmp_path):
        # The holder dies, then the observer's wall clock steps back
        # past the heartbeat: wall arithmetic reads the lease fresh
        # forever, but a full TTL of monotonic silence must still
        # declare it stale and allow the takeover.
        wall, mono = FakeClock(), FakeClock(start=0.0)
        a, b = self._stores(tmp_path, wall, mono)
        assert a.claim(KEY)
        wall.now -= 3600.0  # heartbeat_at is now an hour in our future
        assert not b.claim(KEY)  # first observation always reads fresh
        mono.advance(61.0)  # a full TTL of real time, no heartbeat
        assert b.claim(KEY)
        lease = b.read(KEY)
        assert lease.worker_id == "b"
        assert lease.takeovers == 1

    def test_fresh_heartbeat_resets_monotonic_observation(self, tmp_path):
        wall, mono = FakeClock(), FakeClock(start=0.0)
        a, b = self._stores(tmp_path, wall, mono)
        assert a.claim(KEY)
        wall.now -= 3600.0
        assert not b.claim(KEY)
        mono.advance(50.0)
        assert a.heartbeat(KEY)  # holder is alive after all
        mono.advance(50.0)  # 100s total, but only 50s since new beat
        assert not b.claim(KEY)
        mono.advance(61.0)
        assert b.claim(KEY)

    def test_garbage_lease_cleared_only_after_ttl(self, tmp_path):
        # A torn lease file (non-atomic external writer) reads as None
        # and can never be heartbeat; claim() clears it once it has
        # stayed garbage for a TTL, but never sooner — a brand-new
        # unreadable file may be a racing winner mid-write.
        import time as time_module

        clock = FakeClock(start=time_module.time())
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        path = a.path_for(KEY)
        path.write_text("{not json", encoding="utf-8")
        assert not a.claim(KEY)
        assert path.exists()  # too fresh to judge
        clock.advance(61.0)
        assert not a.claim(KEY)  # this attempt clears the garbage...
        assert not path.exists()
        assert a.claim(KEY)  # ...and the next one claims cleanly
        assert a.read(KEY).worker_id == "a"


class TestAtomicLeaseWrites:
    def test_two_threads_on_one_path_never_tear(self, tmp_path):
        # Regression: a worker's heartbeat thread and its compute
        # thread both atomic-write the same lease file.  With a tmp
        # name keyed by pid alone they shared one tmp file, and the
        # interleaved bytes were renamed into place — the chaos audit
        # caught a lease ending in "}}".  Tmp names are per-thread
        # now, so every observed state must be one complete body.
        path = tmp_path / f"{KEY}.lease"
        bodies = [
            '{"status": "claimed", "padding": "xxxxxxxxxxxxxxxx"}',
            '{"status": "done"}',
        ]
        stop = threading.Event()

        def hammer(body):
            while not stop.is_set():
                atomic_write_text(path, body)

        threads = [
            threading.Thread(target=hammer, args=(b,)) for b in bodies
        ]
        for t in threads:
            t.start()
        torn = []
        deadline = time.monotonic() + 1.0
        try:
            while time.monotonic() < deadline:
                try:
                    text = path.read_text(encoding="utf-8")
                except OSError:
                    continue
                if text not in bodies:
                    torn.append(text)
                    break
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5.0)
        assert not torn, f"torn lease body observed: {torn[0]!r}"


class TestDoneMarkerTakeovers:
    def test_done_marker_inherits_takeover_count(self, tmp_path):
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        clock.advance(61.0)
        assert b.claim(KEY)
        b.release_done(KEY, wall_seconds=2.0)
        marker = b.read(KEY)
        assert marker.status == DONE
        assert marker.takeovers == 1

    def test_resumed_original_holder_preserves_journal(self, tmp_path):
        # The original holder resumes after its lease was stolen and
        # the thief already published: the holder's own release_done
        # must not reset the journal's takeover count to zero.
        clock = FakeClock()
        a = make_store(tmp_path, "a", ttl=60.0, clock=clock)
        b = make_store(tmp_path, "b", ttl=60.0, clock=clock)
        assert a.claim(KEY)
        clock.advance(61.0)
        assert b.claim(KEY)
        b.release_done(KEY, wall_seconds=2.0)
        a.release_done(KEY, wall_seconds=9.0)  # resumed original
        marker = a.read(KEY)
        assert marker.status == DONE
        assert marker.takeovers == 1
