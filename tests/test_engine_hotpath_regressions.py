"""Regression tests for the event-loop correctness sweep.

Three bug classes the hot-path overhaul audited:

* stale ``EVENT_WAIT_TIMEOUT`` events revalidating against the wrong
  wait episode after fault churn moved the job between queues;
* stale wait-queue entries of a removed-then-re-pushed job object
  coming back to life (covered at the queue level in test_queues.py;
  here the episode-token audit is pinned at the job level);
* incremental pool/machine counters (busy cores, running-priority
  histograms, the negative first-fit cache) drifting from the ground
  truth under crash/recover churn — ``check_invariants`` recomputes
  all of them from scratch every sample tick and raises on any drift.
"""

import random

import repro
from repro.simulator.job import Job, JobState
from repro.workload.cluster import ClusterSpec
from repro.workload.distributions import Exponential

from conftest import make_job, make_pool, run_tiny


class TestWaitEpisodeAudit:
    """Every exit from WAITING must bump ``wait_episode``.

    The wait-timeout handler validates ``(state, wait_episode)``
    against the values captured when the timer was armed; if any
    WAITING-exit path failed to bump the episode, a timer armed for an
    earlier wait stint could fire against a later one and move the job
    based on stale information.
    """

    def test_enqueue_dequeue_bumps(self):
        job = Job(make_job(1))
        assert job.wait_episode == 0
        job.enqueue("p0", 0.0)
        assert job.wait_episode == 1
        job.dequeue(5.0)
        assert job.wait_episode == 2

    def test_start_from_waiting_bumps(self):
        job = Job(make_job(1))
        job.enqueue("p0", 0.0)
        episode = job.wait_episode
        job.start(machine=None, pool_id="p0", now=1.0)
        assert job.wait_episode == episode + 1

    def test_fault_drain_bumps(self):
        # A pool blackout sweeps waiting jobs out via fail_attempt: the
        # episode must change so timers armed in the dead pool cannot
        # match the job's next wait stint.
        job = Job(make_job(1))
        job.enqueue("p0", 0.0)
        episode = job.wait_episode
        job.fail_attempt(3.0, kind="drain")
        assert job.state is JobState.PENDING
        assert job.wait_episode == episode + 1
        job.enqueue("p1", 4.0)
        assert job.wait_episode == episode + 2


class TestStaleWaitTimeout:
    def test_outage_moved_job_ignores_stale_timer(self):
        """Timer armed in p0 must not act on the same job waiting in p1.

        Schedule: job 1 queues in p0 behind a long filler at t=0 with a
        10-minute wait timer.  At t=5 an outage drains p0 and the job
        requeues into p1 behind another filler.  The stale p0 timer
        fires at t=10 while the job is WAITING again — in a different
        pool, under a different episode.  Honouring it would count a
        waiting-job move (or crash removing the job from the wrong
        queue); the episode guard must drop it instead.  The p1 wait
        ends at t=20, before any legitimate p1 timer fires.
        """
        cluster = ClusterSpec(
            [make_pool("p0", 1, cores=1), make_pool("p1", 1, cores=1)]
        )
        jobs = [
            make_job(0, submit=0.0, runtime=30.0, candidate_pools=("p0",)),
            make_job(2, submit=0.0, runtime=20.0, candidate_pools=("p1",)),
            make_job(1, submit=1.0, runtime=5.0, candidate_pools=("p0", "p1")),
        ]
        result = run_tiny(
            jobs,
            cluster=cluster,
            policy=repro.res_sus_wait_util(wait_threshold=10.0),
            strict=False,
            faults=repro.FaultConfig(
                pool_outages=(repro.PoolOutage("p0", 5.0, 60.0),),
            ),
        )
        moved = result.record_by_id(1)
        # Requeued by the outage (a fault requeue, not a policy move),
        # then left alone: the stale timer at t=10 was dropped and the
        # job simply ran when p1 freed up at t=20.
        assert moved.waiting_move_count == 0
        assert moved.pools_visited == ("p1",)
        assert moved.finish_minute == 25.0

    def test_rearmed_timer_still_fires_for_current_episode(self):
        """The guard must drop *stale* timers only: a queued job whose
        episode never changed still gets its move when the timer fires.
        """
        cluster = ClusterSpec(
            [make_pool("p0", 1, cores=1), make_pool("p1", 1, cores=1)]
        )
        jobs = [
            make_job(0, submit=0.0, runtime=40.0, candidate_pools=("p0",)),
            make_job(1, submit=1.0, runtime=5.0, candidate_pools=("p0", "p1")),
        ]
        result = run_tiny(
            jobs,
            cluster=cluster,
            policy=repro.res_sus_wait_util(wait_threshold=10.0),
        )
        moved = result.record_by_id(1)
        # Waits in p0 from t=1; the t=11 timer moves it to idle p1.
        assert moved.waiting_move_count == 1
        assert moved.pools_visited == ("p1",)
        assert moved.finish_minute == 16.0


def _churn_jobs(rng, count):
    jobs = []
    for i in range(count):
        jobs.append(
            make_job(
                i,
                submit=round(rng.uniform(0.0, 120.0), 2),
                runtime=round(rng.uniform(2.0, 40.0), 2),
                priority=rng.choice((0, 0, 0, 50, 100)),
                cores=rng.choice((1, 1, 2)),
                memory_gb=rng.choice((1.0, 2.0)),
            )
        )
    return jobs


class TestCountersSurviveChurn:
    """Property test: incremental accounting vs fault churn.

    ``check_invariants=True`` recomputes busy cores, running counts,
    suspended sets, both running-priority histograms, the machine
    minimum-priority bound and the negative first-fit cache from the
    ground truth on every sample tick, so any drift the churn induces
    fails the run loudly.  On top of that the whole run must be
    bit-reproducible.
    """

    def _run(self, seed):
        rng = random.Random(seed)
        cluster = ClusterSpec(
            [make_pool("p0", 2, cores=2), make_pool("p1", 2, cores=2)]
        )
        faults = repro.FaultConfig(
            machine_churn=repro.MachineChurn(
                mtbf=Exponential(90.0), mttr=Exponential(15.0)
            ),
            pool_outages=(
                repro.PoolOutage("p0", 40.0, 10.0),
                repro.PoolOutage("p1", 45.0, 10.0),
                repro.PoolOutage("p0", 47.0, 6.0),  # overlaps the first window
            ),
            job_failure_probability=0.05,
        )
        return run_tiny(
            _churn_jobs(rng, 80),
            cluster=cluster,
            policy=repro.res_sus_wait_util(wait_threshold=8.0),
            strict=False,
            seed=seed,
            faults=faults,
        )

    def test_invariants_hold_across_seeds(self):
        for seed in (1, 7, 23):
            result = self._run(seed)
            assert len(result.records) == 80

    def test_churn_run_is_reproducible(self):
        first = self._run(5)
        second = self._run(5)
        assert [repr(r) for r in first.records] == [
            repr(r) for r in second.records
        ]
        assert first.fault_stats == second.fault_stats
