"""Tests for the paper reference data and the SVG renderers."""

import pytest

import repro
from repro.analysis.svg import cdf_svg, stacked_bars_svg, timeseries_svg, write_svg
from repro.analysis.utilization import analyze_utilization
from repro.analysis.suspension import suspension_time_cdf
from repro.errors import ConfigurationError
from repro.paper import (
    PAPER_EVALUATION_SETUP,
    PAPER_FIGURE2,
    PAPER_TABLES,
    paper_row,
)


class TestPaperData:
    def test_all_tables_present(self):
        assert sorted(PAPER_TABLES) == [1, 2, 3, 4, 5]

    def test_row_lookup(self):
        row = paper_row(1, "NoRes")
        assert row.avg_ct_suspended == 2498.7
        assert row.avg_wct == 31.0
        assert paper_row(1, "Nope") is None
        assert paper_row(9, "NoRes") is None

    def test_tables_2_and_4_share_baseline(self):
        # both tables run the same NoRes condition in the paper
        assert PAPER_TABLES[2]["NoRes"] == PAPER_TABLES[4]["NoRes"]
        assert PAPER_TABLES[3]["NoRes"] == PAPER_TABLES[5]["NoRes"]

    def test_headline_claims_derivable_from_rows(self):
        t1 = PAPER_TABLES[1]
        reduction = 1 - t1["ResSusUtil"].avg_ct_suspended / t1["NoRes"].avg_ct_suspended
        assert 0.45 < reduction < 0.55  # "around 50%"
        waste_cut = 1 - t1["ResSusUtil"].avg_wct / t1["NoRes"].avg_wct
        assert 0.30 < waste_cut < 0.36  # "more than 33%" (32.9 rounded)
        t2 = PAPER_TABLES[2]
        high_load_cut = 1 - t2["ResSusUtil"].avg_ct_suspended / t2["NoRes"].avg_ct_suspended
        assert 0.72 < high_load_cut < 0.78  # "75%"

    def test_figure2_and_setup_constants(self):
        assert PAPER_FIGURE2["median_minutes"] == 437.0
        assert PAPER_EVALUATION_SETUP["pools"] == 20
        assert PAPER_EVALUATION_SETUP["wait_threshold_minutes"] == 30.0


class TestSvgRenderers:
    def test_cdf_svg_structure(self, smoke_result):
        cdf = suspension_time_cdf(smoke_result)
        svg = cdf_svg(cdf.points(count=30))
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "polyline" in svg

    def test_cdf_svg_validation(self):
        with pytest.raises(ConfigurationError):
            cdf_svg([(1.0, 1.0)])

    def test_stacked_bars_svg(self, smoke_result, smoke_resched_result):
        summaries = [
            repro.summarize(smoke_result),
            repro.summarize(smoke_resched_result),
        ]
        svg = stacked_bars_svg(summaries)
        assert svg.count("<rect") >= 1 + 2 * 3  # background + 3 segments per bar
        assert "NoRes" in svg
        assert "ResSusWaitUtil" in svg

    def test_stacked_bars_validation(self):
        with pytest.raises(ConfigurationError):
            stacked_bars_svg([])

    def test_timeseries_svg(self, smoke_result):
        analysis = analyze_utilization(smoke_result, window_minutes=50.0)
        svg = timeseries_svg(analysis.points)
        assert svg.count("polyline") >= 2  # two series + frame

    def test_write_svg(self, tmp_path, smoke_result):
        analysis = analyze_utilization(smoke_result, window_minutes=50.0)
        path = tmp_path / "fig4.svg"
        write_svg(timeseries_svg(analysis.points), path)
        content = path.read_text()
        assert content.startswith("<svg")
