"""SWF adapter: canonical formatting round-trips and error paths."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.workload.traces import (
    SWFJob,
    format_swf_job,
    generate_swf_fixture,
    iter_swf_jobs,
    read_swf,
    write_swf,
)

# Field strategies mirror the SWF spec: integer fields take -1 (missing)
# or small non-negative values; float-capable fields may carry decimals.
_int_field = st.integers(min_value=-1, max_value=10**6)
_float_field = st.one_of(
    st.just(-1),
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)


@st.composite
def swf_jobs(draw, number=None):
    return SWFJob(
        job_number=number if number is not None else draw(st.integers(1, 10**6)),
        submit_time=draw(_int_field),
        wait_time=draw(_float_field),
        run_time=draw(_float_field),
        allocated_procs=draw(_int_field),
        avg_cpu_time=draw(_float_field),
        used_memory_kb=draw(_float_field),
        requested_procs=draw(_int_field),
        requested_time=draw(_int_field),
        requested_memory_kb=draw(_float_field),
        status=draw(st.integers(-1, 5)),
        user_id=draw(_int_field),
        group_id=draw(_int_field),
        executable=draw(_int_field),
        queue=draw(_int_field),
        partition=draw(_int_field),
        preceding_job=draw(_int_field),
        think_time=draw(_int_field),
    )


class TestRoundTrip:
    @given(st.lists(swf_jobs(), min_size=0, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_write_parse_write_is_byte_identical(self, jobs):
        """Canonical output is a fixed point: format -> parse -> format."""
        first = io.StringIO()
        write_swf(first, jobs, comments=("; generated",))
        reparsed = list(iter_swf_jobs(io.StringIO(first.getvalue())))
        second = io.StringIO()
        write_swf(second, reparsed, comments=("; generated",))
        assert first.getvalue() == second.getvalue()

    @given(swf_jobs())
    @settings(max_examples=60, deadline=None)
    def test_single_line_round_trip(self, job):
        line = format_swf_job(job)
        (parsed,) = iter_swf_jobs(io.StringIO(line + "\n"))
        assert format_swf_job(parsed) == line

    def test_read_swf_preserves_comments_verbatim(self, tmp_path):
        path = tmp_path / "t.swf"
        comments = ("; Computer: somewhere", "; UnixStartTime: 0")
        write_swf(path, [SWFJob(*([1] * 18))], comments)
        got_comments, jobs = read_swf(path)
        assert tuple(got_comments) == comments
        assert len(jobs) == 1

    def test_write_swf_prefixes_bare_comments(self, tmp_path):
        path = tmp_path / "t.swf"
        write_swf(path, [], comments=("bare note",))
        comments, _ = read_swf(path)
        assert comments == ["; bare note"]


class TestErrors:
    def test_short_line_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text("; header\n1 2 3\n", encoding="utf-8")
        with pytest.raises(TraceError, match=r"bad\.swf:2: .*3 fields, expected 18"):
            list(iter_swf_jobs(path))

    def test_long_line_rejected(self):
        line = " ".join(["1"] * 19)
        with pytest.raises(TraceError, match="19 fields"):
            list(iter_swf_jobs(io.StringIO(line + "\n")))

    def test_non_numeric_field_rejected(self):
        fields = ["1"] * 18
        fields[3] = "banana"
        with pytest.raises(TraceError, match="banana"):
            list(iter_swf_jobs(io.StringIO(" ".join(fields) + "\n")))

    def test_blank_lines_and_comments_skipped(self):
        text = ";c\n\n   \n" + " ".join(["7"] * 18) + "\n"
        jobs = list(iter_swf_jobs(io.StringIO(text)))
        assert [j.job_number for j in jobs] == [7]


class TestFixture:
    def test_fixture_is_deterministic_and_parseable(self, tmp_path):
        a, b = tmp_path / "a.swf", tmp_path / "b.swf"
        totals = generate_swf_fixture(a, 300, seed=9)
        generate_swf_fixture(b, 300, seed=9)
        assert a.read_bytes() == b.read_bytes()
        assert totals["jobs"] == 300
        jobs = list(iter_swf_jobs(a))
        assert len(jobs) == 300
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)

    def test_fixture_seed_changes_content(self, tmp_path):
        a, b = tmp_path / "a.swf", tmp_path / "b.swf"
        generate_swf_fixture(a, 100, seed=1)
        generate_swf_fixture(b, 100, seed=2)
        assert a.read_bytes() != b.read_bytes()

    def test_fixture_round_trips_byte_identically(self, tmp_path):
        path = tmp_path / "f.swf"
        generate_swf_fixture(path, 150, seed=3)
        comments, jobs = read_swf(path)
        rewritten = tmp_path / "g.swf"
        write_swf(rewritten, jobs, comments)
        assert path.read_bytes() == rewritten.read_bytes()
