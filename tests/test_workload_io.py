"""Unit tests for repro.workload.io (trace/cluster serialisation)."""

import pytest

from repro.errors import ClusterError, TraceError
from repro.workload.cluster import ClusterTemplate
from repro.workload.distributions import RandomStreams
from repro.workload.io import (
    cluster_from_json,
    cluster_to_json,
    trace_from_csv,
    trace_from_jsonl,
    trace_to_csv,
    trace_to_jsonl,
)
from repro.workload.trace import Trace, TraceJob

from conftest import make_job


@pytest.fixture
def sample_trace():
    return Trace(
        [
            make_job(0, submit=0.0, runtime=10.0),
            make_job(1, submit=1.5, runtime=20.0, priority=100, cores=2,
                     memory_gb=4.0, candidate_pools=("a", "b")),
            TraceJob(job_id=2, submit_minute=3.0, runtime_minutes=5.0,
                     os_family="windows", task_id=7, user="someone"),
        ]
    )


class TestJsonlRoundTrip:
    def test_round_trip_exact(self, sample_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(sample_trace, path)
        assert trace_from_jsonl(path) == sample_trace

    def test_blank_lines_skipped(self, sample_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_to_jsonl(sample_trace, path)
        content = path.read_text() + "\n\n"
        path.write_text(content)
        assert trace_from_jsonl(path) == sample_trace

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceError):
            trace_from_jsonl(path)

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"job_id": 1}\n')
        with pytest.raises(TraceError):
            trace_from_jsonl(path)

    def test_empty_file_is_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert len(trace_from_jsonl(path)) == 0


class TestCsvRoundTrip:
    def test_round_trip_exact(self, sample_trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace_to_csv(sample_trace, path)
        assert trace_from_csv(path) == sample_trace

    def test_candidate_pools_pipe_joined(self, sample_trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace_to_csv(sample_trace, path)
        assert "a|b" in path.read_text()


class TestClusterRoundTrip:
    def test_round_trip_exact(self, tmp_path):
        cluster = ClusterTemplate(scale=0.05).build(RandomStreams(3))
        path = tmp_path / "cluster.json"
        cluster_to_json(cluster, path)
        assert cluster_from_json(path) == cluster

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ClusterError):
            cluster_from_json(path)

    def test_malformed_document_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"pools": [{"pool_id": "a"}]}')
        with pytest.raises(ClusterError):
            cluster_from_json(path)
