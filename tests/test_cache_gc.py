"""Tests for cache disk inspection and garbage collection.

Covers the ``repro cache`` CLI's substrate: ``peek`` (stats-neutral
reads for the fabric coordinator), ``iter_entries`` / ``disk_stats``
(inspection), and ``gc`` (age- and size-bounded eviction with lease
and temp-file cleanup, honest dry runs, and reader-safe atomicity).
"""

from __future__ import annotations

import os

from repro.experiments.cache import CacheDiskStats, CacheGcReport, ResultCache
from repro.fabric.lease import LeaseStore


def key(i: int) -> str:
    return f"{i:02x}" + "0" * 62


def fill(cache: ResultCache, n: int, payload_bytes: int = 0):
    keys = [key(i) for i in range(n)]
    for i, k in enumerate(keys):
        cache.put(k, {"cell": i, "pad": "x" * payload_bytes})
    return keys


class TestPeek:
    def test_peek_does_not_touch_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        (k,) = fill(cache, 1)
        stores = cache.stats.stores
        assert cache.peek(k)["cell"] == 0
        assert cache.peek(key(99)) is None
        assert (cache.stats.hits, cache.stats.misses) == (0, 0)
        assert cache.stats.stores == stores

    def test_peek_leaves_defective_entry_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        (k,) = fill(cache, 1)
        path = cache.path_for(k)
        path.write_bytes(b"corrupted beyond recognition")
        assert cache.peek(k) is None
        assert path.exists()
        # ...while a real get evicts it
        assert cache.get(k) is None
        assert not path.exists()


class TestIterEntries:
    def test_yields_every_entry_sorted(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 5)
        listed = [k for k, _p, _s, _m in cache.iter_entries()]
        assert listed == sorted(keys)

    def test_skips_leases_dir_and_foreign_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 2)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        assert leases.claim(key(0))
        (tmp_path / "00" / "README.txt").write_text("not an entry")
        (tmp_path / "not-a-shard").mkdir()
        (tmp_path / "not-a-shard" / f"{key(3)}.bin").write_bytes(b"x")
        listed = [k for k, _p, _s, _m in cache.iter_entries()]
        assert listed == [key(0), key(1)]


class TestDiskStats:
    def test_counts_entries_bytes_and_leases(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 3)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        for k in keys[:2]:
            assert leases.claim(k)
        stats = cache.disk_stats()
        assert isinstance(stats, CacheDiskStats)
        assert stats.entries == 3
        assert stats.total_bytes == sum(
            s for _k, _p, s, _m in cache.iter_entries()
        )
        assert stats.lease_files == 2
        assert "3 entries" in stats.as_line()

    def test_empty_cache(self, tmp_path):
        stats = ResultCache(tmp_path).disk_stats()
        assert stats.entries == 0
        assert stats.total_bytes == 0
        assert stats.oldest_age_seconds == 0.0

    def test_ages_use_injected_now(self, tmp_path):
        cache = ResultCache(tmp_path)
        (k,) = fill(cache, 1)
        os.utime(cache.path_for(k), (1000.0, 1000.0))
        stats = cache.disk_stats(now=1600.0)
        assert stats.oldest_age_seconds == 600.0
        assert stats.newest_age_seconds == 600.0


class TestGc:
    def test_age_bound_evicts_only_old_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 4)
        for k in keys[:2]:
            os.utime(cache.path_for(k), (1000.0, 1000.0))
        for k in keys[2:]:
            os.utime(cache.path_for(k), (2000.0, 2000.0))
        report = cache.gc(max_age_seconds=500.0, now=2100.0)
        assert isinstance(report, CacheGcReport)
        assert report.scanned == 4
        assert report.evicted == 2
        assert cache.peek(keys[0]) is None
        assert cache.peek(keys[2]) is not None
        assert cache.stats.evictions == 2

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 4, payload_bytes=1024)
        sizes = {k: s for k, _p, s, _m in cache.iter_entries()}
        for i, k in enumerate(keys):
            os.utime(cache.path_for(k), (1000.0 + i, 1000.0 + i))
        budget = sizes[keys[2]] + sizes[keys[3]]
        report = cache.gc(max_bytes=budget)
        assert report.evicted == 2
        assert cache.peek(keys[0]) is None
        assert cache.peek(keys[1]) is None
        assert cache.peek(keys[2]) is not None
        assert cache.peek(keys[3]) is not None
        assert report.bytes_remaining <= budget

    def test_dry_run_changes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 3)
        report = cache.gc(max_bytes=0, dry_run=True)
        assert report.dry_run
        assert report.evicted == 3
        assert all(cache.peek(k) is not None for k in keys)
        assert cache.stats.evictions == 0
        assert "would evict" in report.as_line()

    def test_age_gc_removes_stale_lease_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 2)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        for k in keys:
            assert leases.claim(k)
            leases.release_done(k)
        for k in keys:
            os.utime(leases.path_for(k), (1000.0, 1000.0))
            os.utime(cache.path_for(k), (1000.0, 1000.0))
        report = cache.gc(max_age_seconds=100.0, now=5000.0)
        assert report.evicted == 2
        assert report.lease_files_removed == 2
        assert leases.read(keys[0]) is None

    def test_size_gc_removes_leases_orphaned_by_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 2, payload_bytes=2048)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        for k in keys:
            assert leases.claim(k)
            leases.release_done(k)
        os.utime(cache.path_for(keys[0]), (1000.0, 1000.0))
        report = cache.gc(max_bytes=3000)
        assert report.evicted == 1
        assert report.lease_files_removed == 1
        assert leases.read(keys[0]) is None
        assert leases.read(keys[1]) is not None

    def test_gc_sweeps_orphaned_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 1)
        orphan = tmp_path / "00" / f"{key(0)}.bin.tmp.12345"
        orphan.write_bytes(b"half-written")
        cache.gc(max_age_seconds=10**9)
        assert not orphan.exists()

    def test_dry_run_keeps_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        fill(cache, 1)
        orphan = tmp_path / "00" / f"{key(0)}.bin.tmp.12345"
        orphan.write_bytes(b"half-written")
        cache.gc(max_bytes=0, dry_run=True)
        assert orphan.exists()

    def test_reader_racing_gc_sees_hit_or_clean_miss(self, tmp_path):
        # gc unlinks whole files; a concurrent get() on the same key
        # must decode a complete entry or take a clean miss — never
        # crash on a torn read.
        cache = ResultCache(tmp_path)
        reader = ResultCache(tmp_path)
        keys = fill(cache, 8)
        import threading

        results = []

        def read_all():
            for _ in range(50):
                for k in keys:
                    results.append(reader.get(k))

        t = threading.Thread(target=read_all)
        t.start()
        cache.gc(max_bytes=0)
        t.join()
        assert all(r is None or isinstance(r, dict) for r in results)

    def test_no_bounds_is_a_noop_for_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 2)
        report = cache.gc()
        assert report.evicted == 0
        assert all(cache.peek(k) is not None for k in keys)


class TestGcConcurrentWithFleet:
    """``cache gc`` racing an active fleet (satellite invariants).

    A gc pass over a cache that a live fleet is using must never evict
    an entry whose cell is under a *live* claimed lease (the worker
    would see its published result vanish mid-run) and never remove a
    heartbeating lease file (that would hand the cell to a second
    worker while the first still computes).  Liveness is judged by the
    lease file's mtime — heartbeats rewrite it — against
    ``lease_grace_seconds``.
    """

    def test_age_gc_spares_live_leased_entry(self, tmp_path):
        import time as time_module

        cache = ResultCache(tmp_path)
        keys = fill(cache, 2)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        assert leases.claim(keys[0])  # live: lease file mtime is now
        now = time_module.time()
        for k in keys:
            os.utime(cache.path_for(k), (now - 5000.0, now - 5000.0))
        report = cache.gc(max_age_seconds=100.0, now=now)
        assert report.evicted == 1
        assert report.leases_live == 1
        assert cache.peek(keys[0]) is not None  # protected
        assert cache.peek(keys[1]) is None
        assert "1 live lease(s) protected" in report.as_line()

    def test_size_gc_spares_live_leased_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = fill(cache, 2, payload_bytes=2048)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        assert leases.claim(keys[0])
        # keys[0] is the older entry — normally first out the door.
        os.utime(cache.path_for(keys[0]), (1000.0, 1000.0))
        report = cache.gc(max_bytes=3000)
        assert report.evicted == 1
        assert cache.peek(keys[0]) is not None
        assert cache.peek(keys[1]) is None

    def test_gc_never_removes_heartbeating_lease(self, tmp_path):
        import time as time_module

        cache = ResultCache(tmp_path)
        keys = fill(cache, 1)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        assert leases.claim(keys[0])
        assert leases.heartbeat(keys[0])  # fresh mtime
        now = time_module.time()
        os.utime(cache.path_for(keys[0]), (now - 5000.0, now - 5000.0))
        report = cache.gc(max_age_seconds=100.0, now=now)
        assert report.lease_files_removed == 0
        assert leases.read(keys[0]).worker_id == "w"
        assert report.leases_live == 1

    def test_stale_claim_past_grace_is_not_protected(self, tmp_path):
        import time as time_module

        cache = ResultCache(tmp_path)
        keys = fill(cache, 1)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        assert leases.claim(keys[0])
        now = time_module.time()
        # The holder stopped heartbeating well past the grace window:
        # the lease no longer pins the entry.
        os.utime(leases.path_for(keys[0]), (now - 500.0, now - 500.0))
        os.utime(cache.path_for(keys[0]), (now - 5000.0, now - 5000.0))
        report = cache.gc(
            max_age_seconds=100.0, now=now, lease_grace_seconds=120.0
        )
        assert report.evicted == 1
        assert report.leases_live == 0
        assert cache.peek(keys[0]) is None

    def test_done_markers_are_not_live(self, tmp_path):
        import time as time_module

        cache = ResultCache(tmp_path)
        keys = fill(cache, 1)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        assert leases.claim(keys[0])
        leases.release_done(keys[0])  # fresh mtime, but status=done
        now = time_module.time()
        os.utime(cache.path_for(keys[0]), (now - 5000.0, now - 5000.0))
        report = cache.gc(max_age_seconds=100.0, now=now)
        assert report.evicted == 1
        assert report.lease_files_removed == 1
        assert report.leases_live == 0

    def test_worker_racing_gc_keeps_computing(self, tmp_path):
        # End-to-end shape of the race: a worker claims, computes and
        # publishes while gc passes run concurrently with an age bound
        # that would evict everything unprotected.  The worker's cell
        # must survive to its release_done.
        import threading
        import time as time_module

        cache = ResultCache(tmp_path)
        keys = fill(cache, 4)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        assert leases.claim(keys[0])
        now = time_module.time()
        for k in keys:
            os.utime(cache.path_for(k), (now - 5000.0, now - 5000.0))
        stop = threading.Event()

        def gc_loop():
            while not stop.is_set():
                cache.gc(max_age_seconds=100.0)
                time_module.sleep(0.005)

        thread = threading.Thread(target=gc_loop)
        thread.start()
        try:
            for _ in range(10):  # "compute", heartbeating throughout
                assert leases.heartbeat(keys[0])
                assert cache.peek(keys[0]) is not None
                time_module.sleep(0.01)
            leases.release_done(keys[0])
        finally:
            stop.set()
            thread.join()
        assert cache.peek(keys[0]) is not None
