"""Unit tests for repro.metrics (summary, cdf, timeseries, report)."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.report import format_minutes, render_table, render_waste_components
from repro.metrics.summary import PerformanceSummary, WasteBreakdown, summarize
from repro.metrics.timeseries import (
    aggregate_samples,
    suspension_series,
    utilization_series,
)
from repro.simulator.results import JobRecord, SimulationResult, StateSample


def record(
    job_id=0,
    submit=0.0,
    finish=100.0,
    wait=0.0,
    suspend=0.0,
    resched=0.0,
    suspensions=0,
    rejected=False,
    priority=0,
):
    return JobRecord(
        job_id=job_id,
        priority=priority,
        submit_minute=submit,
        finish_minute=None if rejected else finish,
        runtime_minutes=50.0,
        cores=1,
        memory_gb=1.0,
        wait_time=wait,
        suspend_time=suspend,
        wasted_restart_time=resched,
        suspension_count=suspensions,
        restart_count=0,
        migration_count=0,
        waiting_move_count=0,
        pools_visited=("p0",),
        rejected=rejected,
        task_id=None,
        user="u",
    )


def result(records, samples=()):
    return SimulationResult(
        records=records,
        samples=samples,
        pool_ids=("p0",),
        policy_name="NoRes",
        scheduler_name="RoundRobin",
        total_cores=10,
    )


def sample(minute, busy=5, suspended=0, waiting=0, running=5):
    return StateSample(
        minute=minute,
        busy_cores=busy,
        total_cores=10,
        running_jobs=running,
        suspended_jobs=suspended,
        waiting_jobs=waiting,
        per_pool_busy=(busy,),
    )


class TestJobRecord:
    def test_derived_properties(self):
        r = record(submit=10.0, finish=60.0, wait=5.0, suspend=3.0, resched=2.0)
        assert r.completion_time == 50.0
        assert r.wasted_completion_time == 10.0
        assert not r.was_suspended

    def test_rejected_record(self):
        r = record(rejected=True)
        assert r.completion_time is None


class TestSummarize:
    def test_paper_metric_definitions(self):
        records = [
            record(0, finish=100.0, wait=10.0),  # not suspended
            record(1, finish=200.0, suspend=40.0, suspensions=1),
            record(2, finish=300.0, suspend=20.0, suspensions=2, resched=5.0),
        ]
        summary = summarize(result(records))
        assert summary.job_count == 3
        assert summary.suspend_rate == pytest.approx(2 / 3)
        assert summary.avg_ct_all == pytest.approx((100 + 200 + 300) / 3)
        assert summary.avg_ct_suspended == pytest.approx(250.0)
        assert summary.avg_st == pytest.approx(30.0)
        # AvgWCT averages over ALL jobs
        assert summary.avg_wct == pytest.approx((10 + 40 + 25) / 3)
        assert summary.waste.wait_time == pytest.approx(10 / 3)
        assert summary.waste.suspend_time == pytest.approx(60 / 3)
        assert summary.waste.resched_time == pytest.approx(5 / 3)

    def test_no_suspended_jobs(self):
        summary = summarize(result([record(0)]))
        assert summary.avg_ct_suspended is None
        assert summary.avg_st is None
        assert summary.suspend_rate == 0.0

    def test_rejected_jobs_excluded_from_averages(self):
        records = [record(0, finish=100.0), record(1, rejected=True)]
        summary = summarize(result(records))
        assert summary.job_count == 2
        assert summary.completed_count == 1
        assert summary.rejected_count == 1
        assert summary.avg_ct_all == 100.0

    def test_empty_result(self):
        summary = summarize(result([]))
        assert summary.job_count == 0
        assert summary.avg_ct_all == 0.0

    def test_waste_total_is_avg_wct(self):
        breakdown = WasteBreakdown(wait_time=1.0, suspend_time=2.0, resched_time=3.0)
        assert breakdown.total == 6.0


class TestEmpiricalCDF:
    def test_percentiles(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.median == 2.5
        assert cdf.percentile(0) == 1.0
        assert cdf.percentile(100) == 4.0

    def test_fractions(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_most(2.0) == 0.5
        assert cdf.fraction_above(3.0) == 0.25
        assert cdf.fraction_at_most(0.5) == 0.0
        assert cdf.fraction_above(99.0) == 0.0

    def test_stats(self):
        cdf = EmpiricalCDF([5.0, 1.0, 3.0])
        assert cdf.minimum == 1.0
        assert cdf.maximum == 5.0
        assert cdf.mean == 3.0
        assert len(cdf) == 3

    def test_points_monotone(self):
        cdf = EmpiricalCDF(list(range(100)))
        points = cdf.points(count=10)
        assert len(points) == 10
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCDF([])
        with pytest.raises(ConfigurationError):
            EmpiricalCDF([1.0]).points(count=1)


class TestTimeseries:
    def test_aggregation_windows(self):
        samples = [sample(float(m), busy=m % 10) for m in range(250)]
        points = aggregate_samples(samples, window_minutes=100.0)
        assert len(points) == 3
        assert points[0].window_start == 0.0
        assert points[1].window_start == 100.0
        assert points[0].sample_count == 100
        assert points[2].sample_count == 50

    def test_window_means(self):
        samples = [sample(0.0, busy=2, suspended=4), sample(1.0, busy=4, suspended=6)]
        (point,) = aggregate_samples(samples, window_minutes=100.0)
        assert point.utilization == pytest.approx(0.3)
        assert point.suspended_jobs == pytest.approx(5.0)

    def test_empty_samples(self):
        assert aggregate_samples([]) == []

    def test_series_helpers(self):
        samples = [sample(float(m), busy=5, suspended=2) for m in range(100)]
        assert utilization_series(samples) == [pytest.approx(50.0)]
        assert suspension_series(samples) == [pytest.approx(2.0)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            aggregate_samples([sample(0.0)], window_minutes=0.0)


class TestReport:
    def make_summary(self, name="NoRes"):
        return PerformanceSummary(
            policy_name=name,
            scheduler_name="RoundRobin",
            job_count=100,
            completed_count=100,
            rejected_count=0,
            suspend_rate=0.0114,
            avg_ct_suspended=2498.7,
            avg_ct_all=569.8,
            avg_st=1189.1,
            waste=WasteBreakdown(10.0, 20.0, 1.0),
            avg_restarts=0.1,
            avg_waiting_moves=0.0,
        )

    def test_render_table_contains_paper_columns(self):
        text = render_table([self.make_summary()], "Table 1")
        assert "Table 1" in text
        assert "1.14%" in text
        assert "2498.7" in text
        assert "569.8" in text
        assert "1189.1" in text
        assert "31.0" in text  # waste total

    def test_render_waste_components(self):
        text = render_waste_components([self.make_summary()])
        assert "10.0" in text and "20.0" in text and "31.0" in text

    def test_format_minutes_none(self):
        assert format_minutes(None) == "-"
        assert format_minutes(12.34) == "12.3"
