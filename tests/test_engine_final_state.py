"""Post-run conservation: after every job finishes, the site is empty.

These tests drive mid-size stochastic workloads through the engine with
deep invariant checking enabled and then inspect the engine's final
state directly: every machine must have all cores and memory free, all
queues empty, and no suspended residents — under every policy family,
including the ones that move jobs mid-flight.
"""

import pytest

import repro
from repro.core.policies import DuplicateSuspended, MigrateSuspended
from repro.core.selectors import LowestUtilizationSelector
from repro.core.overheads import RestartOverhead
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import SimulationEngine

POLICIES = {
    "NoRes": repro.no_res,
    "ResSusUtil": repro.res_sus_util,
    "ResSusWaitRand": repro.res_sus_wait_rand,
    "DupSusUtil": lambda: DuplicateSuspended(LowestUtilizationSelector()),
    "MigSusUtil": lambda: MigrateSuspended(LowestUtilizationSelector()),
}


def assert_site_empty(engine: SimulationEngine) -> None:
    for pool in engine.pools.values():
        assert pool.busy_cores == 0, pool.pool_id
        assert pool.running_jobs == 0, pool.pool_id
        assert len(pool.wait_queue) == 0, pool.pool_id
        assert pool.suspended == {}, pool.pool_id
        for machine in pool.machines:
            assert machine.free_cores == machine.spec.cores, machine.machine_id
            assert machine.free_memory_gb == pytest.approx(
                machine.spec.memory_gb
            ), machine.machine_id
            assert not machine.running
            assert not machine.suspended


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_site_drains_completely(policy_name, smoke_scenario):
    engine = SimulationEngine(
        smoke_scenario.trace,
        smoke_scenario.cluster,
        policy=POLICIES[policy_name](),
        config=SimulationConfig(
            strict=False, record_samples=False, check_invariants=True
        ),
    )
    result = engine.run()
    assert len(result.records) == len(smoke_scenario.trace)
    assert_site_empty(engine)


def test_site_drains_with_overheads(smoke_scenario):
    engine = SimulationEngine(
        smoke_scenario.trace,
        smoke_scenario.cluster,
        policy=repro.res_sus_wait_util(),
        config=SimulationConfig(
            strict=False,
            record_samples=False,
            check_invariants=True,
            restart_overhead=RestartOverhead(fixed_minutes=7.0, per_gb_minutes=0.5),
        ),
    )
    engine.run()
    assert_site_empty(engine)


def test_site_drains_with_migration_dilation(smoke_scenario):
    engine = SimulationEngine(
        smoke_scenario.trace,
        smoke_scenario.cluster,
        policy=MigrateSuspended(LowestUtilizationSelector()),
        config=SimulationConfig(
            strict=False,
            record_samples=False,
            check_invariants=True,
            migration_dilation=0.25,
        ),
    )
    engine.run()
    assert_site_empty(engine)
