"""Unit tests for the physical pool manager."""

import pytest

from repro.errors import SchedulingError
from repro.simulator.job import Job, JobState
from repro.simulator.pool import PhysicalPool, SubmitOutcome

from conftest import make_job, make_pool


def pool(machine_count=2, cores=4, memory=16.0, os_family="linux"):
    return PhysicalPool(
        make_pool("p0", machine_count, cores=cores, memory_gb=memory, os_family=os_family)
    )


def submit(p, job_id=1, now=0.0, **job_kwargs):
    job = Job(make_job(job_id, **job_kwargs))
    return job, p.submit(job, now)


class TestSubmit:
    def test_first_fit_starts_immediately(self):
        p = pool()
        job, result = submit(p)
        assert result.outcome is SubmitOutcome.STARTED
        assert result.machine is p.machines[0]
        assert job.state is JobState.RUNNING
        assert p.busy_cores == 1
        assert p.running_job_count() == 1

    def test_fills_first_machine_first(self):
        p = pool(machine_count=2, cores=2)
        submit(p, 1)
        job, result = submit(p, 2)
        assert result.machine is p.machines[0]
        job, result = submit(p, 3)
        assert result.machine is p.machines[1]

    def test_queues_when_full(self):
        p = pool(machine_count=1, cores=1)
        submit(p, 1)
        job, result = submit(p, 2)
        assert result.outcome is SubmitOutcome.QUEUED
        assert job.state is JobState.WAITING
        assert len(p.wait_queue) == 1

    def test_ineligible_when_no_machine_matches(self):
        p = pool(os_family="linux")
        job, result = submit(p, 1, os_family="windows")
        assert result.outcome is SubmitOutcome.INELIGIBLE
        assert job.state is JobState.PENDING

    def test_preemption_of_lower_priority(self):
        p = pool(machine_count=1, cores=1)
        victim, _ = submit(p, 1, priority=0, runtime=100.0)
        high, result = submit(p, 2, now=5.0, priority=100)
        assert result.outcome is SubmitOutcome.PREEMPTED
        assert result.victims == (victim,)
        assert victim.state is JobState.SUSPENDED
        assert high.state is JobState.RUNNING
        assert victim.job_id in p.suspended
        assert p.running_job_count() == 1

    def test_no_preemption_of_equal_priority(self):
        p = pool(machine_count=1, cores=1)
        submit(p, 1, priority=50)
        job, result = submit(p, 2, priority=50)
        assert result.outcome is SubmitOutcome.QUEUED

    def test_preemption_blocked_by_memory(self):
        p = pool(machine_count=1, cores=4, memory=4.0)
        submit(p, 1, priority=0, cores=4, memory_gb=3.0)
        # suspending the victim frees cores but not its 3GB
        job, result = submit(p, 2, priority=100, cores=1, memory_gb=2.0)
        assert result.outcome is SubmitOutcome.QUEUED

    def test_utilization_and_snapshot(self):
        p = pool(machine_count=2, cores=4)
        submit(p, 1, cores=2)
        assert p.utilization() == pytest.approx(2 / 8)
        snapshot = p.snapshot()
        assert snapshot.busy_cores == 2
        assert snapshot.total_cores == 8
        assert snapshot.waiting_jobs == 0


class TestFillMachine:
    def test_finish_starts_queued_job(self):
        p = pool(machine_count=1, cores=1)
        first, _ = submit(p, 1, runtime=10.0)
        second, _ = submit(p, 2)
        machine = p.finish_job(first, 10.0)
        placed = p.fill_machine(machine, 10.0)
        assert placed == [second]
        assert second.state is JobState.RUNNING
        assert second.total_wait == 10.0

    def test_suspended_resumes_before_waiting_regardless_of_priority(self):
        p = pool(machine_count=1, cores=1)
        victim, _ = submit(p, 1, priority=0, runtime=100.0)
        preemptor, _ = submit(p, 2, priority=100, runtime=10.0)
        waiting_high, _ = submit(p, 3, priority=100)
        machine = p.finish_job(preemptor, 10.0)
        placed = p.fill_machine(machine, 10.0)
        # the resident suspended job resumes first (host-level semantics)
        assert placed[0] is victim
        assert victim.state is JobState.RUNNING
        assert waiting_high.state is JobState.WAITING

    def test_waiting_job_starts_when_no_resumable_fits(self):
        p = pool(machine_count=1, cores=2)
        victim, _ = submit(p, 1, priority=0, cores=2, runtime=100.0)
        preemptor, _ = submit(p, 2, priority=100, cores=2, runtime=10.0)
        small, _ = submit(p, 3, priority=0, cores=1)
        # only one core frees: suspend the preemptor's... here finish it partially:
        # finish preemptor entirely -> victim (2 cores) resumes first instead.
        machine = p.finish_job(preemptor, 10.0)
        placed = p.fill_machine(machine, 10.0)
        assert victim in placed

    def test_fill_respects_eligibility(self):
        p = pool(machine_count=1, cores=2, memory=4.0)
        first, _ = submit(p, 1, cores=2, memory_gb=4.0, runtime=10.0)
        big, _ = submit(p, 2, memory_gb=16.0)  # queued? no - ineligible
        assert big.state is JobState.PENDING
        heavy, _ = submit(p, 3, memory_gb=4.0, cores=2)
        machine = p.finish_job(first, 10.0)
        placed = p.fill_machine(machine, 10.0)
        assert placed == [heavy]

    def test_multiple_placements_one_fill(self):
        p = pool(machine_count=1, cores=4)
        blocker, _ = submit(p, 1, cores=4, runtime=10.0)
        a, _ = submit(p, 2, cores=2)
        b, _ = submit(p, 3, cores=2)
        machine = p.finish_job(blocker, 10.0)
        placed = p.fill_machine(machine, 10.0)
        assert {j.job_id for j in placed} == {2, 3}


class TestDetach:
    def test_detach_suspended_abandons_and_frees_memory(self):
        p = pool(machine_count=1, cores=1, memory=16.0)
        victim, _ = submit(p, 1, priority=0, memory_gb=8.0, runtime=100.0)
        submit(p, 2, now=5.0, priority=100, memory_gb=8.0)
        machine = p.detach_suspended(victim, 20.0)
        assert victim.state is JobState.PENDING
        assert victim.wasted_restart == 5.0
        assert victim.total_suspend == 15.0
        assert machine.free_memory_gb == 8.0
        assert victim.job_id not in p.suspended

    def test_detach_suspended_requires_suspended(self):
        p = pool()
        job, _ = submit(p, 1)
        with pytest.raises(SchedulingError):
            p.detach_suspended(job, 0.0)

    def test_remove_waiting(self):
        p = pool(machine_count=1, cores=1)
        submit(p, 1)
        waiting, _ = submit(p, 2)
        p.remove_waiting(waiting, 6.0)
        assert waiting.state is JobState.PENDING
        assert waiting.total_wait == 6.0
        assert len(p.wait_queue) == 0

    def test_finish_job_requires_running(self):
        p = pool()
        job = Job(make_job(1))
        with pytest.raises(SchedulingError):
            p.finish_job(job, 0.0)


class TestCancelJob:
    def test_cancel_running(self):
        p = pool()
        job, _ = submit(p, 1)
        machine = p.cancel_job(job, 5.0)
        assert machine is not None
        assert job.state is JobState.FINISHED
        assert p.busy_cores == 0

    def test_cancel_suspended(self):
        p = pool(machine_count=1, cores=1)
        victim, _ = submit(p, 1, priority=0, runtime=50.0)
        submit(p, 2, priority=100)
        machine = p.cancel_job(victim, 5.0)
        assert machine is not None
        assert victim.job_id not in p.suspended

    def test_cancel_waiting(self):
        p = pool(machine_count=1, cores=1)
        submit(p, 1)
        waiting, _ = submit(p, 2)
        assert p.cancel_job(waiting, 5.0) is None
        assert len(p.wait_queue) == 0

    def test_cancel_finished_rejected(self):
        p = pool()
        job, _ = submit(p, 1)
        p.finish_job(job, 1.0)
        with pytest.raises(SchedulingError):
            p.cancel_job(job, 2.0)


class TestInvariants:
    def test_check_invariants_clean(self):
        p = pool(machine_count=2, cores=2)
        submit(p, 1)
        submit(p, 2, priority=100, cores=2)
        p.check_invariants()

    def test_check_invariants_detects_counter_drift(self):
        p = pool()
        submit(p, 1)
        p.busy_cores += 1
        with pytest.raises(SchedulingError):
            p.check_invariants()
