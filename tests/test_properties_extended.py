"""Additional property-based tests covering the extension subsystems."""


from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.metrics.summary import summarize
from repro.simulator.config import SimulationConfig
from repro.simulator.observer import EventLog
from repro.simulator.results import JobRecord, SimulationResult
from repro.telemetry import Instrumentation
from repro.sites import SiteSpec, SiteTopology
from repro.workload.arrivals import DiurnalPoissonProcess

from conftest import make_cluster, make_job, make_pool, make_trace


# -- site topology -----------------------------------------------------------------


@given(
    site_sizes=st.lists(st.integers(1, 4), min_size=2, max_size=5),
    transfer=st.floats(0.0, 500.0),
)
def test_topology_transfer_symmetric_and_zero_locally(site_sizes, transfer):
    sites = []
    for s, size in enumerate(site_sizes):
        pools = tuple(make_pool(f"s{s}/p{i}", 1) for i in range(size))
        sites.append(SiteSpec(f"s{s}", pools))
    topo = SiteTopology(sites, transfer_minutes=transfer)
    pool_ids = [p for site in sites for p in site.pool_ids]
    for a in pool_ids:
        for b in pool_ids:
            forward = topo.transfer_minutes(a, b)
            backward = topo.transfer_minutes(b, a)
            assert forward == backward
            if topo.same_site(a, b):
                assert forward == 0.0
            else:
                assert forward == transfer


# -- diurnal process -----------------------------------------------------------------


@given(
    base=st.floats(0.01, 5.0),
    amplitude=st.floats(0.0, 0.99),
    weekend=st.floats(0.01, 1.0),
    minute=st.floats(0.0, 1440.0 * 21),
)
def test_diurnal_rate_within_envelope(base, amplitude, weekend, minute):
    process = DiurnalPoissonProcess(
        base_rate=base, daily_amplitude=amplitude, weekend_factor=weekend
    )
    rate = process.rate_at(minute)
    assert 0.0 <= rate <= base * (1.0 + amplitude) + 1e-9
    assert rate >= base * (1.0 - amplitude) * weekend - 1e-9


# -- event-log lifecycle grammar -------------------------------------------------------


_NEXT_ALLOWED = {
    "submit": {"start", "queue", "reject"},
    "queue": {"start", "dequeue"},
    "dequeue": {"start", "queue"},
    "start": {"suspend", "finish"},
    "suspend": {"resume", "restart", "migrate", "duplicate"},
    "duplicate": {"resume", "restart", "migrate", "finish"},
    "resume": {"suspend", "finish"},
    "restart": {"start", "queue"},
    "migrate": {"start", "queue"},
}


@given(
    runtimes=st.lists(st.floats(1.0, 40.0), min_size=2, max_size=12),
    priorities=st.lists(st.sampled_from([0, 50, 100]), min_size=12, max_size=12),
    policy_index=st.integers(0, 2),
)
@settings(max_examples=40, deadline=None)
def test_event_sequences_follow_lifecycle_grammar(runtimes, priorities, policy_index):
    """Every job's event sequence is a valid lifecycle path."""
    policies = [repro.no_res, repro.res_sus_util, repro.res_sus_wait_util]
    jobs = [
        make_job(i, submit=i * 2.0, runtime=runtime, priority=priorities[i])
        for i, runtime in enumerate(runtimes)
    ]
    log = EventLog()
    repro.run_simulation(
        make_trace(jobs),
        make_cluster([("p0", 1), ("p1", 1)]),
        policy=policies[policy_index](),
        config=SimulationConfig(
            strict=False,
            record_samples=False,
            instrumentation=Instrumentation(observers=(log,)),
            check_invariants=False,
        ),
    )
    for job in jobs:
        sequence = [e.event for e in log.for_job(job.job_id)]
        assert sequence, f"job {job.job_id} produced no events"
        assert sequence[0] == "submit"
        assert sequence[-1] in {"finish", "reject"}
        for current, following in zip(sequence, sequence[1:]):
            assert following in _NEXT_ALLOWED[current], (
                f"job {job.job_id}: illegal transition {current} -> {following} "
                f"in {sequence}"
            )


# -- summarize consistency ---------------------------------------------------------------


@st.composite
def job_records(draw):
    job_id = draw(st.integers(0, 10_000))
    rejected = draw(st.booleans())
    submit = draw(st.floats(0.0, 1000.0))
    wait = draw(st.floats(0.0, 500.0))
    suspend = draw(st.floats(0.0, 500.0))
    resched = draw(st.floats(0.0, 500.0))
    suspensions = draw(st.integers(0, 5)) if suspend == 0.0 else draw(st.integers(1, 5))
    return JobRecord(
        job_id=job_id,
        priority=draw(st.sampled_from([0, 50, 100])),
        submit_minute=submit,
        finish_minute=None if rejected else submit + draw(st.floats(1.0, 2000.0)),
        runtime_minutes=draw(st.floats(0.5, 1000.0)),
        cores=1,
        memory_gb=1.0,
        wait_time=wait,
        suspend_time=suspend,
        wasted_restart_time=resched,
        suspension_count=suspensions,
        restart_count=0,
        migration_count=0,
        waiting_move_count=0,
        pools_visited=("p0",),
        rejected=rejected,
        task_id=None,
        user="u",
    )


@given(records=st.lists(job_records(), min_size=0, max_size=40))
def test_summarize_matches_direct_computation(records):
    # deduplicate ids (SimulationResult does not require it, but realism)
    seen = set()
    unique = []
    for record in records:
        if record.job_id not in seen:
            seen.add(record.job_id)
            unique.append(record)
    result = SimulationResult(
        records=unique,
        samples=[],
        pool_ids=("p0",),
        policy_name="x",
        scheduler_name="y",
        total_cores=1,
    )
    summary = summarize(result)
    completed = [r for r in unique if not r.rejected]
    assert summary.completed_count == len(completed)
    if completed:
        expected_wct = sum(r.wasted_completion_time for r in completed) / len(completed)
        assert abs(summary.avg_wct - expected_wct) < 1e-6
        suspended = [r for r in completed if r.was_suspended]
        assert summary.suspend_rate == len(suspended) / len(completed)
    else:
        assert summary.avg_wct == 0.0
