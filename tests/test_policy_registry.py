"""The policy plugin registry: spec grammar, registry round-trips,
entry-point discovery, the new policy families, and the golden-matrix
guarantee that registry-routed baselines stay bit-identical to direct
construction.
"""

import pickle

import pytest

import repro
from repro.core.context import PoolSnapshot, StaticSystemView
from repro.core.decisions import Action
from repro.errors import ConfigurationError, UnknownPolicyError
from repro.policies import (
    FractionalSharePolicy,
    MigrationCostPolicy,
    PolicySpec,
    canonical_spec,
    format_spec,
    parse_spec,
    policy_from_spec,
    selector_from_spec,
    available_policies,
    available_selectors,
)
from repro.policies import registry as registry_module
from repro.workload.cluster import ClusterSpec

from conftest import make_job, make_pool, run_tiny


class TestSpecGrammar:
    def test_bare_name(self):
        spec = parse_spec("NoRes")
        assert spec == PolicySpec("NoRes")
        assert format_spec(spec) == "NoRes"

    def test_typed_params(self):
        spec = parse_spec("dfrs:share=0.5,floor=0.1")
        assert dict(spec.params) == {"share": 0.5, "floor": 0.1}

    def test_scalar_coercion(self):
        spec = parse_spec("x:a=1,b=1.5,c=true,d=false,e=none,f=word")
        assert dict(spec.params) == {
            "a": 1, "b": 1.5, "c": True, "d": False, "e": None, "f": "word",
        }

    def test_nested_selector_spec(self):
        spec = parse_spec("res_sus:selector=weighted(queue_weight=2)")
        (key, inner), = spec.params
        assert key == "selector"
        assert isinstance(inner, PolicySpec)
        assert inner.name == "weighted"
        assert dict(inner.params) == {"queue_weight": 2}

    def test_canonical_sorts_params(self):
        assert canonical_spec("dfrs:share=0.5,floor=0.1") == "dfrs:floor=0.1,share=0.5"
        assert canonical_spec("NoRes") == "NoRes"

    def test_canonical_is_idempotent(self):
        text = "res_sus:selector=weighted(util_weight=2,queue_weight=1)"
        once = canonical_spec(text)
        assert canonical_spec(once) == once

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("res_sus:selector=weighted(queue_weight=2")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("dfrs:share=0.5,share=0.6")

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("no spaces:x=1")


class TestRegistry:
    def test_builtin_policies_present(self):
        names = {entry.name for entry in available_policies()}
        assert {
            "NoRes", "ResSusUtil", "ResSusRand", "ResSusWaitUtil",
            "ResSusWaitRand", "dfrs", "migration_cost",
        } <= names

    def test_builtin_selectors_present(self):
        names = {entry.name for entry in available_selectors()}
        assert {"util", "random", "shortest_queue", "weighted"} <= names

    def test_spec_attribute_is_canonical(self):
        policy = policy_from_spec("dfrs:share=0.5,floor=0.1")
        assert policy.spec == "dfrs:floor=0.1,share=0.5"

    def test_unknown_policy_lists_known_names(self):
        with pytest.raises(UnknownPolicyError, match="dfrs"):
            policy_from_spec("definitely_not_registered")

    def test_context_policy_without_context_fails(self):
        with pytest.raises(ConfigurationError, match="context"):
            policy_from_spec("transfer_aware")

    def test_bad_parameters_surface_the_spec(self):
        with pytest.raises(ConfigurationError, match="dfrs"):
            policy_from_spec("dfrs:bogus_param=1")

    def test_defaults_applied_only_when_accepted(self):
        # NoRes takes no wait threshold: the default is dropped silently.
        baseline = policy_from_spec("NoRes", defaults={"wait_threshold": 45.0})
        assert baseline.wait_threshold is None
        waiting = policy_from_spec(
            "ResSusWaitUtil", defaults={"wait_threshold": 45.0}
        )
        assert waiting.wait_threshold == 45.0

    def test_spec_param_wins_over_default(self):
        policy = policy_from_spec(
            "res_sus_wait:wait_threshold=10", defaults={"wait_threshold": 45.0}
        )
        assert policy.wait_threshold == 10

    def test_selector_from_spec(self):
        selector = selector_from_spec("weighted:queue_weight=2")
        assert type(selector).__name__ == "WeightedSelector"

    def test_registry_pickle_round_trip(self):
        # The worker-side contract: a policy built from a spec pickles
        # (CellTask carries live policies) and the rebuilt object makes
        # the same decision.
        policy = policy_from_spec("dfrs:share=0.5,floor=0.25")
        clone = pickle.loads(pickle.dumps(policy))
        assert clone.name == policy.name
        view = StaticSystemView(
            now=0.0, snapshots=[PoolSnapshot("a", 4, 4, 0, 2)], seed=1
        )
        job = _FakeJob("a")
        assert policy.on_suspend(job, view) == clone.on_suspend(job, view)

    def test_custom_registration_round_trip(self):
        @registry_module.register_policy("test_custom_policy")
        def _factory(share=0.5):
            return FractionalSharePolicy(share=share, name=f"Custom[{share:g}]")

        try:
            policy = policy_from_spec("test_custom_policy:share=0.75")
            assert policy.name == "Custom[0.75]"
            assert policy.spec == "test_custom_policy:share=0.75"
        finally:
            registry_module._POLICIES._entries.pop("test_custom_policy", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            registry_module.register_policy("NoRes")(lambda: None)


class _FakeEntryPoint:
    """Stand-in for importlib.metadata.EntryPoint."""

    def __init__(self, name, hook):
        self.name = name
        self._hook = hook

    def load(self):
        return self._hook


@pytest.fixture
def fresh_plugin_state():
    """Re-arm lazy plugin loading and clean up synthetic registrations."""
    before = registry_module._plugins_loaded
    registry_module._plugins_loaded = False
    yield
    registry_module._plugins_loaded = before
    registry_module._POLICIES._entries.pop("third_party_policy", None)


class TestEntryPointDiscovery:
    def test_synthetic_package_discovered(self, monkeypatch, fresh_plugin_state):
        def register():
            registry_module.register_policy(
                "third_party_policy", description="synthetic plugin"
            )(lambda: repro.no_res())

        def fake_entry_points(group=None):
            assert group == registry_module.ENTRY_POINT_GROUP
            return [_FakeEntryPoint("third_party", register)]

        import importlib.metadata

        monkeypatch.setattr(importlib.metadata, "entry_points", fake_entry_points)
        loaded = registry_module.load_plugins()
        assert loaded == ("third_party",)
        policy = policy_from_spec("third_party_policy")
        assert policy.name == "NoRes"

    def test_broken_plugin_is_skipped(self, monkeypatch, fresh_plugin_state):
        def explode():
            raise RuntimeError("bad plugin")

        def fake_entry_points(group=None):
            return [_FakeEntryPoint("broken", explode)]

        import importlib.metadata

        monkeypatch.setattr(importlib.metadata, "entry_points", fake_entry_points)
        assert registry_module.load_plugins() == ()
        # Builtins survive a broken third-party plugin.
        assert policy_from_spec("NoRes").name == "NoRes"

    def test_load_plugins_is_idempotent(self, monkeypatch, fresh_plugin_state):
        calls = []

        def fake_entry_points(group=None):
            calls.append(group)
            return []

        import importlib.metadata

        monkeypatch.setattr(importlib.metadata, "entry_points", fake_entry_points)
        registry_module.load_plugins()
        registry_module.load_plugins()
        assert len(calls) == 1


class _FakeJob:
    def __init__(self, pool_id):
        self.pool_id = pool_id
        self.spec = _FakeSpec()


class _FakeSpec:
    candidate_pools = None


class TestFractionalSharePolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FractionalSharePolicy(share=0.0)
        with pytest.raises(ConfigurationError):
            FractionalSharePolicy(share=1.5)
        with pytest.raises(ConfigurationError):
            FractionalSharePolicy(floor=0.0)

    def test_share_divides_among_suspended(self):
        policy = FractionalSharePolicy(share=0.6, floor=0.1)
        view = StaticSystemView(
            now=0.0, snapshots=[PoolSnapshot("a", 4, 4, 0, 3)], seed=1
        )
        decision = policy.on_suspend(_FakeJob("a"), view)
        assert decision.action is Action.FRACTION
        assert decision.share == pytest.approx(0.2)

    def test_floor_caps_the_division(self):
        policy = FractionalSharePolicy(share=0.4, floor=0.25)
        view = StaticSystemView(
            now=0.0, snapshots=[PoolSnapshot("a", 4, 4, 0, 10)], seed=1
        )
        assert policy.on_suspend(_FakeJob("a"), view).share == pytest.approx(0.25)

    def test_name_embeds_parameters(self):
        # Distinct parameters must yield distinct cell ids (hence seeds).
        assert FractionalSharePolicy(share=0.5).name != FractionalSharePolicy(share=0.6).name


class TestMigrationCostPolicy:
    def _view(self):
        return StaticSystemView(
            now=0.0,
            snapshots=[
                PoolSnapshot("a", 10, 10, 8, 2),   # heavy backlog here
                PoolSnapshot("b", 10, 0, 0, 0),    # idle target
            ],
            seed=1,
        )

    def test_migrates_when_benefit_positive(self):
        policy = MigrationCostPolicy(transfer_minutes=10.0, resuspend_penalty=30.0)
        decision = policy.on_suspend(_FakeJob("a"), self._view())
        assert decision.action is Action.MIGRATE
        assert decision.target_pool == "b"

    def test_stays_when_transfer_eats_the_benefit(self):
        policy = MigrationCostPolicy(transfer_minutes=10_000.0)
        decision = policy.on_suspend(_FakeJob("a"), self._view())
        assert decision.action is Action.STAY

    def test_min_benefit_raises_the_bar(self):
        view = self._view()
        eager = MigrationCostPolicy(transfer_minutes=10.0, min_benefit=0.0)
        picky = MigrationCostPolicy(transfer_minutes=10.0, min_benefit=10_000.0)
        assert eager.on_suspend(_FakeJob("a"), view).action is Action.MIGRATE
        assert picky.on_suspend(_FakeJob("a"), view).action is Action.STAY

    def test_deterministic_tie_break(self):
        view = StaticSystemView(
            now=0.0,
            snapshots=[
                PoolSnapshot("a", 10, 10, 8, 2),
                PoolSnapshot("c", 10, 0, 0, 0),
                PoolSnapshot("b", 10, 0, 0, 0),   # identical to c
            ],
            seed=1,
        )
        policy = MigrationCostPolicy(transfer_minutes=10.0)
        assert policy.on_suspend(_FakeJob("a"), view).target_pool == "b"


def one_pool():
    return ClusterSpec([make_pool("p0", 1, cores=1)])


class TestFractionalEngine:
    """Exact micro-scenarios for FRACTION decisions in the engine."""

    def test_fractional_victim_resumes_with_accrued_progress(self):
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0),
            make_job(1, submit=4.0, runtime=6.0, priority=100),
        ]
        result = run_tiny(
            jobs, cluster=one_pool(),
            policy=FractionalSharePolicy(share=0.5, floor=0.5),
        )
        victim = result.record_by_id(0)
        # Suspended at 4 with 6 remaining; runs at half speed until the
        # preemptor finishes at 10 (3 minutes of progress), then resumes
        # with 3 remaining: finishes at 13 instead of NoRes's 16.
        assert victim.restart_count == 0
        assert victim.finish_minute == 13.0

    def test_fractional_victim_can_finish_while_suspended(self):
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0),
            make_job(1, submit=4.0, runtime=20.0, priority=100),
        ]
        result = run_tiny(
            jobs, cluster=one_pool(),
            policy=FractionalSharePolicy(share=0.5, floor=0.5),
        )
        victim = result.record_by_id(0)
        # 6 remaining at half speed: finishes at 4 + 12 = 16, still
        # suspended (the preemptor runs until 24).
        assert victim.finish_minute == 16.0
        assert result.record_by_id(1).finish_minute == 24.0

    def test_fractional_beats_no_res_on_suspension_time(self):
        jobs = [
            make_job(0, submit=0.0, runtime=10.0, priority=0),
            make_job(1, submit=4.0, runtime=6.0, priority=100),
        ]
        baseline = run_tiny(jobs, cluster=one_pool(), policy=repro.no_res())
        fractional = run_tiny(
            jobs, cluster=one_pool(),
            policy=FractionalSharePolicy(share=0.5, floor=0.5),
        )
        assert (
            fractional.record_by_id(0).finish_minute
            < baseline.record_by_id(0).finish_minute
        )


class TestGoldenMatrix:
    """Registry-routed baselines reproduce direct construction exactly."""

    def test_spec_strings_match_direct_factories(self, tmp_path):
        scenario = repro.smoke(seed=7)
        runner = repro.ExperimentRunner(n_workers=1)
        via_registry = runner.run(
            [scenario], ["NoRes", "ResSusUtil", "ResSusWaitUtil"]
        )
        direct = repro.ExperimentRunner(n_workers=1).run(
            [scenario],
            [repro.no_res, repro.res_sus_util, lambda: repro.res_sus_wait_util(30.0)],
        )
        assert len(via_registry) == len(direct) == 3
        for reg_cell, direct_cell in zip(via_registry, direct):
            assert reg_cell.seed == direct_cell.seed
            assert reg_cell.policy_name == direct_cell.policy_name
            assert reg_cell.summary == direct_cell.summary
        # Registry cells additionally carry their spec string.
        assert [c.policy_spec for c in via_registry] == [
            "NoRes", "ResSusUtil", "ResSusWaitUtil",
        ]
        assert all(c.policy_spec is None for c in direct)

    def test_new_families_run_end_to_end(self):
        scenario = repro.smoke(seed=7)
        cells = repro.ExperimentRunner(n_workers=1).run(
            [scenario],
            ["dfrs:share=0.5,floor=0.1", "migration_cost:transfer_minutes=5"],
        )
        assert len(cells) == 2
        assert cells[0].policy_name.startswith("DFRS[")
        assert cells[1].policy_name.startswith("MigCost[")
        assert all(c.summary.job_count > 0 for c in cells)


class TestPublicApi:
    def test_all_names_resolve(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_registry_surface_exported(self):
        assert "policy_from_spec" in repro.__all__
        assert "FractionalSharePolicy" in repro.__all__
        assert "MigrationCostPolicy" in repro.__all__
