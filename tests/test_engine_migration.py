"""Engine tests for the checkpoint-migration extension (MIGRATE action)."""

import pytest

import repro
from repro.core.policies import MigrateSuspended
from repro.core.selectors import LowestUtilizationSelector
from repro.core.overheads import RestartOverhead
from repro.simulator.config import SimulationConfig
from repro.workload.cluster import ClusterSpec

from conftest import make_job, make_pool, run_tiny


def two_pools():
    return ClusterSpec([make_pool("p0", 1, cores=1), make_pool("p1", 1, cores=1)])


def mig_policy():
    return MigrateSuspended(LowestUtilizationSelector())


BASE_JOBS = [
    # victim: runs 4 minutes before being suspended at t=4
    dict(job_id=0, submit=0.0, runtime=10.0, priority=0, candidate_pools=("p0", "p1")),
    dict(job_id=1, submit=4.0, runtime=60.0, priority=100, candidate_pools=("p0",)),
]


def base_jobs():
    return [make_job(**{**spec, "job_id": spec["job_id"]}) for spec in BASE_JOBS]


class TestMigration:
    def test_migration_preserves_progress(self):
        result = run_tiny(base_jobs(), cluster=two_pools(), policy=mig_policy())
        victim = result.record_by_id(0)
        # suspended at 4 with 4 minutes done; migrates to p1 and runs
        # only the remaining 6 -> finishes at 10, nothing wasted.
        assert victim.finish_minute == 10.0
        assert victim.wasted_restart_time == 0.0
        assert victim.migration_count == 1
        assert victim.restart_count == 0
        assert victim.pools_visited == ("p0", "p1")

    def test_migration_beats_restart_on_completion(self):
        migrated = run_tiny(base_jobs(), cluster=two_pools(), policy=mig_policy())
        restarted = run_tiny(
            base_jobs(), cluster=two_pools(), policy=repro.res_sus_util()
        )
        # restart redoes the 4 minutes: 4 + 10 = 14 vs migration's 10
        assert migrated.record_by_id(0).finish_minute == 10.0
        assert restarted.record_by_id(0).finish_minute == 14.0

    def test_migration_dilation_inflates_remaining_work(self):
        result = run_tiny(
            base_jobs(),
            cluster=two_pools(),
            policy=mig_policy(),
            migration_dilation=0.5,
        )
        victim = result.record_by_id(0)
        # remaining 6 minutes dilated by 50% -> 9 minutes at p1,
        # finishing at 13; the 3 extra minutes count as waste.
        assert victim.finish_minute == pytest.approx(13.0)
        assert victim.wasted_restart_time == pytest.approx(3.0)

    def test_migration_overhead_delays_arrival(self):
        result = run_tiny(
            base_jobs(),
            cluster=two_pools(),
            policy=mig_policy(),
            migration_overhead=RestartOverhead(fixed_minutes=5.0),
        )
        victim = result.record_by_id(0)
        # suspended at 4, 5 minutes in transit, 6 remaining -> 15
        assert victim.finish_minute == pytest.approx(15.0)
        assert victim.migration_count == 1

    def test_migration_guard_stays_when_no_better_pool(self):
        cluster = two_pools()
        jobs = [
            make_job(2, submit=0.0, runtime=50.0, candidate_pools=("p1",)),
            *base_jobs(),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=mig_policy())
        victim = result.record_by_id(0)
        assert victim.migration_count == 0
        assert victim.suspend_time > 0.0

    def test_dilation_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SimulationConfig(migration_dilation=-0.1)

    def test_migration_frees_origin_memory(self):
        cluster = ClusterSpec(
            [
                make_pool("p0", 1, cores=2, memory_gb=4.0),
                make_pool("p1", 1, cores=2, memory_gb=4.0),
            ]
        )
        jobs = [
            make_job(0, submit=0.0, runtime=30.0, priority=0, cores=2, memory_gb=3.0,
                     candidate_pools=("p0", "p1")),
            make_job(1, submit=2.0, runtime=30.0, priority=100, memory_gb=1.0,
                     candidate_pools=("p0",)),
            make_job(2, submit=3.0, runtime=5.0, priority=100, memory_gb=3.0,
                     candidate_pools=("p0",)),
        ]
        result = run_tiny(jobs, cluster=cluster, policy=mig_policy())
        # victim migrated away, releasing its 3GB for job 2
        assert result.record_by_id(0).migration_count == 1
        assert result.record_by_id(2).wait_time == 0.0


class TestMigrationAblation:
    def test_ablation_orders_by_dilation(self):
        from repro.experiments.ablations import migration_ablation

        summaries = migration_ablation(dilations=(0.0, 0.4), scale=0.06)
        free = summaries[0.0]
        costly = summaries[0.4]
        # dilation only adds work, so waste cannot shrink
        assert costly.waste.resched_time >= free.waste.resched_time
