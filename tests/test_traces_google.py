"""Google task_events adapter: watermark ordering, lifecycle, errors."""

from __future__ import annotations

import io

import pytest

from repro.errors import TraceError
from repro.workload.traces import generate_google_fixture, iter_google_tasks
from repro.workload.traces.googlecluster import (
    EVENT_EVICT,
    EVENT_FAIL,
    EVENT_FINISH,
    EVENT_KILL,
)


def _row(ts, job_id, index, event, user="u0", klass=0, priority=0,
         cpu=0.05, mem=0.01):
    machine = "" if event == 0 else str(4_000_000 + job_id)
    return (
        f"{ts},,{job_id},{index},{machine},{event},{user},{klass},"
        f"{priority},{cpu},{mem},0.001,0"
    )


def _feed(rows):
    return io.StringIO("\n".join(rows) + "\n")


class TestLifecycle:
    def test_submit_schedule_finish_emits_one_task(self):
        rows = [_row(100, 1, 0, 0), _row(200, 1, 0, 1), _row(900, 1, 0, 4)]
        (task,) = iter_google_tasks(_feed(rows))
        assert task.submit_us == 100
        assert task.schedule_us == 200
        assert task.end_us == 900
        assert task.end_event == EVENT_FINISH
        assert task.runtime_us == 700
        assert task.wait_us == 100

    def test_emission_is_submit_ordered_across_interleaved_tasks(self):
        # Task B submits after A but finishes first; emission must still
        # come out in submission order.
        rows = [
            _row(100, 1, 0, 0),
            _row(150, 2, 0, 0),
            _row(160, 2, 0, 1),
            _row(200, 2, 0, 4),
            _row(300, 1, 0, 1),
            _row(900, 1, 0, 4),
        ]
        tasks = list(iter_google_tasks(_feed(rows)))
        assert [t.job_id for t in tasks] == [1, 2]
        assert [t.submit_us for t in tasks] == [100, 150]

    def test_evict_is_not_terminal(self):
        rows = [
            _row(100, 1, 0, 0),
            _row(200, 1, 0, 1),
            _row(300, 1, 0, EVENT_EVICT),
            _row(400, 1, 0, 1),
            _row(900, 1, 0, EVENT_KILL),
        ]
        (task,) = iter_google_tasks(_feed(rows))
        assert task.end_event == EVENT_KILL
        assert task.schedule_us == 200  # first schedule wins

    def test_fail_terminal_and_stats(self):
        stats = {}
        rows = [
            _row(100, 1, 0, 0),
            _row(200, 1, 0, 1),
            _row(300, 1, 0, EVENT_FAIL),
            _row(400, 2, 0, 0),  # never scheduled: dropped at EOF
        ]
        tasks = list(iter_google_tasks(_feed(rows), stats=stats))
        assert [t.end_event for t in tasks] == [EVENT_FAIL]
        assert stats["emitted"] == 1
        assert stats["dropped_open"] == 1

    def test_killed_while_queued_is_counted_not_emitted(self):
        stats = {}
        rows = [_row(100, 1, 0, 0), _row(500, 1, 0, EVENT_KILL)]
        assert list(iter_google_tasks(_feed(rows), stats=stats)) == []
        assert stats["dropped_unscheduled"] == 1

    def test_terminal_without_submit_is_ignored(self):
        stats = {}
        rows = [_row(100, 1, 0, 4)]
        assert list(iter_google_tasks(_feed(rows), stats=stats)) == []
        assert stats["emitted"] == 0


class TestErrors:
    def test_regressing_timestamp_raises(self):
        rows = [_row(500, 1, 0, 0), _row(400, 2, 0, 0)]
        with pytest.raises(TraceError, match="timestamp"):
            list(iter_google_tasks(_feed(rows)))

    def test_short_row_raises(self):
        with pytest.raises(TraceError, match="13"):
            list(iter_google_tasks(io.StringIO("1,2,3\n")))


class TestFixture:
    def test_fixture_parses_with_nothing_dropped(self, tmp_path):
        path = tmp_path / "events.csv"
        totals = generate_google_fixture(path, 400, seed=5)
        stats = {}
        tasks = list(iter_google_tasks(path, stats=stats))
        assert len(tasks) == 400
        assert totals["jobs"] == 400
        assert stats["dropped_open"] == 0
        assert stats["dropped_unscheduled"] == 0
        submits = [t.submit_us for t in tasks]
        assert submits == sorted(submits)

    def test_fixture_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        generate_google_fixture(a, 120, seed=3)
        generate_google_fixture(b, 120, seed=3)
        assert a.read_bytes() == b.read_bytes()
