"""Packaging and public-API integrity checks.

These meta-tests catch the drift that code review misses: `__all__`
entries that do not exist, documented examples that were renamed, and
version mismatches between the package and its metadata.
"""

import importlib
import pathlib

import pytest

import repro

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]

PACKAGES = [
    "repro",
    "repro.core",
    "repro.simulator",
    "repro.schedulers",
    "repro.workload",
    "repro.metrics",
    "repro.analysis",
    "repro.experiments",
    "repro.sites",
]


class TestPublicApi:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_entries_exist(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_has_no_duplicates(self, package_name):
        package = importlib.import_module(package_name)
        names = list(getattr(package, "__all__", []))
        assert len(names) == len(set(names))

    def test_version_consistent_with_pyproject(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

    def test_paper_policy_names_resolve(self):
        for name in repro.PAPER_POLICY_NAMES:
            assert repro.policy_from_name(name).name == name


class TestRepositoryLayout:
    def test_documented_examples_exist(self):
        readme = (REPO_ROOT / "README.md").read_text()
        examples_dir = REPO_ROOT / "examples"
        for script in examples_dir.glob("*.py"):
            assert script.name in readme, f"{script.name} missing from README"

    def test_required_documents_present(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "CONTRIBUTING.md"):
            assert (REPO_ROOT / name).exists(), name

    def test_every_bench_is_referenced_in_design_or_experiments(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        combined = design + experiments
        for bench in (REPO_ROOT / "benchmarks").glob("bench_*.py"):
            if bench.name in ("bench_engine_throughput.py",):
                continue  # engine microbenchmark, not a paper artifact
            assert (
                bench.name in combined or bench.stem in combined
                or "bench_ablation_" in bench.name
            ), f"{bench.name} not documented"

    def test_source_modules_have_docstrings(self):
        for path in (REPO_ROOT / "src" / "repro").rglob("*.py"):
            if path.name == "__main__.py":
                continue
            first = path.read_text().lstrip()
            assert first.startswith('"""') or first.startswith("'''"), (
                f"{path} lacks a module docstring"
            )

    def test_py_typed_marker_present(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
