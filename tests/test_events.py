"""Unit tests for the event queue and simulation config."""

import pytest

from repro.core.overheads import RestartOverhead
from repro.errors import ConfigurationError, SimulationError
from repro.simulator.config import SimulationConfig
from repro.simulator.events import (
    EVENT_FINISH,
    EVENT_SAMPLE,
    EVENT_SUBMIT,
    EventQueue,
)


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        q.push(5.0, EVENT_SUBMIT, "b")
        q.push(1.0, EVENT_SUBMIT, "a")
        q.push(9.0, EVENT_SUBMIT, "c")
        assert [q.pop()[3] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        q = EventQueue()
        for i in range(5):
            q.push(1.0, EVENT_SUBMIT, i)
        assert [q.pop()[3] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        q = EventQueue()
        q.push(4.0, EVENT_SUBMIT, None)
        assert q.now == 0.0
        q.pop()
        assert q.now == 4.0

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.push(5.0, EVENT_SUBMIT, None)
        q.pop()
        with pytest.raises(SimulationError):
            q.push(4.0, EVENT_SUBMIT, None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, EVENT_SAMPLE, None)
        assert q.peek_time() == 3.0

    def test_bulk_load(self):
        q = EventQueue()
        q.push_many_unsorted([(3.0, EVENT_SUBMIT, "c"), (1.0, EVENT_SUBMIT, "a")])
        assert len(q) == 2
        assert q.pop()[3] == "a"

    def test_bulk_load_only_when_pristine(self):
        q = EventQueue()
        q.push(1.0, EVENT_SUBMIT, None)
        with pytest.raises(SimulationError):
            q.push_many_unsorted([(2.0, EVENT_FINISH, None)])

    def test_bulk_load_preserves_input_order_on_ties(self):
        q = EventQueue()
        q.push_many_unsorted([(1.0, EVENT_SUBMIT, "first"), (1.0, EVENT_SUBMIT, "second")])
        assert q.pop()[3] == "first"


class TestSimulationConfig:
    def test_defaults_are_paper_faithful(self):
        config = SimulationConfig()
        assert config.sample_interval == 1.0
        assert config.restart_overhead.is_free
        assert config.strict

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(sample_interval=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(vpm_count=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_minutes=0.0)

    def test_custom_overhead(self):
        config = SimulationConfig(restart_overhead=RestartOverhead(fixed_minutes=5.0))
        assert not config.restart_overhead.is_free
