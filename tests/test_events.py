"""Unit tests for the event queue and simulation config."""

import random

import pytest

from repro.core.overheads import RestartOverhead
from repro.errors import ConfigurationError, SimulationError
from repro.simulator.config import SimulationConfig
from repro.simulator.events import (
    EVENT_FINISH,
    EVENT_NAMES,
    EVENT_SAMPLE,
    EVENT_SUBMIT,
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
)


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        q.push(5.0, EVENT_SUBMIT, "b")
        q.push(1.0, EVENT_SUBMIT, "a")
        q.push(9.0, EVENT_SUBMIT, "c")
        assert [q.pop()[3] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        q = EventQueue()
        for i in range(5):
            q.push(1.0, EVENT_SUBMIT, i)
        assert [q.pop()[3] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        q = EventQueue()
        q.push(4.0, EVENT_SUBMIT, None)
        assert q.now == 0.0
        q.pop()
        assert q.now == 4.0

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.push(5.0, EVENT_SUBMIT, None)
        q.pop()
        with pytest.raises(SimulationError):
            q.push(4.0, EVENT_SUBMIT, None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, EVENT_SAMPLE, None)
        assert q.peek_time() == 3.0

    def test_bulk_load(self):
        q = EventQueue()
        q.push_many_unsorted([(3.0, EVENT_SUBMIT, "c"), (1.0, EVENT_SUBMIT, "a")])
        assert len(q) == 2
        assert q.pop()[3] == "a"

    def test_bulk_load_only_when_pristine(self):
        q = EventQueue()
        q.push(1.0, EVENT_SUBMIT, None)
        with pytest.raises(SimulationError):
            q.push_many_unsorted([(2.0, EVENT_FINISH, None)])

    def test_bulk_load_preserves_input_order_on_ties(self):
        q = EventQueue()
        q.push_many_unsorted([(1.0, EVENT_SUBMIT, "first"), (1.0, EVENT_SUBMIT, "second")])
        assert q.pop()[3] == "first"


class TestCalendarQueue:
    """Calendar-specific behavior the generic contract tests don't reach."""

    def test_engine_queue_is_the_calendar_queue(self):
        assert EventQueue is CalendarEventQueue

    def test_bulk_load_sizes_buckets_from_span(self):
        q = CalendarEventQueue()
        q.push_many_unsorted([(float(i), EVENT_SUBMIT, i) for i in range(1024)])
        assert q.bucket_width < 1023.0  # resized, not the default
        assert [q.pop()[3] for _ in range(1024)] == list(range(1024))

    def test_push_into_active_bucket_mid_consumption(self):
        q = CalendarEventQueue(bucket_width=10.0)
        q.push(1.0, EVENT_SUBMIT, "a")
        q.push(9.0, EVENT_SUBMIT, "d")
        assert q.pop()[3] == "a"
        # Now inside bucket 0; schedule ahead of the remaining entry.
        q.push(3.0, EVENT_SUBMIT, "b")
        q.push(3.0, EVENT_SUBMIT, "c")
        assert [q.pop()[3] for _ in range(3)] == ["b", "c", "d"]

    def test_push_below_active_bucket_after_gap(self):
        # Drain bucket 0, activate a far bucket, then push an event
        # whose bucket index is below the active one (legal while its
        # time is >= now): it must still pop first.
        q = CalendarEventQueue(bucket_width=10.0)
        q.push(7.9, EVENT_SUBMIT, "early")
        q.push(25.0, EVENT_SUBMIT, "late")
        assert q.pop()[3] == "early"
        q.push(7.95, EVENT_SUBMIT, "squeezed")
        assert [q.pop()[3] for _ in range(2)] == ["squeezed", "late"]

    def test_invalid_width_rejected(self):
        with pytest.raises(SimulationError):
            CalendarEventQueue(bucket_width=0.0)

    def test_bulk_load_rejects_negative_times(self):
        q = CalendarEventQueue()
        with pytest.raises(SimulationError):
            q.push_many_unsorted([(-1.0, EVENT_SUBMIT, None)])


class TestCalendarHeapDifferential:
    """The bucketed queue must reproduce the heap's pop order exactly.

    Same-timestamp events have to pop in the exact (time, sequence)
    order the heap produced, or fault-injected runs silently diverge
    from the seed — this replays large randomized mixed schedules
    (bulk load, interleaved pushes at the current minute, heavy ties)
    through both implementations and asserts identical pop streams.
    """

    KINDS = sorted(EVENT_NAMES)

    def _differential(self, rng, total_events, bulk_count, tie_fraction, width=None):
        calendar = (
            CalendarEventQueue(bucket_width=width)
            if width is not None
            else CalendarEventQueue()
        )
        heap = HeapEventQueue()
        bulk = [
            (round(rng.uniform(0.0, 5000.0), 2), rng.choice(self.KINDS), i)
            for i in range(bulk_count)
        ]
        calendar.push_many_unsorted(bulk)
        heap.push_many_unsorted(bulk)
        pushed = bulk_count
        popped = 0
        while popped < total_events:
            if pushed < total_events and (len(calendar) == 0 or rng.random() < 0.45):
                a = calendar.now
                if rng.random() < tie_fraction:
                    time = a  # exact tie with the current minute
                elif rng.random() < 0.5:
                    time = round(a + rng.uniform(0.0, 7.0), 2)  # near future
                else:
                    time = round(a + rng.uniform(0.0, 900.0), 2)  # far future
                kind = rng.choice(self.KINDS)
                calendar.push(time, kind, pushed)
                heap.push(time, kind, pushed)
                pushed += 1
                continue
            got = calendar.pop()
            want = heap.pop()
            assert got == want, f"divergence at pop #{popped}: {got} != {want}"
            popped += 1
        assert len(calendar) == len(heap) == 0

    def test_replay_100k_mixed_events_identical_order(self):
        rng = random.Random(0xC0FFEE)
        self._differential(rng, total_events=100_000, bulk_count=30_000, tie_fraction=0.3)

    def test_replay_heavy_ties_small_width(self):
        rng = random.Random(42)
        self._differential(
            rng, total_events=20_000, bulk_count=0, tie_fraction=0.7, width=0.5
        )

    def test_replay_wide_buckets(self):
        rng = random.Random(7)
        self._differential(
            rng, total_events=20_000, bulk_count=5_000, tie_fraction=0.2, width=4096.0
        )


class TestSimulationConfig:
    def test_defaults_are_paper_faithful(self):
        config = SimulationConfig()
        assert config.sample_interval == 1.0
        assert config.restart_overhead.is_free
        assert config.strict

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(sample_interval=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(vpm_count=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_minutes=0.0)

    def test_custom_overhead(self):
        config = SimulationConfig(restart_overhead=RestartOverhead(fixed_minutes=5.0))
        assert not config.restart_overhead.is_free
