"""The exception hierarchy contract: one catchable base, typed attributes.

Callers are promised that every intentional error derives from
:class:`repro.errors.ReproError` and that the structured errors carry
the attributes their docstrings advertise — these tests pin both.
"""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.TraceError,
    errors.ClusterError,
    errors.SimulationError,
    errors.SchedulingError,
    errors.JobStateError,
    errors.UnschedulableJobError,
    errors.UnknownPoolError,
    errors.UnknownPolicyError,
    errors.ExperimentExecutionError,
    errors.CacheError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", ALL_ERRORS)
    def test_every_error_derives_from_repro_error(self, exc_type):
        assert issubclass(exc_type, errors.ReproError)
        assert issubclass(exc_type, Exception)

    def test_engine_errors_are_simulation_errors(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)
        assert issubclass(errors.JobStateError, errors.SimulationError)

    def test_module_exports_match_hierarchy(self):
        public = [
            name
            for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), Exception)
        ]
        for name in public:
            assert issubclass(getattr(errors, name), errors.ReproError) or getattr(
                errors, name
            ) is errors.ReproError


class TestStructuredAttributes:
    def test_job_state_error(self):
        exc = errors.JobStateError(7, "SUSPENDED", "finish")
        assert exc.job_id == 7
        assert exc.current == "SUSPENDED"
        assert exc.attempted == "finish"
        assert "job 7" in str(exc)
        assert "'finish'" in str(exc)
        assert "'SUSPENDED'" in str(exc)

    def test_unschedulable_job_error(self):
        exc = errors.UnschedulableJobError(3, detail="needs 99 cores")
        assert exc.job_id == 3
        assert "needs 99 cores" in str(exc)
        assert "job 3" in str(exc)

    def test_unknown_pool_error(self):
        exc = errors.UnknownPoolError("pNaN")
        assert exc.pool_id == "pNaN"
        assert "'pNaN'" in str(exc)

    def test_unknown_policy_error_lists_known(self):
        exc = errors.UnknownPolicyError("Bogus", known=("NoRes", "ResSusUtil"))
        assert exc.name == "Bogus"
        assert "NoRes" in str(exc)
        assert "ResSusUtil" in str(exc)

    def test_experiment_execution_error_names_the_cell(self):
        cause = ValueError("boom")
        exc = errors.ExperimentExecutionError(
            "busy_week", "ResSusUtil", "RoundRobin", cause, completed_cells=("a", "b")
        )
        assert exc.scenario_name == "busy_week"
        assert exc.policy_name == "ResSusUtil"
        assert exc.scheduler_name == "RoundRobin"
        assert exc.completed_cells == ("a", "b")
        message = str(exc)
        assert "busy_week" in message
        assert "ValueError" in message
        assert "boom" in message

    def test_experiment_execution_error_defaults_to_no_completed_cells(self):
        exc = errors.ExperimentExecutionError("s", "p", "sch", RuntimeError("x"))
        assert exc.completed_cells == ()


class TestFaultPathErrors:
    """Errors raised by the fault-injection layer stay inside the hierarchy."""

    def test_bad_fault_config_is_configuration_error(self):
        from repro.faults import FaultConfig, RetryPolicy

        with pytest.raises(errors.ConfigurationError) as excinfo:
            FaultConfig(job_failure_probability=2.0)
        assert isinstance(excinfo.value, errors.ReproError)
        with pytest.raises(errors.ReproError):
            RetryPolicy(max_attempts=0)

    def test_unknown_outage_pool_is_repro_error(self):
        import repro
        from repro.faults import FaultConfig, PoolOutage
        from repro.simulator.config import SimulationConfig

        scenario = repro.smoke(seed=7)
        faults = FaultConfig(pool_outages=(PoolOutage("missing", 1.0, 1.0),))
        with pytest.raises(errors.UnknownPoolError) as excinfo:
            repro.run_simulation(
                scenario.trace,
                scenario.cluster,
                config=SimulationConfig(strict=False, faults=faults),
            )
        assert isinstance(excinfo.value, errors.ReproError)
        assert excinfo.value.pool_id == "missing"
