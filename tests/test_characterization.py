"""Tests for workload characterization (repro.workload.characterization)."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import BurstProcess, PoissonProcess
from repro.workload.characterization import characterize, fano_factor
from repro.workload.scenarios import busy_week
from repro.workload.trace import Trace

from conftest import make_job


class TestFanoFactor:
    def test_poisson_near_one(self):
        rng = random.Random(1)
        times = PoissonProcess(rate=1.0).arrivals(50_000.0, rng)
        factor = fano_factor(times, window_minutes=60.0)
        assert 0.7 < factor < 1.3

    def test_bursty_much_greater_than_one(self):
        rng = random.Random(2)
        process = BurstProcess(mean_gap=2000.0, mean_duration=200.0, burst_rate=5.0)
        times = process.arrivals(100_000.0, rng)
        factor = fano_factor(times, window_minutes=60.0)
        assert factor > 5.0

    def test_empty_and_singleton(self):
        assert fano_factor([]) == 0.0
        assert fano_factor([5.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fano_factor([1.0], window_minutes=0.0)


class TestCharacterize:
    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            characterize(Trace([]))

    def test_basic_statistics(self):
        jobs = [
            make_job(i, submit=float(i), runtime=10.0 * (i + 1), priority=0)
            for i in range(10)
        ]
        report = characterize(Trace(jobs))
        assert report.arrivals_all.job_count == 10
        assert report.arrivals_all.rate_per_minute == pytest.approx(10 / 9)
        assert report.runtime.mean == pytest.approx(55.0)
        assert report.runtime.maximum == 100.0
        assert report.mix.priority_share == {0: 1.0}

    def test_restricted_fraction(self):
        jobs = [
            make_job(0, runtime=5.0, candidate_pools=("a", "b")),
            make_job(1, submit=1.0, runtime=5.0),
        ]
        report = characterize(Trace(jobs))
        assert report.mix.restricted_fraction == 0.5
        assert report.mix.mean_candidate_pools == 2.0

    def test_deterministic_interarrival_cv_zero(self):
        jobs = [make_job(i, submit=float(i) * 10.0, runtime=1.0) for i in range(20)]
        report = characterize(Trace(jobs))
        assert report.arrivals_all.interarrival_cv == pytest.approx(0.0)

    def test_busy_week_has_bursty_high_priority(self):
        trace = busy_week(scale=0.08).trace
        report = characterize(trace)
        high = report.arrivals_by_priority[100]
        low = report.arrivals_by_priority[0]
        # the burst stream is far burstier than the Poisson base stream
        assert high.fano_factor > 3.0 * low.fano_factor
        # heavy-tailed runtimes: top decile carries disproportionate mass
        assert report.runtime.tail_weight > 0.25
        # render smoke check
        text = report.render()
        assert "Fano" in text
        assert "priority 100" in text

    def test_group_load_shares_sum_to_one(self):
        trace = busy_week(scale=0.06).trace
        report = characterize(trace)
        assert sum(report.mix.group_load_share.values()) == pytest.approx(1.0)
