"""Tests for the chaos harness: plans, invariant audit, recovery paths.

Three layers, cheapest first:

* **plan mechanics** — selector matching, action validation, hook
  firing and consumption, dump/load (no subprocesses, chaos deaths
  stubbed out);
* **invariant audit** — each violation class is injected by hand into
  a small fabricated run and must be flagged with its specific
  message, and the recovery counters must add up;
* **end to end** (``slow``) — the crash-mid-publish window against a
  real SIGKILLed worker subprocess, torn-publish re-publication, and
  the full seeded scenario matrix converging under
  :func:`repro.chaos.run_scenario`.
"""

from __future__ import annotations

import errno
import json
import subprocess
import sys
import time
from types import SimpleNamespace

import pytest

from repro.chaos import SCENARIOS, build_schedule, run_scenario
from repro.chaos.invariants import audit_run
from repro.chaos.plan import (
    CHAOS_PLAN_ENV,
    ChaosAction,
    ChaosPlan,
    ChaosPlanError,
    worker_suffix,
)
from repro.errors import ReproError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import GridReport
from repro.fabric.backends import SubprocessWorkerBackend
from repro.fabric.lease import CLAIMED, DONE, LeaseStore
from repro.fabric.presets import build_grid
from repro.fabric.supervisor import (
    sweep_settled_leases,
    sweep_tmp_droppings,
)
from repro.fabric.worker import run_worker, write_manifest


KEY = "ab" + "0" * 62


def delay(worker, nth=0, every=False):
    return ChaosAction(
        worker=worker, stage="compute", action="delay", nth=nth,
        every=every, seconds=1.0,
    )


def make_plan(actions, worker_id):
    """A plan whose delay-sleeps are recorded instead of slept."""
    slept = []
    plan = ChaosPlan(actions, worker_id=worker_id, sleep=slept.append)
    return plan, slept


class TestSelectors:
    def test_worker_suffix(self):
        assert worker_suffix("run-123-w2r1") == "w2r1"
        assert worker_suffix("w2r0") == "w2r0"

    def test_slot_selector_matches_every_incarnation(self):
        for incarnation in ("w2r0", "w2r3"):
            plan, slept = make_plan([delay("w2")], f"run-1-{incarnation}")
            plan.on_compute(KEY, 0)
            assert slept == [1.0], incarnation

    def test_slot_selector_does_not_match_longer_slot(self):
        plan, slept = make_plan([delay("w2")], "run-1-w21r0")
        plan.on_compute(KEY, 0)
        assert slept == []

    def test_incarnation_selector_is_exact(self):
        plan, slept = make_plan([delay("w2r1")], "run-1-w2r1")
        plan.on_compute(KEY, 0)
        assert slept == [1.0]
        plan, slept = make_plan([delay("w2r1")], "run-1-w2r0")
        plan.on_compute(KEY, 0)
        assert slept == []

    def test_star_matches_everyone(self):
        plan, slept = make_plan([delay("*")], "run-1-w7r4")
        plan.on_compute(KEY, 0)
        assert slept == [1.0]


class TestActionValidation:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ChaosPlanError, match="unknown chaos stage"):
            ChaosAction(worker="*", stage="teardown", action="die")

    def test_action_must_fit_stage(self):
        with pytest.raises(ChaosPlanError, match="not valid at stage"):
            ChaosAction(worker="*", stage="compute", action="enospc")
        with pytest.raises(ChaosPlanError, match="not valid at stage"):
            ChaosAction(worker="*", stage="start", action="delay")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ChaosPlanError, match="unknown chaos action field"):
            ChaosAction.from_dict(
                {"worker": "*", "stage": "compute", "action": "die",
                 "blast_radius": 9}
            )

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ChaosPlanError, match="bad chaos action"):
            ChaosAction.from_dict({"worker": "*"})

    def test_dict_round_trip(self):
        action = delay("w3", nth=2, every=True)
        assert ChaosAction.from_dict(action.to_dict()) == action


class TestDumpLoad:
    def test_round_trip_keeps_targeted_actions(self, tmp_path):
        actions = [delay("w0"), delay("w1"), delay("*")]
        path = ChaosPlan.dump(actions, tmp_path / "plan.json")
        plan = ChaosPlan.load(path, worker_id="run-9-w1r0")
        slept = []
        plan._sleep = slept.append
        plan.on_compute(KEY, 0)
        plan.on_compute(KEY, 0)
        plan.on_compute(KEY, 0)
        # w1 and * match; w0 does not.
        assert slept == [1.0, 1.0]

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ChaosPlanError, match="cannot read"):
            ChaosPlan.load(tmp_path / "absent.json", worker_id="w0")

    def test_load_non_json_raises(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{torn", encoding="utf-8")
        with pytest.raises(ChaosPlanError, match="not JSON"):
            ChaosPlan.load(path, worker_id="w0")

    def test_load_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('["not", "a", "plan"]', encoding="utf-8")
        with pytest.raises(ChaosPlanError, match="actions"):
            ChaosPlan.load(path, worker_id="w0")


class TestHooks:
    """Hook firing with the SIGKILL stubbed to a recorder."""

    def _armed(self, actions, worker_id="run-1-w0r0"):
        plan, slept = make_plan(actions, worker_id)
        deaths = []
        plan._die = lambda: deaths.append(True)
        return plan, slept, deaths

    def test_nth_selects_the_ordinal_and_consumes(self):
        action = ChaosAction(worker="*", stage="compute", action="die", nth=1)
        plan, _, deaths = self._armed([action])
        plan.on_compute(KEY, 0)
        assert deaths == []
        plan.on_compute(KEY, 1)
        assert deaths == [True]
        plan.on_compute(KEY, 1)  # consumed: fires once
        assert deaths == [True]
        assert plan.fired == [action]

    def test_every_repeats_across_cells(self):
        plan, slept, _ = self._armed([delay("*", every=True)])
        for ordinal in range(3):
            plan.on_compute(KEY, ordinal)
        assert slept == [1.0, 1.0, 1.0]

    def test_on_start_fires_before_any_claim(self):
        action = ChaosAction(worker="w0r1", stage="start", action="die")
        plan, _, deaths = self._armed([action], worker_id="run-1-w0r1")
        plan.on_start()
        assert deaths == [True]

    def test_on_start_is_a_noop_without_a_start_action(self):
        plan, _, deaths = self._armed([delay("*")])
        plan.on_start()
        assert deaths == []

    def test_enospc_raises_in_place_of_the_write(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        action = ChaosAction(worker="*", stage="publish", action="enospc")
        plan, _, deaths = self._armed([action])
        with pytest.raises(OSError) as excinfo:
            plan.on_publish(cache, KEY, 0)
        assert excinfo.value.errno == errno.ENOSPC
        assert deaths == []

    def test_torn_publish_leaves_bytes_peek_rejects(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        action = ChaosAction(worker="*", stage="publish", action="torn")
        plan, _, deaths = self._armed([action])
        plan.on_publish(cache, KEY, 0)
        assert deaths == [True]
        assert cache.path_for(KEY).exists()
        assert cache.peek(KEY) is None  # the envelope rejects the garbage


class TestScheduleDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_schedule(self, name):
        assert build_schedule(name, seed=2010) == build_schedule(name, seed=2010)
        assert build_schedule(name, seed=2010).actions

    def test_schedules_serialize_to_json(self):
        for name in SCENARIOS:
            json.dumps(build_schedule(name, seed=7).to_dict())

    def test_kill_storm_shape(self):
        schedule = build_schedule("kill-storm", seed=2010, workers=4)
        stages = [a.stage for a in schedule.actions]
        # one mid-compute death, four boot deaths (the crash loop),
        # three publish-window kills
        assert stages.count("compute") == 1
        assert stages.count("start") == 4
        assert stages.count("post-publish") == 3

    def test_straggler_is_in_band_only(self):
        schedule = build_schedule("straggler", seed=2010)
        assert schedule.out_of_band == ()
        assert all(a.action == "delay" for a in schedule.actions)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ReproError, match="unknown chaos scenario"):
            build_schedule("meteor-strike", seed=1)

    def test_needs_two_workers(self):
        with pytest.raises(ReproError, match="at least 2 workers"):
            build_schedule("kill-storm", seed=1, workers=1)


def _key(i):
    return f"{i:02x}" + "c" * 62


def _tasks(keys):
    return [SimpleNamespace(cache_key=k) for k in keys]


def _report(n, failures=(), holes=()):
    outcomes = tuple(
        None if i in holes else SimpleNamespace(summary={"cell": i})
        for i in range(n)
    )
    return GridReport(outcomes=outcomes, failures=tuple(failures))


def _publish_done(cache, keys, worker="w0"):
    store = LeaseStore(
        cache.root, run_id="audit-test", worker_id=worker, ttl_seconds=60.0
    )
    for k in keys:
        cache.put(k, {"summary": {"cell": k[:2]}})
        assert store.claim(k)
        store.release_done(k, wall_seconds=0.1)
    return store


class TestAudit:
    """Each invariant violation class, injected by hand and flagged."""

    def test_clean_run_passes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [_key(0), _key(1)]
        _publish_done(cache, keys)
        audit = audit_run(_report(2), _tasks(keys), cache)
        assert audit.ok, audit.violations
        assert audit.cells == 2
        assert audit.counter("done_markers") == 2
        assert audit.counter("takeovers") == 0
        assert audit.counter("cells_recovered") == 0

    def test_missing_outcome_flagged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [_key(0), _key(1)]
        _publish_done(cache, keys)
        audit = audit_run(_report(2, holes={1}), _tasks(keys), cache)
        assert any("missing outcomes" in v for v in audit.violations)

    def test_cell_failures_flagged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [_key(0)]
        _publish_done(cache, keys)
        audit = audit_run(
            _report(1, failures=(object(),)), _tasks(keys), cache
        )
        assert any("cell failure" in v for v in audit.violations)

    def test_digest_divergence_flagged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [_key(0)]
        _publish_done(cache, keys)
        audit = audit_run(
            _report(1), _tasks(keys), cache,
            serial_digests=["not-the-same-digest"],
        )
        assert any("digests diverge" in v for v in audit.violations)

    def test_unpublished_cell_flagged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        audit = audit_run(_report(1), _tasks([_key(0)]), cache)
        assert any("no valid cache entry" in v for v in audit.violations)

    def test_orphan_claimed_lease_flagged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [_key(0)]
        _publish_done(cache, keys)
        orphan = LeaseStore(
            cache.root, run_id="audit-test", worker_id="ghost",
            ttl_seconds=60.0,
        )
        cache.put(_key(1), {"summary": {}})
        assert orphan.claim(_key(1))  # claimed, never released
        audit = audit_run(
            _report(2), _tasks(keys + [_key(1)]), cache
        )
        assert any("orphan claimed lease" in v for v in audit.violations)
        assert audit.counter("claimed_leases") == 1

    def test_unparsable_lease_flagged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [_key(0)]
        _publish_done(cache, keys)
        cache.leases_dir.mkdir(parents=True, exist_ok=True)
        (cache.leases_dir / f"{_key(1)}.lease").write_text(
            '{"status": "cla', encoding="utf-8"
        )
        audit = audit_run(_report(1), _tasks(keys), cache)
        assert any("unparsable lease" in v for v in audit.violations)
        assert audit.counter("torn_leases") == 1

    def test_done_marker_without_entry_flagged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = _key(0)
        store = _publish_done(cache, [key])
        cache.path_for(key).unlink()  # the entry was gc'ed
        del store
        audit = audit_run(_report(1, holes={0}), _tasks([key]), cache)
        assert any(
            "journals an unpublished cell" in v for v in audit.violations
        )

    def test_takeover_marker_counts_as_recovered(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = _key(0)

        class Clock:
            now = 1000.0

            def __call__(self):
                return self.now

        clock = Clock()
        dead = LeaseStore(
            cache.root, run_id="r", worker_id="dead", ttl_seconds=10.0,
            clock=clock,
        )
        thief = LeaseStore(
            cache.root, run_id="r", worker_id="thief", ttl_seconds=10.0,
            clock=clock,
        )
        assert dead.claim(key)
        clock.now += 11.0
        assert thief.claim(key)
        cache.put(key, {"summary": {}})
        thief.release_done(key, wall_seconds=0.1)
        audit = audit_run(_report(1), _tasks([key]), cache)
        assert audit.ok, audit.violations
        assert audit.counter("takeovers") == 1
        assert audit.counter("cells_recovered") == 1

    def test_swept_leases_count_as_recovered(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [_key(0)]
        _publish_done(cache, keys)
        audit = audit_run(_report(1), _tasks(keys), cache, swept_leases=2)
        assert audit.counter("swept_leases") == 2
        assert audit.counter("cells_recovered") == 2

    def test_tmp_dropping_flagged(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [_key(0)]
        _publish_done(cache, keys)
        dropping = cache.leases_dir / f"{_key(0)}.lease.tmp.99999"
        dropping.write_text("half a heartbeat", encoding="utf-8")
        audit = audit_run(_report(1), _tasks(keys), cache)
        assert any("abandoned tmp file" in v for v in audit.violations)
        assert audit.counter("tmp_droppings") == 1

    def test_manifest_scratch_is_not_a_dropping(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        keys = [_key(0)]
        _publish_done(cache, keys)
        scratch = cache.root / "manifests"
        scratch.mkdir(parents=True, exist_ok=True)
        (scratch / "grid.pkl.tmp.12345").write_bytes(b"in flight")
        audit = audit_run(_report(1), _tasks(keys), cache)
        assert audit.ok, audit.violations


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class TestSweeps:
    def test_settled_orphan_is_swept(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = _key(0)
        cache.put(key, {"summary": {}})
        store = LeaseStore(
            cache.root, run_id="r", worker_id="dead", ttl_seconds=60.0
        )
        assert store.claim(key)  # published but never released: settled
        clock = FakeClock(start=time.time())
        removed = sweep_settled_leases(
            cache, [key], ttl=60.0, sleep=clock.sleep, clock=clock
        )
        assert removed == 1
        assert not store.path_for(key).exists()

    def test_unpublished_claim_is_not_ours_to_judge(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = _key(0)
        store = LeaseStore(
            cache.root, run_id="r", worker_id="w", ttl_seconds=60.0
        )
        assert store.claim(key)
        clock = FakeClock(start=time.time())
        removed = sweep_settled_leases(
            cache, [key], ttl=60.0, sleep=clock.sleep, clock=clock
        )
        assert removed == 0
        assert store.read(key).status == CLAIMED

    def test_done_markers_are_left_alone(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = _key(0)
        _publish_done(cache, [key])
        clock = FakeClock(start=time.time())
        removed = sweep_settled_leases(
            cache, [key], ttl=60.0, sleep=clock.sleep, clock=clock
        )
        assert removed == 0

    def test_tmp_droppings_swept_only_for_dead_pids(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.leases_dir.mkdir(parents=True, exist_ok=True)
        proc = subprocess.run(
            [sys.executable, "-c",
             "import os, sys; sys.stdout.write(str(os.getpid()))"],
            capture_output=True, text=True, check=True,
        )
        dead_pid = int(proc.stdout)
        import os as os_module

        dead = cache.leases_dir / f"{_key(0)}.lease.tmp.{dead_pid}"
        live = cache.leases_dir / f"{_key(1)}.lease.tmp.{os_module.getpid()}"
        nonpid = cache.leases_dir / f"{_key(2)}.lease.tmp.notapid"
        for p in (dead, live, nonpid):
            p.write_text("half a write", encoding="utf-8")
        removed = sweep_tmp_droppings(cache)
        assert removed == 1
        assert not dead.exists()
        assert live.exists()
        assert nonpid.exists()


@pytest.mark.slow
class TestCrashMidPublish:
    """Satellite regression: SIGKILL between ``cache.put`` and
    ``release_done`` must leave a valid entry plus a settled orphan
    lease — never a torn entry — and the sweep must reconcile it."""

    def test_killed_publisher_leaves_valid_entry_and_orphan(
        self, tmp_path, monkeypatch
    ):
        tasks = build_grid("smoke", seed=5)[:2]
        keys = [t.cache_key for t in tasks]
        cache = ResultCache(tmp_path / "cache")
        plan_path = ChaosPlan.dump(
            [ChaosAction(worker="*", stage="post-publish", action="kill",
                         nth=0)],
            tmp_path / "plan.json",
        )
        monkeypatch.setenv(CHAOS_PLAN_ENV, str(plan_path))

        backend = SubprocessWorkerBackend(n_workers=1, poll_interval=0.05)
        manifest = write_manifest(
            tasks, cache.root / "manifests" / "crash-test.pkl"
        )
        proc = backend.spawn_worker(
            manifest, cache.root, run_id="crash-test", lease_ttl=0.5,
            worker_id="crash-test-w0r0",
        )
        assert proc.wait(timeout=60) == -9  # SIGKILLed itself

        published = [k for k in keys if cache.peek(k) is not None]
        assert len(published) == 1  # died right after its first publish
        orphan = json.loads(
            (cache.leases_dir / f"{published[0]}.lease").read_text(
                encoding="utf-8"
            )
        )
        assert orphan["status"] == CLAIMED  # release_done never ran

        # The sweep reconciles the settled orphan (real clock: the
        # lease stopped heartbeating when the worker died).
        swept = sweep_settled_leases(cache, keys, ttl=0.5)
        assert swept == 1
        assert not (cache.leases_dir / f"{published[0]}.lease").exists()

        # A recovery worker finishes the grid without recomputing the
        # published cell.
        monkeypatch.delenv(CHAOS_PLAN_ENV)
        store = LeaseStore(
            cache.root, run_id="crash-test-recovery", worker_id="rescue",
            ttl_seconds=0.5,
        )
        stats = run_worker(tasks, cache, store, poll_interval=0.05)
        assert stats.computed == 1
        assert stats.skipped == 1
        for k in keys:
            assert cache.peek(k) is not None
        # The recomputed cell has a done marker; the swept cell's
        # orphan stays gone (a skip never re-journals).
        recomputed = [k for k in keys if k != published[0]]
        assert store.read(recomputed[0]).status == DONE
        assert store.read(published[0]) is None


@pytest.mark.slow
class TestTornPublishRecovery:
    def test_torn_entry_is_republished(self, tmp_path):
        tasks = build_grid("smoke", seed=5)[:1]
        key = tasks[0].cache_key
        cache = ResultCache(tmp_path / "cache")

        plan, _ = make_plan(
            [ChaosAction(worker="*", stage="publish", action="torn")],
            "run-1-w0r0",
        )
        plan._die = lambda: None  # the write, without the death
        plan.on_publish(cache, key, 0)
        assert cache.path_for(key).exists()
        assert cache.peek(key) is None

        store = LeaseStore(
            cache.root, run_id="torn-recovery", worker_id="rescue",
            ttl_seconds=0.5,
        )
        stats = run_worker(tasks, cache, store, poll_interval=0.05)
        assert stats.computed == 1
        assert cache.peek(key) is not None  # atomically overwritten


@pytest.mark.slow
class TestScenarioMatrix:
    """The acceptance gate: every seeded scenario converges — grid
    complete, digests bit-identical to serial, journal clean — per the
    invariant checker inside :func:`run_scenario`."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_converges(self, name):
        report = run_scenario(name, seed=2010, workers=4)
        assert report.ok, report.violations
        assert report.cells > 0
        assert report.wall_seconds > 0
