"""Tests for SimulationResult accessors and the virtual pool manager."""

import pytest

from repro.core.context import StaticSystemView
from repro.schedulers.initial import RoundRobinScheduler
from repro.simulator.job import Job
from repro.simulator.pool import PhysicalPool, SubmitOutcome
from repro.simulator.results import JobRecord, SimulationResult
from repro.simulator.virtual_pool import VirtualPoolManager

from conftest import make_job, make_pool


def record(job_id, suspended=False, rejected=False, user="u"):
    return JobRecord(
        job_id=job_id,
        priority=0,
        submit_minute=0.0,
        finish_minute=None if rejected else 10.0,
        runtime_minutes=5.0,
        cores=1,
        memory_gb=1.0,
        wait_time=0.0,
        suspend_time=1.0 if suspended else 0.0,
        wasted_restart_time=0.0,
        suspension_count=1 if suspended else 0,
        restart_count=0,
        migration_count=0,
        waiting_move_count=0,
        pools_visited=("p0",),
        rejected=rejected,
        task_id=None,
        user=user,
    )


class TestSimulationResult:
    def make(self):
        return SimulationResult(
            records=[record(0), record(1, suspended=True), record(2, rejected=True)],
            samples=[],
            pool_ids=("p0",),
            policy_name="NoRes",
            scheduler_name="RoundRobin",
            total_cores=4,
        )

    def test_filters(self):
        result = self.make()
        assert len(result) == 3
        assert len(list(result.completed_records())) == 2
        assert len(list(result.suspended_records())) == 1
        assert result.rejected_count() == 1

    def test_record_by_id(self):
        result = self.make()
        assert result.record_by_id(1).suspension_count == 1
        with pytest.raises(KeyError):
            result.record_by_id(99)

    def test_records_by_user(self):
        result = SimulationResult(
            records=[record(0, user="a"), record(1, user="b"), record(2, user="a")],
            samples=[],
            pool_ids=("p0",),
            policy_name="NoRes",
            scheduler_name="RoundRobin",
            total_cores=4,
        )
        grouped = result.records_by_user()
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1


class TestVirtualPoolManager:
    def make_vpm(self, pool_count=2, machine_count=1):
        pools = {
            f"p{i}": PhysicalPool(make_pool(f"p{i}", machine_count, cores=1))
            for i in range(pool_count)
        }
        vpm = VirtualPoolManager("vpm-0", RoundRobinScheduler(), pools)
        snapshots = [p.snapshot() for p in pools.values()]
        view = StaticSystemView(now=0.0, snapshots=snapshots)
        return vpm, pools, view

    def test_places_at_first_candidate(self):
        vpm, pools, view = self.make_vpm()
        job = Job(make_job(0))
        result, pool_id = vpm.submit(job, ("p0", "p1"), view, 0.0)
        assert result.outcome is SubmitOutcome.STARTED
        assert pool_id == "p0"

    def test_round_robin_rotates(self):
        vpm, pools, view = self.make_vpm()
        _, first = vpm.submit(Job(make_job(0)), ("p0", "p1"), view, 0.0)
        _, second = vpm.submit(Job(make_job(1)), ("p0", "p1"), view, 0.0)
        assert {first, second} == {"p0", "p1"}

    def test_skips_ineligible_pool(self):
        vpm, pools, view = self.make_vpm()
        # job needs windows; neither pool has it
        job = Job(make_job(0, os_family="windows"))
        result, pool_id = vpm.submit(job, ("p0", "p1"), view, 0.0)
        assert result.outcome is SubmitOutcome.INELIGIBLE
        assert pool_id is None

    def test_empty_candidates(self):
        vpm, pools, view = self.make_vpm()
        result, pool_id = vpm.submit(Job(make_job(0)), (), view, 0.0)
        assert result.outcome is SubmitOutcome.INELIGIBLE
        assert pool_id is None

    def test_busy_pool_queues_rather_than_skips(self):
        vpm, pools, view = self.make_vpm(pool_count=1)
        vpm.submit(Job(make_job(0, runtime=100.0)), ("p0",), view, 0.0)
        result, pool_id = vpm.submit(Job(make_job(1)), ("p0",), view, 0.0)
        assert result.outcome is SubmitOutcome.QUEUED
        assert pool_id == "p0"
