"""Tests for repro.analysis (figures 2-4 analyses, comparison)."""

import pytest

import repro
from repro.analysis.comparison import compare_strategies, reduction_pct
from repro.analysis.suspension import analyze_suspension, suspension_time_cdf
from repro.analysis.utilization import analyze_utilization
from repro.analysis.waste import waste_decomposition
from repro.errors import ConfigurationError
from repro.simulator.config import SimulationConfig


class TestSuspensionAnalysis:
    def test_headline_stats_consistent(self, smoke_result):
        analysis = analyze_suspension(smoke_result)
        assert analysis.suspended_jobs > 0
        assert analysis.median_minutes <= analysis.p80_minutes <= analysis.max_minutes
        assert analysis.mean_suspensions_per_job >= 1.0
        assert len(analysis.rows()) == 6

    def test_cdf_matches_records(self, smoke_result):
        cdf = suspension_time_cdf(smoke_result)
        suspended = list(smoke_result.suspended_records())
        assert len(cdf) == len(suspended)
        assert cdf.mean == pytest.approx(
            sum(r.suspend_time for r in suspended) / len(suspended)
        )

    def test_requires_suspensions(self):
        from conftest import make_job, run_tiny

        result = run_tiny([make_job(0)])
        with pytest.raises(ConfigurationError):
            suspension_time_cdf(result)


class TestUtilizationAnalysis:
    def test_series_shapes(self, smoke_result):
        analysis = analyze_utilization(smoke_result, window_minutes=50.0)
        assert len(analysis.points) > 10
        assert len(analysis.utilization_series()) == len(analysis.points)
        assert 0.0 < analysis.mean_utilization_pct < 100.0
        assert analysis.p10_utilization_pct <= analysis.p90_utilization_pct

    def test_underutilized_suspension_fraction_bounds(self, smoke_result):
        analysis = analyze_utilization(smoke_result)
        assert 0.0 <= analysis.suspension_while_underutilized <= 1.0

    def test_requires_samples(self):
        from conftest import make_job, run_tiny

        result = run_tiny([make_job(0)], record_samples=False)
        with pytest.raises(ConfigurationError):
            analyze_utilization(result)


class TestWasteDecomposition:
    def test_bars_and_series(self, smoke_result, smoke_resched_result):
        figure = waste_decomposition([smoke_result, smoke_resched_result])
        bars = figure.bars()
        assert set(bars) == {"NoRes", "ResSusWaitUtil"}
        series = figure.series()
        assert set(series) == {"wait_time", "suspend_time", "resched_time"}
        assert len(series["wait_time"]) == 2
        assert figure.strategy_names() == ["NoRes", "ResSusWaitUtil"]
        # NoRes has no rescheduling waste by definition
        assert bars["NoRes"].resched_time == 0.0


class TestComparison:
    def test_reduction_pct(self):
        assert reduction_pct(100.0, 50.0) == pytest.approx(50.0)
        assert reduction_pct(100.0, 120.0) == pytest.approx(-20.0)
        assert reduction_pct(None, 5.0) is None
        assert reduction_pct(0.0, 5.0) is None

    def test_compare_strategies(self, smoke_scenario):
        comparison = compare_strategies(
            smoke_scenario,
            [repro.no_res(), repro.res_sus_util()],
            config=SimulationConfig(strict=False, record_samples=False),
        )
        assert comparison.scenario_name == "smoke"
        assert comparison.baseline().policy_name == "NoRes"
        assert comparison.by_name("ResSusUtil").policy_name == "ResSusUtil"
        reduction = comparison.avg_ct_suspended_reduction("ResSusUtil")
        assert reduction is not None
        assert comparison.avg_wct_reduction("ResSusUtil") is not None
        assert comparison.avg_ct_all_reduction("ResSusUtil") is not None

    def test_unknown_strategy(self, smoke_scenario):
        comparison = compare_strategies(
            smoke_scenario,
            [repro.no_res()],
            config=SimulationConfig(strict=False, record_samples=False),
        )
        with pytest.raises(ConfigurationError):
            comparison.by_name("Nope")

    def test_empty_policies_rejected(self, smoke_scenario):
        with pytest.raises(ConfigurationError):
            compare_strategies(smoke_scenario, [])
