"""Tests for the parallel experiment execution backend.

Covers the contract the ROADMAP's sweep-style PRs build on:

* serial and parallel grids produce bit-identical summaries;
* per-cell seeds derive from cell identity, not call order, so
  reordering a grid (or running one cell alone) reproduces results;
* pickling-hostile policies transparently fall back to serial
  execution;
* a failing cell names itself and never loses completed cells.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.policies import NoRescheduling
from repro.errors import ConfigurationError, ExperimentExecutionError
from repro.experiments.cache import derive_cell_seed
from repro.experiments.parallel import execute_cells, make_cell_task
from repro.experiments.runner import ExperimentRunner
from repro.simulator.config import SimulationConfig
from repro.simulator.observer import EventLog
from repro.telemetry import Instrumentation

FAST = SimulationConfig(strict=False, record_samples=False)

ALL_POLICIES = [repro.no_res, repro.res_sus_util, repro.res_sus_rand]


class ExplodingPolicy(NoRescheduling):
    """Raises the first time the engine consults it."""

    name = "Exploding"

    def on_suspend(self, job, view):
        raise RuntimeError("boom in on_suspend")


def exploding_policy() -> ExplodingPolicy:
    return ExplodingPolicy()


def hostile_policy():
    """A picklable-class policy made unpicklable by a lambda attribute."""
    policy = repro.no_res()
    policy.hostile_attr = lambda: None  # lambdas cannot be pickled
    policy.name = "HostileNoRes"
    return policy


class TestSerialParallelEquivalence:
    def test_run_grid_summaries_identical(self, smoke_scenario):
        serial = ExperimentRunner(config=FAST, n_workers=1).run_grid(
            [smoke_scenario], ALL_POLICIES
        )
        parallel = ExperimentRunner(config=FAST, n_workers=4).run_grid(
            [smoke_scenario], ALL_POLICIES
        )
        assert [c.summary for c in serial] == [c.summary for c in parallel]
        assert [c.seed for c in serial] == [c.seed for c in parallel]
        assert not any(c.from_cache for c in serial + parallel)

    def test_parallel_cells_report_wall_time(self, smoke_scenario):
        cells = ExperimentRunner(config=FAST, n_workers=2).run_grid(
            [smoke_scenario], [repro.no_res, repro.res_sus_util]
        )
        assert all(c.wall_seconds > 0 for c in cells)

    def test_compare_strategies_parallel_matches_serial(self, smoke_scenario):
        from repro.analysis.comparison import compare_strategies

        serial = compare_strategies(
            smoke_scenario, [repro.no_res(), repro.res_sus_rand()], config=FAST
        )
        parallel = compare_strategies(
            smoke_scenario,
            [repro.no_res(), repro.res_sus_rand()],
            config=FAST,
            n_workers=2,
        )
        assert serial.summaries == parallel.summaries


class TestCellSeeding:
    def test_cells_with_different_policies_get_different_seeds(self, smoke_scenario):
        cells = ExperimentRunner(config=FAST).run_grid([smoke_scenario], ALL_POLICIES)
        seeds = [c.seed for c in cells]
        assert len(set(seeds)) == len(seeds)

    def test_seed_depends_on_identity_not_call_order(self, smoke_scenario):
        forward = ExperimentRunner(config=FAST).run_grid(
            [smoke_scenario], [repro.res_sus_util, repro.res_sus_rand]
        )
        reversed_ = ExperimentRunner(config=FAST).run_grid(
            [smoke_scenario], [repro.res_sus_rand, repro.res_sus_util]
        )
        by_policy_fwd = {c.policy_name: c for c in forward}
        by_policy_rev = {c.policy_name: c for c in reversed_}
        for name in by_policy_fwd:
            assert by_policy_fwd[name].seed == by_policy_rev[name].seed
            assert by_policy_fwd[name].summary == by_policy_rev[name].summary

    def test_single_cell_reproduces_its_grid_result(self, smoke_scenario):
        grid = ExperimentRunner(config=FAST).run_grid([smoke_scenario], ALL_POLICIES)
        alone = ExperimentRunner(config=FAST).run_grid(
            [smoke_scenario], [repro.res_sus_rand]
        )
        grid_cell = next(c for c in grid if c.policy_name == "ResSusRand")
        assert alone[0].summary == grid_cell.summary

    def test_derive_cell_seed_is_stable_and_distinct(self):
        a = derive_cell_seed(2010, "smoke#7|NoRes|RoundRobin")
        assert a == derive_cell_seed(2010, "smoke#7|NoRes|RoundRobin")
        assert a != derive_cell_seed(2010, "smoke#7|ResSusUtil|RoundRobin")
        assert a != derive_cell_seed(2011, "smoke#7|NoRes|RoundRobin")


class TestPicklingFallback:
    def test_hostile_policy_falls_back_to_serial(self, smoke_scenario):
        parallel = ExperimentRunner(config=FAST, n_workers=2).run_grid(
            [smoke_scenario], [hostile_policy, repro.res_sus_util]
        )
        serial = ExperimentRunner(config=FAST, n_workers=1).run_grid(
            [smoke_scenario], [hostile_policy, repro.res_sus_util]
        )
        assert [c.summary for c in parallel] == [c.summary for c in serial]
        assert parallel[0].policy_name == "HostileNoRes"


class TestErrorPaths:
    def test_factory_error_names_cell_and_keeps_completed(self, smoke_scenario):
        runner = ExperimentRunner(config=FAST)
        with pytest.raises(ExperimentExecutionError) as excinfo:
            runner.run_grid(
                [smoke_scenario],
                [repro.no_res, _raising_factory, repro.res_sus_util],
            )
        err = excinfo.value
        assert err.scenario_name == "smoke"
        assert err.policy_name == "_raising_factory"
        assert err.scheduler_name == "RoundRobinScheduler"
        assert "smoke" in str(err) and "_raising_factory" in str(err)
        # the cell that ran before the failure survives on the error
        assert [c.policy_name for c in err.completed_cells] == ["NoRes"]

    def test_simulation_error_names_cell_serial(self, smoke_scenario):
        runner = ExperimentRunner(config=FAST, n_workers=1)
        with pytest.raises(ExperimentExecutionError) as excinfo:
            runner.run_grid(
                [smoke_scenario], [repro.no_res, exploding_policy, repro.res_sus_util]
            )
        err = excinfo.value
        assert err.policy_name == "Exploding"
        assert [c.policy_name for c in err.completed_cells] == ["NoRes"]

    def test_simulation_error_names_cell_parallel(self, smoke_scenario):
        runner = ExperimentRunner(config=FAST, n_workers=2)
        with pytest.raises(ExperimentExecutionError) as excinfo:
            runner.run_grid(
                [smoke_scenario], [repro.no_res, exploding_policy, repro.res_sus_util]
            )
        assert excinfo.value.policy_name == "Exploding"

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(n_workers=0)
        with pytest.raises(ConfigurationError):
            execute_cells([], n_workers=0)

    def test_empty_grid_still_validated(self, smoke_scenario):
        runner = ExperimentRunner(config=FAST, n_workers=2)
        with pytest.raises(ConfigurationError):
            runner.run_grid([], [repro.no_res])
        with pytest.raises(ConfigurationError):
            runner.run_grid([smoke_scenario], [])


def _raising_factory():
    raise ValueError("factory exploded")


class TestTaskConstruction:
    def test_make_cell_task_derives_seed_and_key(self, smoke_scenario):
        task = make_cell_task(0, smoke_scenario, repro.no_res(), None, FAST)
        assert task.config.seed == derive_cell_seed(FAST.seed, task.cell_id)
        assert task.cache_key is not None
        assert task.cell_id == "smoke#7|NoRes|RoundRobin"

    def test_observer_config_disables_caching(self, smoke_scenario):
        config = SimulationConfig(
            strict=False, instrumentation=Instrumentation(observers=(EventLog(),))
        )
        task = make_cell_task(0, smoke_scenario, repro.no_res(), None, config)
        assert task.cache_key is None
