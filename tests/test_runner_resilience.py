"""Crash tolerance of the experiment grid runner.

These tests inject real failures into real worker processes: schedulers
that kill their process (``os._exit``) to provoke ``BrokenProcessPool``,
schedulers that stall to trip the cell timeout, and deterministic
exceptions — then assert the grid retries, isolates, reports, and
resumes exactly as :func:`repro.experiments.parallel.run_grid_parallel`
promises.
"""

import os
import time

import pytest

from repro.errors import ConfigurationError, ExperimentExecutionError
from repro.experiments.checkpoint import GridCheckpoint
from repro.experiments.parallel import (
    execute_cells,
    make_cell_task,
    run_grid_parallel,
)
from repro.schedulers.initial import RoundRobinScheduler
from repro.simulator.config import SimulationConfig
from repro.workload.scenarios import Scenario

from conftest import make_cluster, make_job, make_trace


def tiny_scenario(name: str, job_count: int = 4) -> Scenario:
    return Scenario(
        name=name,
        description="resilience-test scenario",
        cluster=make_cluster(),
        trace=make_trace(
            [make_job(i, submit=float(i), runtime=5.0) for i in range(job_count)]
        ),
        seed=1,
    )


class CrashUntilMarker(RoundRobinScheduler):
    """Kills the worker process until ``marker`` exists on disk.

    The first execution attempt dies mid-simulation (provoking
    ``BrokenProcessPool`` in the parent); every later attempt runs
    normally, emulating a transient worker death (OOM kill, ...).
    """

    name = "CrashUntilMarker"

    def __init__(self, marker: str) -> None:
        super().__init__()
        self._marker = marker

    def order(self, candidates, view):
        if not os.path.exists(self._marker):
            with open(self._marker, "w"):
                pass
            os._exit(42)
        return super().order(candidates, view)


class CrashAlways(RoundRobinScheduler):
    """Kills the worker process on every attempt: a persistent crasher."""

    name = "CrashAlways"

    def order(self, candidates, view):
        os._exit(42)


class StallForever(RoundRobinScheduler):
    """Stalls long enough that any reasonable cell timeout trips."""

    name = "StallForever"

    def order(self, candidates, view):
        time.sleep(5.0)
        return super().order(candidates, view)


class RaiseDeterministic(RoundRobinScheduler):
    """Raises the same exception on every attempt."""

    name = "RaiseDeterministic"

    def order(self, candidates, view):
        raise ValueError("deterministic failure")


def _no_res():
    from repro.core.policies import NoRescheduling

    return NoRescheduling()


def build_tasks(schedulers):
    config = SimulationConfig(strict=False)
    return [
        make_cell_task(i, tiny_scenario(f"s{i}"), _no_res(), scheduler, config)
        for i, scheduler in enumerate(schedulers)
    ]


class TestWorkerCrashRetry:
    def test_transient_crash_is_retried_and_grid_completes(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        schedulers = [
            RoundRobinScheduler(),
            CrashUntilMarker(marker),
            RoundRobinScheduler(),
            RoundRobinScheduler(),
        ]
        sleeps = []
        report = run_grid_parallel(
            build_tasks(schedulers),
            n_workers=2,
            max_attempts=3,
            retry_backoff=0.01,
            sleep=sleeps.append,
        )
        assert report.ok
        assert len(report.completed) == 4
        assert os.path.exists(marker)
        assert sleeps  # backoff happened after the pool break

    def test_persistent_crasher_is_isolated_and_only_it_fails(self, tmp_path):
        schedulers = [
            RoundRobinScheduler(),
            CrashAlways(),
            RoundRobinScheduler(),
        ]
        report = run_grid_parallel(
            build_tasks(schedulers),
            n_workers=2,
            max_attempts=2,
            retry_backoff=0.0,
            keep_going=True,
        )
        assert not report.ok
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.index == 1
        assert failure.scheduler_name == "CrashAlways"
        assert failure.attempts == 2
        assert "Broken" in failure.error_type
        # the healthy cells all completed despite sharing pools with it
        assert {o.index for o in report.completed} == {0, 2}
        assert report.outcomes[1] is None

    def test_strict_mode_raises_after_retries_exhausted(self):
        schedulers = [RoundRobinScheduler(), CrashAlways()]
        with pytest.raises(ExperimentExecutionError) as excinfo:
            run_grid_parallel(
                build_tasks(schedulers),
                n_workers=2,
                max_attempts=2,
                retry_backoff=0.0,
            )
        assert excinfo.value.scheduler_name == "CrashAlways"


class TestDeterministicFailures:
    def test_keep_going_records_failure_and_finishes_rest(self):
        schedulers = [
            RoundRobinScheduler(),
            RaiseDeterministic(),
            RoundRobinScheduler(),
        ]
        report = run_grid_parallel(
            build_tasks(schedulers), n_workers=1, keep_going=True
        )
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.error_type == "ValueError"
        assert failure.attempts == 1  # deterministic errors are not retried
        assert {o.index for o in report.completed} == {0, 2}

    def test_strict_failure_carries_completed_cells_in_grid_order(self):
        schedulers = [
            RoundRobinScheduler(),
            RoundRobinScheduler(),
            RaiseDeterministic(),
            RoundRobinScheduler(),
        ]
        with pytest.raises(ExperimentExecutionError) as excinfo:
            execute_cells(build_tasks(schedulers), n_workers=1)
        completed = excinfo.value.completed_cells
        assert [c.index for c in completed] == sorted(c.index for c in completed)
        assert [c.index for c in completed] == [0, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_grid_parallel([], n_workers=0)
        with pytest.raises(ConfigurationError):
            run_grid_parallel([], max_attempts=0)
        with pytest.raises(ConfigurationError):
            run_grid_parallel([], retry_backoff=-1.0)


class TestCellTimeout:
    def test_stuck_cell_times_out_and_rest_complete(self):
        schedulers = [
            RoundRobinScheduler(),
            StallForever(),
            RoundRobinScheduler(),
        ]
        report = run_grid_parallel(
            build_tasks(schedulers),
            n_workers=3,
            cell_timeout=1.0,
            keep_going=True,
            retry_backoff=0.0,
        )
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.scheduler_name == "StallForever"
        assert failure.error_type == "TimeoutError"
        assert "did not finish within" in failure.message
        assert {o.index for o in report.completed} == {0, 2}


class TestCheckpointResume:
    def test_interrupted_grid_resumes_from_checkpoint(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        schedulers = [RoundRobinScheduler() for _ in range(4)]
        tasks = build_tasks(schedulers)

        # First launch is "killed" after two cells: simulate by running
        # only a prefix of the grid against the checkpoint.
        first = run_grid_parallel(
            tasks[:2], n_workers=1, checkpoint=GridCheckpoint(path)
        )
        assert first.ok
        assert len(GridCheckpoint(path)) == 2

        # The relaunch sees the full grid; the finished prefix is served
        # from the checkpoint, byte-identical summaries included.
        resumed = run_grid_parallel(
            tasks, n_workers=1, checkpoint=GridCheckpoint(path)
        )
        assert resumed.ok
        assert [o.from_checkpoint for o in resumed.outcomes] == [
            True,
            True,
            False,
            False,
        ]
        fresh = run_grid_parallel(tasks, n_workers=1)
        assert [o.summary for o in resumed.outcomes] == [
            o.summary for o in fresh.outcomes
        ]

    def test_checkpoint_entry_invalidated_by_config_change(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        tasks = build_tasks([RoundRobinScheduler()])
        run_grid_parallel(tasks, n_workers=1, checkpoint=GridCheckpoint(path))

        changed = [
            make_cell_task(
                0,
                tiny_scenario("s0"),
                _no_res(),
                RoundRobinScheduler(),
                SimulationConfig(strict=False, seed=999),
            )
        ]
        report = run_grid_parallel(
            changed, n_workers=1, checkpoint=GridCheckpoint(path)
        )
        assert report.outcomes[0].from_checkpoint is False

    def test_corrupt_checkpoint_degrades_to_recompute(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        tasks = build_tasks([RoundRobinScheduler(), RoundRobinScheduler()])
        run_grid_parallel(tasks, n_workers=1, checkpoint=GridCheckpoint(path))

        # Simulate a writer SIGKILLed mid-write: only half the bytes.
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert len(GridCheckpoint(path)) == 0

        report = run_grid_parallel(
            tasks, n_workers=1, checkpoint=GridCheckpoint(path)
        )
        assert report.ok
        assert all(not o.from_checkpoint for o in report.outcomes)

    def test_runner_threads_checkpoint_and_keep_going(self, tmp_path):
        from repro.experiments.runner import ExperimentRunner

        scenario = tiny_scenario("runner")
        runner = ExperimentRunner(
            config=SimulationConfig(strict=False),
            checkpoint_path=tmp_path / "runner.ckpt",
            keep_going=True,
        )
        cells = runner.run_grid([scenario], [_no_res])
        assert len(cells) == 1
        assert runner.last_failures == ()
        assert len(runner.checkpoint) == 1

        resumed = ExperimentRunner(
            config=SimulationConfig(strict=False),
            checkpoint_path=tmp_path / "runner.ckpt",
        )
        cells2 = resumed.run_grid([scenario], [_no_res])
        assert cells2[0].from_checkpoint is True
        assert cells2[0].summary == cells[0].summary
