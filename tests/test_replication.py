"""Tests for multi-seed replication (repro.experiments.replication)."""

import pytest

import repro
from repro.errors import ConfigurationError
from repro.experiments.replication import (
    MetricEstimate,
    _estimate,
    _t_critical,
    replicate,
)
from repro.workload.scenarios import smoke


def smoke_factory(scale, seed):
    return smoke(seed=seed)


class TestEstimate:
    def test_single_sample_zero_width(self):
        estimate = _estimate([5.0])
        assert estimate.mean == 5.0
        assert estimate.half_width == 0.0

    def test_identical_samples_zero_width(self):
        estimate = _estimate([3.0, 3.0, 3.0])
        assert estimate.half_width == 0.0

    def test_known_interval(self):
        # samples 1,2,3: mean 2, sd 1, se 1/sqrt(3), t(2)=4.303
        estimate = _estimate([1.0, 2.0, 3.0])
        assert estimate.mean == pytest.approx(2.0)
        assert estimate.half_width == pytest.approx(4.303 / (3 ** 0.5), rel=1e-3)
        assert estimate.low < estimate.mean < estimate.high

    def test_t_critical_large_df_normalish(self):
        assert _t_critical(100) == pytest.approx(1.96)
        assert _t_critical(0) == float("inf")

    def test_str_format(self):
        assert str(MetricEstimate(10.0, 2.5, (1.0,))) == "10.0 ± 2.5"


class TestReplicate:
    @pytest.fixture(scope="class")
    def comparison(self):
        return replicate(
            [repro.no_res, repro.res_sus_wait_util],
            scenario_factory=smoke_factory,
            seeds=(7, 8, 9),
            scale=1.0,
        )

    def test_strategies_and_seeds(self, comparison):
        assert comparison.strategy_names() == ["NoRes", "ResSusWaitUtil"]
        assert comparison.seeds == (7, 8, 9)

    def test_every_metric_has_three_samples(self, comparison):
        wct = comparison.estimates["NoRes"]["avg_wct"]
        assert len(wct.samples) == 3
        assert wct.half_width >= 0.0

    def test_render(self, comparison):
        text = comparison.render()
        assert "NoRes" in text
        assert "±" in text

    def test_significantly_better_is_conservative(self, comparison):
        # identical strategy vs itself is never "significantly better"
        assert not comparison.significantly_better("NoRes", "NoRes")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            replicate([], seeds=(1,))
        with pytest.raises(ConfigurationError):
            replicate([repro.no_res], seeds=())
