"""Unit tests for repro.core: decisions, selectors, policies, overheads."""

import pytest

from repro.core.context import PoolSnapshot, StaticSystemView
from repro.core.decisions import STAY, Action, Decision, duplicate, restart
from repro.core.overheads import NO_OVERHEAD, RestartOverhead
from repro.core.policies import (
    DEFAULT_WAIT_THRESHOLD,
    PAPER_POLICY_NAMES,
    DuplicateSuspended,
    NoRescheduling,
    RescheduleSuspended,
    RescheduleWaitingOnly,
    no_res,
    policy_from_name,
    res_sus_rand,
    res_sus_util,
    res_sus_wait_rand,
    res_sus_wait_util,
)
from repro.core.selectors import (
    LowestUtilizationSelector,
    PredictedWaitSelector,
    RandomSelector,
    ShortestQueueSelector,
    WeightedSelector,
)
from repro.errors import ConfigurationError, UnknownPolicyError

from conftest import make_job


class FakeJob:
    """Minimal JobView-shaped stand-in."""

    def __init__(self, spec, pool_id):
        self.spec = spec
        self.pool_id = pool_id


def view(*snapshots, now=0.0, seed=1):
    return StaticSystemView(now=now, snapshots=list(snapshots), seed=seed)


def snap(pool_id, busy, total=10, waiting=0, suspended=0):
    return PoolSnapshot(
        pool_id=pool_id,
        total_cores=total,
        busy_cores=busy,
        waiting_jobs=waiting,
        suspended_jobs=suspended,
    )


class TestDecisions:
    def test_stay_has_no_target(self):
        assert STAY.action is Action.STAY
        assert not STAY.moves

    def test_restart_and_duplicate(self):
        assert restart("p1").action is Action.RESTART
        assert restart("p1").moves
        assert duplicate("p2").target_pool == "p2"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Decision(Action.STAY, "p1")
        with pytest.raises(ConfigurationError):
            Decision(Action.RESTART, None)


class TestPoolSnapshot:
    def test_utilization(self):
        assert snap("a", busy=5).utilization == 0.5
        assert snap("a", busy=0, total=0).utilization == 0.0

    def test_free_cores(self):
        assert snap("a", busy=3).free_cores == 7


class TestStaticSystemView:
    def test_pool_lookup(self):
        v = view(snap("a", 1), snap("b", 2))
        assert v.pool("a").busy_cores == 1
        assert v.pool_ids == ("a", "b")

    def test_unknown_pool(self):
        from repro.errors import UnknownPoolError

        with pytest.raises(UnknownPoolError):
            view(snap("a", 1)).pool("zzz")

    def test_candidate_pools_respects_whitelist(self):
        v = view(snap("a", 1), snap("b", 1), snap("c", 1))
        job = FakeJob(make_job(1, candidate_pools=("c", "a")), pool_id="a")
        assert v.candidate_pools(job) == ("a", "c")  # canonical order

    def test_candidate_pools_unrestricted(self):
        v = view(snap("a", 1), snap("b", 1))
        job = FakeJob(make_job(1), pool_id="a")
        assert v.candidate_pools(job) == ("a", "b")


class TestLowestUtilizationSelector:
    def test_picks_least_utilized_other(self):
        v = view(snap("a", 9), snap("b", 5), snap("c", 2))
        selector = LowestUtilizationSelector()
        assert selector.select(("a", "b", "c"), "a", v) == "c"

    def test_guard_blocks_worse_moves(self):
        v = view(snap("a", 2), snap("b", 5), snap("c", 9))
        selector = LowestUtilizationSelector()
        assert selector.select(("a", "b", "c"), "a", v) is None

    def test_unguarded_always_moves(self):
        v = view(snap("a", 2), snap("b", 5))
        selector = LowestUtilizationSelector(guard=False)
        assert selector.select(("a", "b"), "a", v) == "b"

    def test_no_alternatives(self):
        v = view(snap("a", 2))
        assert LowestUtilizationSelector().select(("a",), "a", v) is None

    def test_tie_broken_by_pool_id(self):
        v = view(snap("b", 1), snap("c", 1), snap("a", 9))
        assert LowestUtilizationSelector().select(("a", "b", "c"), "a", v) == "b"


class TestRandomSelector:
    def test_never_returns_current(self):
        v = view(snap("a", 1), snap("b", 1), snap("c", 1), seed=0)
        selector = RandomSelector()
        for _ in range(50):
            assert selector.select(("a", "b", "c"), "a", v) in {"b", "c"}

    def test_none_when_no_alternatives(self):
        v = view(snap("a", 1))
        assert RandomSelector().select(("a",), "a", v) is None

    def test_uses_view_rng(self):
        picks_a = [
            RandomSelector().select(("a", "b", "c"), "a", view(snap("a", 1), snap("b", 1), snap("c", 1), seed=5))
            for _ in range(1)
        ]
        picks_b = [
            RandomSelector().select(("a", "b", "c"), "a", view(snap("a", 1), snap("b", 1), snap("c", 1), seed=5))
            for _ in range(1)
        ]
        assert picks_a == picks_b


class TestShortestQueueSelector:
    def test_picks_shortest_queue(self):
        v = view(snap("a", 0, waiting=9), snap("b", 0, waiting=4), snap("c", 0, waiting=1))
        assert ShortestQueueSelector().select(("a", "b", "c"), "a", v) == "c"

    def test_guard(self):
        v = view(snap("a", 0, waiting=1), snap("b", 0, waiting=4))
        assert ShortestQueueSelector().select(("a", "b"), "a", v) is None


class TestWeightedSelector:
    def test_score_composition(self):
        selector = WeightedSelector(
            utilization_weight=1.0, queue_weight=1.0, suspension_weight=1.0
        )
        s = snap("a", busy=5, total=10, waiting=10, suspended=5)
        assert selector.score(s) == pytest.approx(0.5 + 1.0 + 0.5)

    def test_selects_lowest_score(self):
        v = view(snap("a", 9, waiting=10), snap("b", 1, waiting=0))
        assert WeightedSelector().select(("a", "b"), "a", v) == "b"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WeightedSelector(utilization_weight=-1.0)
        with pytest.raises(ConfigurationError):
            WeightedSelector(
                utilization_weight=0.0, queue_weight=0.0, suspension_weight=0.0
            )


class TestPredictedWaitSelector:
    def test_free_pool_predicts_zero(self):
        selector = PredictedWaitSelector(mean_runtime=100.0)
        assert selector.predicted_wait(snap("a", busy=5, total=10, waiting=3)) == 0.0

    def test_full_pool_predicts_backlog(self):
        selector = PredictedWaitSelector(mean_runtime=100.0)
        assert selector.predicted_wait(
            snap("a", busy=10, total=10, waiting=5)
        ) == pytest.approx(50.0)

    def test_selects_lowest_predicted(self):
        v = view(snap("a", 10, waiting=5), snap("b", 10, total=10, waiting=1), snap("c", 10, waiting=9))
        assert PredictedWaitSelector().select(("a", "b", "c"), "a", v) == "b"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PredictedWaitSelector(mean_runtime=0.0)


class TestPolicies:
    def test_no_res_stays(self):
        policy = NoRescheduling()
        job = FakeJob(make_job(1), "a")
        v = view(snap("a", 9), snap("b", 0))
        assert policy.on_suspend(job, v) is STAY
        assert policy.on_wait_timeout(job, v) is STAY
        assert policy.wait_threshold is None

    def test_res_sus_util_moves_to_cold_pool(self):
        policy = res_sus_util()
        job = FakeJob(make_job(1), "a")
        v = view(snap("a", 9), snap("b", 1))
        decision = policy.on_suspend(job, v)
        assert decision.action is Action.RESTART
        assert decision.target_pool == "b"
        # no waiting hook
        assert policy.wait_threshold is None
        assert policy.on_wait_timeout(job, v) is STAY

    def test_res_sus_util_guard_stays(self):
        policy = res_sus_util()
        job = FakeJob(make_job(1), "a")
        v = view(snap("a", 1), snap("b", 9))
        assert policy.on_suspend(job, v) is STAY

    def test_res_sus_rand_always_moves(self):
        policy = res_sus_rand()
        job = FakeJob(make_job(1), "a")
        v = view(snap("a", 1), snap("b", 9))
        decision = policy.on_suspend(job, v)
        assert decision.action is Action.RESTART
        assert decision.target_pool == "b"

    def test_wait_policy_has_threshold_and_hook(self):
        policy = res_sus_wait_util(45.0)
        assert policy.wait_threshold == 45.0
        job = FakeJob(make_job(1), "a")
        v = view(snap("a", 9), snap("b", 1))
        assert policy.on_wait_timeout(job, v).target_pool == "b"

    def test_wait_policy_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            res_sus_wait_rand(0.0)
        with pytest.raises(ConfigurationError):
            RescheduleWaitingOnly(LowestUtilizationSelector(), wait_threshold=-1.0)

    def test_waiting_only_ignores_suspension(self):
        policy = RescheduleWaitingOnly(LowestUtilizationSelector())
        job = FakeJob(make_job(1), "a")
        v = view(snap("a", 9), snap("b", 1))
        assert policy.on_suspend(job, v) is STAY
        assert policy.on_wait_timeout(job, v).moves

    def test_duplicate_policy_returns_duplicate_action(self):
        policy = DuplicateSuspended(LowestUtilizationSelector())
        job = FakeJob(make_job(1), "a")
        v = view(snap("a", 9), snap("b", 1))
        assert policy.on_suspend(job, v).action is Action.DUPLICATE

    def test_policy_respects_candidate_whitelist(self):
        policy = res_sus_util()
        job = FakeJob(make_job(1, candidate_pools=("a", "c")), "a")
        v = view(snap("a", 9), snap("b", 0), snap("c", 5))
        # "b" is colder but not allowed
        assert policy.on_suspend(job, v).target_pool == "c"

    def test_selector_property(self):
        selector = LowestUtilizationSelector()
        assert RescheduleSuspended(selector).selector is selector


class TestPolicyRegistry:
    def test_all_paper_names_constructible(self):
        for name in PAPER_POLICY_NAMES:
            policy = policy_from_name(name)
            assert policy.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownPolicyError):
            policy_from_name("NotAPolicy")

    def test_threshold_passed_to_wait_policies(self):
        assert policy_from_name("ResSusWaitUtil", 99.0).wait_threshold == 99.0
        assert policy_from_name("NoRes", 99.0).wait_threshold is None

    def test_policy_from_name_is_deprecated(self):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            policy_from_name("NoRes")
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)

    def test_default_threshold_constant(self):
        assert DEFAULT_WAIT_THRESHOLD == 30.0
        assert res_sus_wait_util().wait_threshold == 30.0

    def test_factory_names_match_paper(self):
        assert no_res().name == "NoRes"
        assert res_sus_util().name == "ResSusUtil"
        assert res_sus_rand().name == "ResSusRand"
        assert res_sus_wait_util().name == "ResSusWaitUtil"
        assert res_sus_wait_rand().name == "ResSusWaitRand"


class TestRestartOverhead:
    def test_no_overhead_is_free(self):
        assert NO_OVERHEAD.is_free
        assert NO_OVERHEAD.delay_for(make_job(1)) == 0.0

    def test_affine_model(self):
        overhead = RestartOverhead(fixed_minutes=5.0, per_gb_minutes=2.0)
        assert overhead.delay_for(make_job(1, memory_gb=4.0)) == 13.0
        assert not overhead.is_free

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RestartOverhead(fixed_minutes=-1.0)
