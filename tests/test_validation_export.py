"""Tests for the claims-validation module and CSV export."""

import csv

import pytest

import repro
from repro.analysis.export import (
    write_cdf_csv,
    write_job_records_csv,
    write_summaries_csv,
    write_utilization_csv,
)
from repro.analysis.utilization import analyze_utilization
from repro.validation import ClaimResult, ValidationReport


class TestValidationReport:
    def make(self, passes):
        return ValidationReport(
            results=[
                ClaimResult(
                    claim=f"claim-{i}", paper="x", measured="y", passed=ok
                )
                for i, ok in enumerate(passes)
            ]
        )

    def test_passed_aggregation(self):
        assert self.make([True, True]).passed
        assert not self.make([True, False]).passed

    def test_failures_list(self):
        report = self.make([True, False, False])
        assert len(report.failures) == 2

    def test_render_contains_verdict(self):
        good = self.make([True]).render()
        assert "ALL CLAIMS HOLD" in good
        bad = self.make([False]).render()
        assert "1 CLAIM(S) FAILED" in bad
        assert "!!" in bad


class TestValidatePaperClaims:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.validation import validate_paper_claims

        # tiny scale: we check the report's *structure*, not that every
        # claim holds at a scale far below the calibrated one.
        return validate_paper_claims(scale=0.06, year_horizon=15000.0)

    def test_all_claims_evaluated(self, report):
        assert len(report.results) == 10
        assert all(isinstance(r, ClaimResult) for r in report.results)

    def test_core_claims_hold_even_at_tiny_scale(self, report):
        by_claim = {r.claim: r for r in report.results}
        assert by_claim["suspensions long and right-skewed (Fig 2)"].passed
        assert by_claim["ResSusUtil cuts suspended jobs' AvgCT (T1)"].passed

    def test_render(self, report):
        text = report.render()
        assert "claim" in text
        assert "paper" in text


class TestExport:
    def test_summaries_csv_round_trips(self, tmp_path, smoke_result):
        path = tmp_path / "summary.csv"
        write_summaries_csv([repro.summarize(smoke_result)], path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert rows[0]["strategy"] == "NoRes"
        assert float(rows[0]["avg_ct_all"]) > 0

    def test_cdf_csv_monotone(self, tmp_path, smoke_result):
        path = tmp_path / "cdf.csv"
        write_cdf_csv(smoke_result, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        fractions = [float(r["cumulative_fraction"]) for r in rows]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_utilization_csv(self, tmp_path, smoke_result):
        path = tmp_path / "util.csv"
        write_utilization_csv(analyze_utilization(smoke_result), path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) > 10
        assert all(0.0 <= float(r["utilization_pct"]) <= 100.0 for r in rows)

    def test_job_records_csv_complete(self, tmp_path, smoke_result):
        path = tmp_path / "jobs.csv"
        write_job_records_csv(smoke_result, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(smoke_result.records)
        first = rows[0]
        assert "suspension_count" in first
        assert "pools_visited" in first


class TestCliValidateExport:
    def test_cli_export(self, tmp_path, capsys):
        from repro.cli import main

        outdir = tmp_path / "out"
        code = main(["export", str(outdir), "--scenario", "smoke"])
        assert code == 0
        assert (outdir / "job_records.csv").exists()
        assert (outdir / "summary.csv").exists()
        assert (outdir / "utilization.csv").exists()
