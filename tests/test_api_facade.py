"""Tests for the stable top-level facade (repro.simulate / run_experiment)."""

import pytest

import repro
from repro.errors import ConfigurationError, UnknownPolicyError
from repro.simulator.config import SimulationConfig
from repro.telemetry import Instrumentation, MetricsRegistry


class TestExports:
    def test_facade_in_all(self):
        assert "simulate" in repro.__all__
        assert "run_experiment" in repro.__all__
        assert "Instrumentation" in repro.__all__
        assert "MetricsRegistry" in repro.__all__

    def test_all_names_resolve(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert not missing


class TestSimulate:
    def test_default_policy_is_baseline(self, smoke_scenario):
        result = repro.simulate(smoke_scenario)
        reference = repro.run_simulation(
            smoke_scenario.trace,
            smoke_scenario.cluster,
            config=SimulationConfig(strict=False),
        )
        assert result.records == reference.records

    def test_policy_by_name_matches_instance(self, smoke_scenario):
        by_name = repro.simulate(smoke_scenario, "ResSusUtil")
        by_instance = repro.simulate(smoke_scenario, repro.res_sus_util())
        assert by_name.records == by_instance.records

    def test_unknown_policy_name_raises(self, smoke_scenario):
        with pytest.raises(UnknownPolicyError):
            repro.simulate(smoke_scenario, "NotAPolicy")

    def test_scheduler_by_name(self, smoke_scenario):
        result = repro.simulate(
            smoke_scenario, "ResSusUtil", initial_scheduler="utilization"
        )
        assert result.records

    def test_instrumentation_keyword(self, smoke_scenario):
        registry = MetricsRegistry()
        repro.simulate(
            smoke_scenario, instrumentation=Instrumentation(metrics=registry)
        )
        submits = registry.get("repro_sim_events_total").labels(event="submit")
        assert submits.value == len(smoke_scenario.trace)

    def test_rejects_instrumentation_in_both_places(self, smoke_scenario):
        instrumented = SimulationConfig(
            strict=False,
            instrumentation=Instrumentation(metrics=MetricsRegistry()),
        )
        with pytest.raises(ConfigurationError):
            repro.simulate(
                smoke_scenario,
                config=instrumented,
                instrumentation=Instrumentation(metrics=MetricsRegistry()),
            )


class TestRunExperiment:
    def test_single_scenario_and_names(self, smoke_scenario):
        cells = repro.run_experiment(smoke_scenario, ["NoRes", "ResSusUtil"])
        assert [c.policy_name for c in cells] == ["NoRes", "ResSusUtil"]
        assert all(c.scenario_name == smoke_scenario.name for c in cells)

    def test_matches_runner(self, smoke_scenario):
        direct = repro.ExperimentRunner().run(
            [smoke_scenario], [repro.no_res, repro.res_sus_util]
        )
        via_facade = repro.run_experiment(
            smoke_scenario, [repro.no_res, repro.res_sus_util]
        )
        assert [c.summary for c in direct] == [c.summary for c in via_facade]

    def test_run_grid_alias_warns_but_matches(self, smoke_scenario):
        import warnings

        runner = repro.ExperimentRunner()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = runner.run_grid([smoke_scenario], [repro.no_res])
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        modern = repro.ExperimentRunner().run([smoke_scenario], [repro.no_res])
        assert [c.summary for c in legacy] == [c.summary for c in modern]

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.run_experiment([], ["NoRes"])

    def test_name_factories_use_scenario_wait_threshold(self, smoke_scenario):
        cells = repro.run_experiment(smoke_scenario, ["ResSusWaitUtil"])
        reference = repro.simulate(
            smoke_scenario,
            repro.res_sus_wait_util(wait_threshold=smoke_scenario.wait_threshold),
        )
        # same policy parameterisation => same summary-level outcome
        assert cells[0].summary.avg_ct_all == pytest.approx(
            repro.summarize(reference).avg_ct_all
        )
