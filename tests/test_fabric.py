"""Tests for the distributed experiment fabric.

The load-bearing guarantees:

* a fabric run is bit-identical to a serial run — same per-cell
  summaries, same derived seeds — whatever the backend or worker count;
* two workers racing one grid compute each cell exactly once (lease
  contention), and a worker that dies mid-cell is taken over after the
  TTL (stale-lease takeover);
* an interrupted run resumes through the grid checkpoint;
* provenance is attributed correctly: cache_hit on pre-scan,
  computed for own-run work, claimed_elsewhere for cells another run
  published while we ran;
* static sharding partitions a grid disjointly and completely.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from types import SimpleNamespace

import pytest

import repro
from repro.errors import ConfigurationError, ReproError
from repro.experiments.cache import ResultCache, stable_hash
from repro.experiments.checkpoint import GridCheckpoint
from repro.experiments.parallel import (
    PROVENANCE_CACHE_HIT,
    PROVENANCE_CHECKPOINT,
    PROVENANCE_CLAIMED_ELSEWHERE,
    PROVENANCE_COMPUTED,
    make_cell_task,
    run_grid_parallel,
)
from repro.fabric import (
    LocalPoolBackend,
    SSHBackend,
    SubprocessWorkerBackend,
    backend_from_spec,
    build_grid,
    run_grid_fabric,
    run_worker,
    shard_tasks,
)
from repro.fabric.backends import BackendError
from repro.fabric.lease import LeaseStore
from repro.fabric import worker as worker_mod
from repro.simulator.config import SimulationConfig

FAST = SimulationConfig(strict=False, record_samples=False)


def small_grid(smoke_scenario, n_policies=2):
    factories = [repro.no_res, repro.res_sus_util, repro.res_sus_wait_util]
    return [
        make_cell_task(
            index=i,
            scenario=smoke_scenario,
            policy=factories[i](),
            scheduler=None,
            config=FAST,
        )
        for i in range(n_policies)
    ]


def digests(report):
    return [stable_hash(o.summary) for o in report.completed]


class TestShardTasks:
    def test_shards_partition_the_grid(self, smoke_scenario):
        tasks = build_grid("smoke")
        shards = [shard_tasks(tasks, k, 3) for k in range(3)]
        seen = sorted(t.index for shard in shards for t in shard)
        assert seen == [t.index for t in tasks]
        assert all(
            t.index % 3 == k for k, shard in enumerate(shards) for t in shard
        )

    def test_bad_shard_arguments(self, smoke_scenario):
        tasks = small_grid(smoke_scenario)
        with pytest.raises(ConfigurationError):
            shard_tasks(tasks, 0, 0)
        with pytest.raises(ConfigurationError):
            shard_tasks(tasks, 3, 3)
        with pytest.raises(ConfigurationError):
            shard_tasks(tasks, -1, 3)

    def test_sharded_union_matches_serial(self, smoke_scenario, tmp_path):
        tasks = small_grid(smoke_scenario, n_policies=3)
        serial = run_grid_parallel(tasks, n_workers=1)
        shard_outcomes = {}
        for k in range(2):
            cache = ResultCache(tmp_path / f"shard{k}")
            report = run_grid_parallel(
                shard_tasks(tasks, k, 2), n_workers=1, cache=cache
            )
            for o in report.completed:
                shard_outcomes[o.index] = o
        assert len(shard_outcomes) == len(tasks)
        for o in serial.completed:
            assert stable_hash(shard_outcomes[o.index].summary) == stable_hash(
                o.summary
            )


class TestBackendSpecs:
    def test_local_specs(self):
        assert backend_from_spec("local").n_workers == 1
        assert backend_from_spec("local:4").n_workers == 4
        assert backend_from_spec("subprocess").n_workers == 2
        assert backend_from_spec("subprocess:8").n_workers == 8

    def test_ssh_spec(self):
        backend = backend_from_spec("ssh:alpha,beta")
        assert backend.hosts == ("alpha", "beta")

    def test_bad_specs(self):
        with pytest.raises(ReproError):
            backend_from_spec("mesos:4")
        with pytest.raises(ReproError):
            backend_from_spec("local:banana")
        with pytest.raises(ReproError):
            backend_from_spec("ssh:")

    def test_ssh_backend_plans_but_refuses_to_run(self, smoke_scenario, tmp_path):
        tasks = small_grid(smoke_scenario)
        backend = SSHBackend(["alpha", "beta"])
        plan = backend.plan(tasks, tmp_path, "run-1")
        assert len(plan) == 2
        assert "repro.fabric._worker_main" in plan[0]
        assert "ssh alpha" in plan[0]
        with pytest.raises(BackendError):
            backend.run(tasks, tmp_path, "run-1")


class TestWorkerLoop:
    def test_single_worker_computes_everything(self, smoke_scenario, tmp_path):
        tasks = small_grid(smoke_scenario)
        cache = ResultCache(tmp_path)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w0")
        stats = run_worker(tasks, cache, leases)
        assert stats.computed == len(tasks)
        assert stats.published == len(tasks)
        assert stats.failed == 0
        assert all(cache.peek(t.cache_key) is not None for t in tasks)

    def test_two_workers_race_one_cell_exactly_one_computes(
        self, smoke_scenario, tmp_path
    ):
        tasks = small_grid(smoke_scenario, n_policies=1)
        assert len(tasks) == 1
        cache_a = ResultCache(tmp_path)
        cache_b = ResultCache(tmp_path)
        la = LeaseStore(tmp_path, run_id="r", worker_id="a", ttl_seconds=30)
        lb = LeaseStore(tmp_path, run_id="r", worker_id="b", ttl_seconds=30)
        results = {}
        barrier = threading.Barrier(2)

        def drive(name, cache, leases):
            barrier.wait()
            results[name] = run_worker(tasks, cache, leases)

        threads = [
            threading.Thread(target=drive, args=("a", cache_a, la)),
            threading.Thread(target=drive, args=("b", cache_b, lb)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        computed = results["a"].computed + results["b"].computed
        assert computed == 1
        # whoever lost still observed the published result
        assert results["a"].skipped + results["b"].skipped >= 1
        serial = run_grid_parallel(tasks, n_workers=1)
        entry = cache_a.peek(tasks[0].cache_key)
        assert stable_hash(entry["summary"]) == stable_hash(
            serial.completed[0].summary
        )

    def test_stale_lease_takeover_after_host_death(
        self, smoke_scenario, tmp_path
    ):
        tasks = small_grid(smoke_scenario, n_policies=1)
        key = tasks[0].cache_key
        # "host death": a worker claims the cell and never heartbeats
        dead = LeaseStore(tmp_path, run_id="r", worker_id="dead", ttl_seconds=0.05)
        assert dead.claim(key)
        time.sleep(0.1)
        cache = ResultCache(tmp_path)
        survivor = LeaseStore(
            tmp_path, run_id="r", worker_id="live", ttl_seconds=0.05
        )
        stats = run_worker(tasks, cache, survivor, poll_interval=0.01)
        assert stats.computed == 1
        assert stats.stolen == 1
        assert cache.peek(key) is not None

    def test_poisoned_cell_does_not_kill_worker(self, smoke_scenario, tmp_path, monkeypatch):
        tasks = small_grid(smoke_scenario, n_policies=2)
        bad_key = tasks[0].cache_key
        real = worker_mod._simulate_task

        def sim(task):
            if task.cache_key == bad_key:
                raise RuntimeError("poisoned")
            return real(task)

        monkeypatch.setattr(worker_mod, "_simulate_task", sim)
        cache = ResultCache(tmp_path)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        stats = run_worker(tasks, cache, leases, poll_interval=0.01)
        assert stats.failed == 1
        assert stats.computed == len(tasks) - 1
        assert cache.peek(bad_key) is None
        # the failed cell's lease was released for peers to retry
        assert leases.read(bad_key) is None

    def test_cell_floor_pads_wall_seconds(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            worker_mod,
            "_simulate_task",
            lambda task: (task.index, {"stub": task.index}, None, 0.001),
        )
        tasks = [
            SimpleNamespace(index=i, cache_key=f"{i:02d}" + "0" * 62, keep_result=False)
            for i in range(3)
        ]
        slept = []
        cache = ResultCache(tmp_path)
        leases = LeaseStore(tmp_path, run_id="r", worker_id="w")
        stats = run_worker(
            tasks, cache, leases, cell_floor=0.5, sleep=slept.append
        )
        assert stats.computed == 3
        assert all(
            cache.peek(t.cache_key)["wall_seconds"] == 0.5 for t in tasks
        )
        assert len(slept) == 3 and all(s > 0.4 for s in slept)


class TestRunGridFabric:
    def test_local_backend_matches_serial(self, smoke_scenario, tmp_path):
        tasks = small_grid(smoke_scenario, n_policies=3)
        serial = run_grid_parallel(tasks, n_workers=1)
        fab = run_grid_fabric(
            tasks, LocalPoolBackend(1), ResultCache(tmp_path)
        )
        assert digests(fab) == digests(serial)
        assert [o.seed for o in fab.completed] == [
            o.seed for o in serial.completed
        ]
        assert fab.provenance_counts() == {PROVENANCE_COMPUTED: 3}

    def test_warm_cache_rerun_hits_everything(self, smoke_scenario, tmp_path):
        tasks = small_grid(smoke_scenario)
        cache = ResultCache(tmp_path)
        run_grid_fabric(tasks, LocalPoolBackend(1), cache)
        rerun = run_grid_fabric(tasks, LocalPoolBackend(1), cache)
        assert rerun.provenance_counts() == {PROVENANCE_CACHE_HIT: len(tasks)}

    def test_checkpoint_resume_interop_for_interrupted_sharded_run(
        self, smoke_scenario, tmp_path
    ):
        tasks = small_grid(smoke_scenario, n_policies=3)
        checkpoint = GridCheckpoint(tmp_path / "grid.ckpt")
        # the "interrupted" run completed only shard 0 before dying
        run_grid_fabric(
            shard_tasks(tasks, 0, 2),
            LocalPoolBackend(1),
            ResultCache(tmp_path / "cache-a"),
            checkpoint=checkpoint,
        )
        # the resumed run has a fresh (empty) cache but the checkpoint
        resumed = run_grid_fabric(
            tasks,
            LocalPoolBackend(1),
            ResultCache(tmp_path / "cache-b"),
            checkpoint=checkpoint,
        )
        counts = resumed.provenance_counts()
        assert counts[PROVENANCE_CHECKPOINT] == len(shard_tasks(tasks, 0, 2))
        assert counts[PROVENANCE_COMPUTED] == len(tasks) - counts[
            PROVENANCE_CHECKPOINT
        ]
        serial = run_grid_parallel(tasks, n_workers=1)
        assert digests(resumed) == digests(serial)

    def test_claimed_elsewhere_attribution(self, smoke_scenario, tmp_path):
        tasks = small_grid(smoke_scenario, n_policies=2)

        @dataclass
        class ForeignRunBackend:
            """Publishes every cell as if another run's worker did."""

            name: str = "foreign"

            def run(self, run_tasks, cache_dir, run_id, lease_ttl=60.0):
                cache = ResultCache(cache_dir)
                leases = LeaseStore(
                    cache_dir, run_id="someone-else", worker_id="remote-w0"
                )
                run_worker(run_tasks, cache, leases)

        report = run_grid_fabric(
            tasks, ForeignRunBackend(), ResultCache(tmp_path), run_id="mine"
        )
        assert report.provenance_counts() == {
            PROVENANCE_CLAIMED_ELSEWHERE: len(tasks)
        }
        serial = run_grid_parallel(tasks, n_workers=1)
        assert digests(report) == digests(serial)

    def test_keep_going_surfaces_poisoned_cell_as_failure(
        self, smoke_scenario, tmp_path, monkeypatch
    ):
        tasks = small_grid(smoke_scenario, n_policies=2)
        bad_key = tasks[0].cache_key
        real = worker_mod._simulate_task

        def sim(task):
            if task.cache_key == bad_key:
                raise RuntimeError("deterministic boom")
            return real(task)

        # Poison both the worker path and the coordinator's serial
        # retry path so the cell fails everywhere.
        monkeypatch.setattr(worker_mod, "_simulate_task", sim)
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_simulate_task", sim)

        @dataclass
        class InProcessWorkerBackend:
            name: str = "inproc"

            def run(self, run_tasks, cache_dir, run_id, lease_ttl=60.0):
                cache = ResultCache(cache_dir)
                leases = LeaseStore(
                    cache_dir, run_id=run_id, worker_id=f"{run_id}-w0"
                )
                run_worker(run_tasks, cache, leases, poll_interval=0.01)

        report = run_grid_fabric(
            tasks,
            InProcessWorkerBackend(),
            ResultCache(tmp_path),
            keep_going=True,
        )
        assert not report.ok
        assert len(report.failures) == 1
        assert report.failures[0].message == "deterministic boom"
        assert len(report.completed) == len(tasks) - 1

    def test_registry_gauges_recorded(self, smoke_scenario, tmp_path):
        from repro.telemetry import MetricsRegistry, to_prometheus

        tasks = small_grid(smoke_scenario)
        registry = MetricsRegistry()
        run_grid_fabric(
            tasks, LocalPoolBackend(1), ResultCache(tmp_path), registry=registry
        )
        text = to_prometheus(registry)
        assert 'repro_fabric_cells{backend="local:1",state="computed"}' in text


@pytest.mark.slow
class TestSubprocessBackend:
    def test_two_worker_fleet_matches_serial(self, smoke_scenario, tmp_path):
        tasks = build_grid("smoke", seed=2024)
        serial = run_grid_parallel(tasks, n_workers=1)
        report = run_grid_fabric(
            build_grid("smoke", seed=2024),
            SubprocessWorkerBackend(2, poll_interval=0.05),
            ResultCache(tmp_path),
            lease_ttl=20.0,
            poll_interval=0.05,
        )
        assert digests(report) == digests(serial)
        assert report.ok
        totals = dict(report.worker_totals)
        assert totals["computed"] == len(tasks)
        assert totals["failed"] == 0
