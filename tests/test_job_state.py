"""Unit tests for the Job state machine and its accounting."""

import pytest

from repro.errors import JobStateError
from repro.simulator.job import Job, JobState
from repro.simulator.machine import Machine

from conftest import make_job, make_machine


def running_job(runtime=10.0, speed=1.0, start=0.0):
    machine = Machine(make_machine(speed_factor=speed))
    job = Job(make_job(1, submit=0.0, runtime=runtime))
    job.start(machine, "p0", start)
    return job, machine


class TestLifecycle:
    def test_initial_state(self):
        job = Job(make_job(1, submit=5.0))
        assert job.state is JobState.PENDING
        assert job.segment_start == 5.0
        assert job.remaining_minutes() == 10.0

    def test_straight_run_accounting(self):
        job, machine = running_job(runtime=10.0)
        job.finish(10.0)
        assert job.state is JobState.FINISHED
        assert job.completion_time() == 10.0
        assert job.total_wait == 0.0
        assert job.total_suspend == 0.0
        assert job.wasted_completion_time() == 0.0

    def test_wait_then_run(self):
        job = Job(make_job(1, submit=0.0, runtime=10.0))
        job.enqueue("p0", 0.0)
        assert job.state is JobState.WAITING
        machine = Machine(make_machine())
        job.start(machine, "p0", 7.0)
        assert job.total_wait == 7.0
        job.finish(17.0)
        assert job.wasted_completion_time() == 7.0

    def test_suspend_resume_accounting(self):
        job, machine = running_job(runtime=10.0)
        job.suspend(4.0)
        assert job.state is JobState.SUSPENDED
        assert job.progress == 4.0
        assert job.suspension_count == 1
        job.resume(9.0)
        assert job.total_suspend == 5.0
        assert job.remaining_minutes() == 6.0
        job.finish(15.0)
        assert job.completion_time() == 15.0
        assert job.was_suspended()

    def test_speed_factor_scales_progress(self):
        job, machine = running_job(runtime=12.0, speed=2.0)
        job.suspend(3.0)
        assert job.progress == 6.0
        assert job.remaining_minutes() == 6.0

    def test_abandon_discards_progress(self):
        job, machine = running_job(runtime=10.0)
        job.suspend(4.0)
        job.abandon(6.0)
        assert job.state is JobState.PENDING
        assert job.progress == 0.0
        assert job.wasted_restart == 4.0
        assert job.total_suspend == 2.0
        assert job.restart_count == 1
        assert job.machine is None
        assert job.pool_id is None

    def test_abandon_from_running(self):
        job, machine = running_job(runtime=10.0)
        job.abandon(3.0)
        assert job.wasted_restart == 3.0
        assert job.state is JobState.PENDING

    def test_dequeue_counts_wait_and_move(self):
        job = Job(make_job(1))
        job.enqueue("p0", 0.0)
        job.dequeue(12.0)
        assert job.total_wait == 12.0
        assert job.waiting_move_count == 1
        assert job.state is JobState.PENDING

    def test_epoch_bumps_on_every_transition(self):
        job = Job(make_job(1, runtime=10.0))
        machine = Machine(make_machine())
        epochs = [job.epoch]
        job.start(machine, "p0", 0.0)
        epochs.append(job.epoch)
        job.suspend(1.0)
        epochs.append(job.epoch)
        job.resume(2.0)
        epochs.append(job.epoch)
        job.finish(11.0)
        epochs.append(job.epoch)
        assert epochs == sorted(set(epochs))

    def test_wait_episode_bumps(self):
        job = Job(make_job(1))
        job.enqueue("p0", 0.0)
        first = job.wait_episode
        job.dequeue(1.0)
        job.enqueue("p1", 1.0)
        assert job.wait_episode > first

    def test_pools_visited_deduplicated(self):
        job = Job(make_job(1, runtime=100.0))
        m = Machine(make_machine())
        job.start(m, "p0", 0.0)
        job.suspend(1.0)
        job.abandon(2.0)
        m2 = Machine(make_machine("p1/m0", "p1"))
        job.start(m2, "p1", 2.0)
        assert job.pools_visited == ["p0", "p1"]

    def test_reject(self):
        job = Job(make_job(1))
        job.reject(0.0)
        assert job.state is JobState.REJECTED
        assert job.completion_time() is None

    def test_cancel_from_each_state(self):
        # waiting
        job = Job(make_job(1))
        job.enqueue("p0", 0.0)
        job.cancel(5.0)
        assert job.state is JobState.FINISHED
        assert job.total_wait == 5.0
        # running
        job2, _ = running_job(runtime=10.0)
        job2.cancel(4.0)
        assert job2.wasted_restart == 4.0
        # suspended
        job3, _ = running_job(runtime=10.0)
        job3.suspend(2.0)
        job3.cancel(6.0)
        assert job3.total_suspend == 4.0
        assert job3.wasted_restart == 2.0


class TestIllegalTransitions:
    def test_cannot_finish_from_pending(self):
        job = Job(make_job(1))
        with pytest.raises(JobStateError):
            job.finish(1.0)

    def test_cannot_suspend_waiting_job(self):
        job = Job(make_job(1))
        job.enqueue("p0", 0.0)
        with pytest.raises(JobStateError):
            job.suspend(1.0)

    def test_cannot_resume_running_job(self):
        job, _ = running_job()
        with pytest.raises(JobStateError):
            job.resume(1.0)

    def test_cannot_start_running_job(self):
        job, machine = running_job()
        with pytest.raises(JobStateError):
            job.start(machine, "p0", 1.0)

    def test_cannot_enqueue_twice(self):
        job = Job(make_job(1))
        job.enqueue("p0", 0.0)
        with pytest.raises(JobStateError):
            job.enqueue("p1", 1.0)

    def test_error_carries_context(self):
        job = Job(make_job(42))
        try:
            job.finish(0.0)
        except JobStateError as exc:
            assert exc.job_id == 42
            assert exc.current == "pending"
            assert exc.attempted == "finish"
