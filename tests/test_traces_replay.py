"""TraceReplaySpec: projection knobs, ownership mapping, digests."""

from __future__ import annotations

import dataclasses
import io

import pytest

from repro.errors import TraceError
from repro.workload.trace import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_MEDIUM
from repro.workload.traces import (
    TraceReplaySpec,
    default_replay_spec,
    generate_swf_fixture,
    scenario_from_trace,
    trace_digest,
)
from repro.workload.traces.swf import SWFJob, write_swf


def _swf_source(jobs):
    buffer = io.StringIO()
    write_swf(buffer, jobs)
    return io.StringIO(buffer.getvalue())


def _job(number, submit_s, run_s=600, queue=0, user=0, cores=1, mem_kb=1_000_000,
         status=1):
    return SWFJob(
        job_number=number, submit_time=submit_s, wait_time=-1, run_time=run_s,
        allocated_procs=cores, avg_cpu_time=-1, used_memory_kb=mem_kb,
        requested_procs=cores, requested_time=run_s, requested_memory_kb=mem_kb,
        status=status, user_id=user, group_id=0, executable=1, queue=queue,
        partition=1, preceding_job=-1, think_time=-1,
    )


class TestProjection:
    def test_window_rebase_and_sequential_ids(self):
        jobs = [_job(1, 0), _job(2, 6000), _job(3, 12000), _job(4, 60000)]
        spec = TraceReplaySpec(window_start_minutes=90, window_end_minutes=500)
        out = list(spec.replay_swf(_swf_source(jobs)))
        # jobs 2 (100 min) and 3 (200 min) are inside; first kept job
        # rebases to minute 0, ids restart from 0.
        assert [j.job_id for j in out] == [0, 1]
        assert [j.submit_minute for j in out] == [0.0, 100.0]

    def test_window_end_stops_reading_sorted_source(self):
        jobs = [_job(1, 0), _job(2, 600_000)]
        spec = TraceReplaySpec(window_end_minutes=10.0)
        out = list(spec.replay_swf(_swf_source(jobs)))
        assert len(out) == 1

    def test_stride_and_max_jobs(self):
        jobs = [_job(i, i * 60) for i in range(1, 11)]
        spec = TraceReplaySpec(stride=3, max_jobs=2, rebase=False)
        out = list(spec.replay_swf(_swf_source(jobs)))
        # Sources submit at minutes 1..10; stride keeps indices 0 and 3.
        assert [j.submit_minute for j in out] == [1.0, 4.0]

    def test_queue_priority_mapping(self):
        jobs = [_job(1, 0, queue=0), _job(2, 60, queue=1), _job(3, 120, queue=2)]
        spec = TraceReplaySpec(
            queue_priorities=((1, PRIORITY_MEDIUM), (2, PRIORITY_HIGH))
        )
        out = list(spec.replay_swf(_swf_source(jobs)))
        assert [j.priority for j in out] == [
            PRIORITY_LOW, PRIORITY_MEDIUM, PRIORITY_HIGH,
        ]

    def test_status_filter_and_zero_runtime_skipped(self):
        jobs = [_job(1, 0, status=1), _job(2, 60, status=0), _job(3, 120, run_s=0)]
        spec = TraceReplaySpec(swf_statuses=(1,))
        out = list(spec.replay_swf(_swf_source(jobs)))
        assert len(out) == 1

    def test_ownership_is_stable_and_high_priority_pins(self):
        groups = (("p0", "p1"), ("p2",), ("p3", "p4"))
        spec = TraceReplaySpec(
            group_pool_sets=groups,
            high_priority_pools=("big0", "big1"),
            queue_priorities=((2, PRIORITY_HIGH),),
        )
        jobs = [_job(1, 0, user=7), _job(2, 60, user=7), _job(3, 120, user=7, queue=2)]
        out = list(spec.replay_swf(_swf_source(jobs)))
        # Same user -> same group set, deterministically.
        assert out[0].candidate_pools == out[1].candidate_pools
        assert out[0].candidate_pools in groups
        # HIGH priority overrides the group set.
        assert out[2].candidate_pools == ("big0", "big1")

    def test_memory_is_quantized_to_a_bounded_signature_set(self):
        # Near-unique per-job byte counts must collapse onto the quantum
        # grid, otherwise the simulator's signature-keyed caches grow
        # linearly with the trace (the constant-memory guarantee).
        jobs = [_job(i, i * 60, mem_kb=1_000_000 + i * 13) for i in range(1, 201)]
        spec = TraceReplaySpec(memory_quantum_gb=0.25)
        out = list(spec.replay_swf(_swf_source(jobs)))
        memories = {j.memory_gb for j in out}
        assert len(memories) <= 2  # all ~0.95 GB -> 1.0 GB bucket
        for m in memories:
            assert m / 0.25 == pytest.approx(round(m / 0.25))

    def test_memory_quantum_zero_disables_quantization(self):
        jobs = [_job(i, i * 60, mem_kb=1_000_000 + i) for i in range(1, 21)]
        spec = TraceReplaySpec(memory_quantum_gb=0.0)
        out = list(spec.replay_swf(_swf_source(jobs)))
        assert len({j.memory_gb for j in out}) == 20

    def test_validation_errors(self):
        with pytest.raises(TraceError):
            TraceReplaySpec(stride=0)
        with pytest.raises(TraceError):
            TraceReplaySpec(window_start_minutes=10, window_end_minutes=5)
        with pytest.raises(TraceError):
            TraceReplaySpec(memory_quantum_gb=-1.0)
        with pytest.raises(TraceError):
            TraceReplaySpec(high_priority_pools=())

    def test_unknown_format_rejected(self):
        with pytest.raises(TraceError, match="unknown trace format"):
            TraceReplaySpec().replay(io.StringIO(""), "xml")


class TestDigest:
    def test_digest_depends_on_bytes_spec_and_format(self, tmp_path):
        a = tmp_path / "a.swf"
        generate_swf_fixture(a, 50, seed=1)
        spec = TraceReplaySpec()
        base = trace_digest(a, spec, "swf")
        assert base == trace_digest(a, spec, "swf")
        assert base != trace_digest(a, spec, "google")
        assert base != trace_digest(a, TraceReplaySpec(stride=2), "swf")
        b = tmp_path / "b.swf"
        generate_swf_fixture(b, 50, seed=2)
        assert base != trace_digest(b, spec, "swf")

    def test_scenario_from_trace_carries_digest(self, tmp_path):
        import repro

        path = tmp_path / "t.swf"
        generate_swf_fixture(path, 80, seed=4)
        template = repro.ClusterTemplate(scale=0.05)
        cluster = template.build(repro.RandomStreams(2010))
        spec = default_replay_spec(template)
        scenario = scenario_from_trace("replay", path, cluster, spec, "swf")
        assert scenario.trace_digest == trace_digest(path, spec, "swf")
        assert len(scenario.trace.jobs) > 0
        # Spec stays JSON-able (the digest canonicalisation requires it).
        assert dataclasses.asdict(spec)["memory_quantum_gb"] == 0.25
