"""BENCH_ingest.json machinery: serialization and the regression gate."""

from __future__ import annotations

import pytest

from repro import benchtrack
from repro.benchtrack import BenchFormatError


def _record(label="abc", calibration=1000.0, jps=8000.0, rss=40.0, name="swf_100k"):
    spec = benchtrack.IngestSpec(name=name)
    return benchtrack.IngestRecord(
        schema_version=benchtrack.SCHEMA_VERSION,
        label=label,
        recorded_at="2026-08-09T00:00:00+00:00",
        calibration_score=calibration,
        ingests=(
            benchtrack.IngestResult(
                spec=spec,
                jobs=spec.jobs,
                wall_seconds=spec.jobs / jps,
                jobs_per_second=jps,
                peak_rss_mb=rss,
            ),
        ),
    )


class TestSerialization:
    def test_record_round_trips_through_json_dict(self):
        record = _record()
        data = benchtrack.ingest_record_to_dict(record)
        assert benchtrack.ingest_record_from_dict(data) == record

    def test_write_and_load_history(self, tmp_path):
        path = str(tmp_path / "BENCH_ingest.json")
        assert benchtrack.write_ingest_record(path, _record(label="r1")) == 1
        assert benchtrack.write_ingest_record(path, _record(label="r2")) == 2
        history = benchtrack.load_ingest_history(path)
        assert [r.label for r in history] == ["r1", "r2"]

    def test_overwrite_starts_fresh(self, tmp_path):
        path = str(tmp_path / "BENCH_ingest.json")
        benchtrack.write_ingest_record(path, _record(label="r1"))
        assert benchtrack.write_ingest_record(
            path, _record(label="r2"), append=False
        ) == 1
        assert [r.label for r in benchtrack.load_ingest_history(path)] == ["r2"]

    def test_missing_history_is_empty(self, tmp_path):
        assert benchtrack.load_ingest_history(str(tmp_path / "none.json")) == []


class TestRegressionGate:
    def test_equal_records_pass(self):
        assert benchtrack.check_ingest_regression(_record(), _record()) == []

    def test_throughput_is_calibration_normalised(self):
        # Half the throughput on a half-speed machine is not a regression.
        slow = _record(calibration=500.0, jps=4000.0)
        assert benchtrack.check_ingest_regression(_record(), slow) == []

    def test_throughput_drop_fails(self):
        current = _record(jps=5000.0)  # 37.5% normalised drop
        failures = benchtrack.check_ingest_regression(_record(), current)
        assert len(failures) == 1
        assert "throughput dropped" in failures[0]

    def test_rss_growth_fails(self):
        current = _record(rss=90.0)  # limit = 40 * 1.25 + 16 = 66 MB
        failures = benchtrack.check_ingest_regression(_record(), current)
        assert len(failures) == 1
        assert "RSS grew" in failures[0]

    def test_rss_slack_allows_noise(self):
        current = _record(rss=60.0)
        assert benchtrack.check_ingest_regression(_record(), current) == []

    def test_unmatched_or_changed_spec_is_skipped(self):
        renamed = _record(name="other_cell", jps=1.0, rss=9999.0)
        assert benchtrack.check_ingest_regression(_record(), renamed) == []

    def test_bad_calibration_raises(self):
        broken = _record(calibration=0.0)
        with pytest.raises(BenchFormatError):
            benchtrack.check_ingest_regression(_record(), broken)


class TestCommittedTrajectory:
    def test_repo_trajectory_parses_and_matches_the_ci_fixture(self):
        import os

        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_ingest.json",
        )
        history = benchtrack.load_ingest_history(path)
        assert history, "BENCH_ingest.json must ship at least one record"
        latest = history[-1]
        names = {r.spec.name for r in latest.ingests}
        assert {"swf_100k", "google_30k"} <= names
        for result in latest.ingests:
            assert result.jobs_per_second > 0
            assert result.peak_rss_mb > 0
