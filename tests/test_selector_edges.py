"""Edge-case coverage for selectors and views not hit elsewhere."""

import subprocess
import sys


from repro.core.context import PoolSnapshot, StaticSystemView
from repro.core.selectors import (
    LowestUtilizationSelector,
    PredictedWaitSelector,
    ShortestQueueSelector,
    WeightedSelector,
)
from repro.sites import LocalFirstSelector, SiteSpec, SiteTopology, TransferAwareSelector

from conftest import make_pool


def snap(pool_id, busy, total=10, waiting=0, suspended=0):
    return PoolSnapshot(pool_id, total, busy, waiting, suspended)


def view(*snapshots):
    return StaticSystemView(now=0.0, snapshots=list(snapshots))


class TestUnplacedJobSelection:
    """current_pool=None: selection for a job not yet placed anywhere."""

    def test_lowest_utilization_picks_globally(self):
        v = view(snap("a", 9), snap("b", 1))
        assert LowestUtilizationSelector().select(("a", "b"), None, v) == "b"

    def test_shortest_queue_unguarded_by_current(self):
        v = view(snap("a", 0, waiting=9), snap("b", 0, waiting=1))
        assert ShortestQueueSelector().select(("a", "b"), None, v) == "b"

    def test_weighted_without_current(self):
        v = view(snap("a", 9, waiting=5), snap("b", 1))
        assert WeightedSelector().select(("a", "b"), None, v) == "b"

    def test_predicted_without_current(self):
        v = view(snap("a", 10, waiting=9), snap("b", 1))
        assert PredictedWaitSelector().select(("a", "b"), None, v) == "b"

    def test_transfer_aware_without_current(self):
        topo = SiteTopology(
            [
                SiteSpec("A", (make_pool("A/p0", 1),)),
                SiteSpec("B", (make_pool("B/p0", 1),)),
            ],
            transfer_minutes=100.0,
        )
        v = view(snap("A/p0", 10, waiting=9), snap("B/p0", 0))
        # with no current pool there is no transfer to pay and no guard
        selector = TransferAwareSelector(topo, mean_runtime=100.0)
        assert selector.select(("A/p0", "B/p0"), None, v) == "B/p0"

    def test_local_first_without_current_delegates(self):
        topo = SiteTopology(
            [
                SiteSpec("A", (make_pool("A/p0", 1),)),
                SiteSpec("B", (make_pool("B/p0", 1),)),
            ]
        )
        v = view(snap("A/p0", 9), snap("B/p0", 1))
        selector = LocalFirstSelector(topo)
        assert selector.select(("A/p0", "B/p0"), None, v) == "B/p0"


class TestEmptyCandidates:
    def test_every_selector_handles_empty(self):
        v = view(snap("a", 1))
        for selector in (
            LowestUtilizationSelector(),
            ShortestQueueSelector(),
            WeightedSelector(),
            PredictedWaitSelector(),
        ):
            assert selector.select((), "a", v) is None
            assert selector.select(("a",), "a", v) is None


class TestMainEntryPoint:
    def test_python_dash_m_repro(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", "--scenario", "smoke"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0
        assert "SuspRate" in completed.stdout

    def test_python_dash_m_repro_bad_args(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "table", "99"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode != 0
