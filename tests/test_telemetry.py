"""Tests for the telemetry subsystem (registry, hooks, exporters, progress)."""

import io
import json

import pytest

import repro
from repro.errors import ConfigurationError, ReproError
from repro.simulator.config import SimulationConfig
from repro.simulator.observer import EventLog
from repro.telemetry import (
    CELLS_FILENAME,
    DEFAULT_DURATION_BUCKETS,
    Instrumentation,
    MetricsRegistry,
    NO_INSTRUMENTATION,
    ProgressReporter,
    load_telemetry_dir,
    parse_prometheus,
    read_cells_jsonl,
    read_jsonl_snapshot,
    render_stats,
    to_prometheus,
    write_cells_jsonl,
    write_telemetry_dir,
)

from conftest import make_cluster, make_job, make_trace


def run_smoke(scenario, instrumentation=None):
    return repro.simulate(scenario, "ResSusUtil", instrumentation=instrumentation)


class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        counter = reg.counter("events_total", "events", labelnames=("event",))
        counter.labels(event="submit").inc()
        counter.labels(event="submit").inc()
        counter.labels(event="finish").inc()
        gauge = reg.gauge("depth", "queue depth")
        gauge.set(4.0)
        hist = reg.histogram("wait_minutes", "wait times", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        assert counter.labels(event="submit").value == 2
        assert counter.labels(event="finish").value == 1
        assert gauge.value == 4.0
        series = hist.labels()
        assert series.count == 3
        assert series.sum == pytest.approx(105.5)
        # +Inf overflow slot catches the out-of-range observation
        assert series.cumulative()[-1] == (float("inf"), 3)

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", "a counter")
        with pytest.raises(ConfigurationError):
            reg.gauge("x", "now a gauge")

    def test_create_is_idempotent(self):
        reg = MetricsRegistry()
        first = reg.counter("x", "a counter")
        assert reg.counter("x", "a counter") is first


class TestInstrumentation:
    def test_default_is_disabled(self):
        assert not NO_INSTRUMENTATION.enabled
        assert not Instrumentation().enabled

    def test_enabled_variants(self):
        assert Instrumentation(metrics=MetricsRegistry()).enabled
        assert Instrumentation(observers=(EventLog(),)).enabled
        assert Instrumentation(profile=True).enabled

    def test_rejects_non_observer(self):
        with pytest.raises(ConfigurationError):
            Instrumentation(observers=(object(),))


class TestDeterminism:
    def test_result_identical_with_and_without_telemetry(self, smoke_scenario):
        plain = run_smoke(smoke_scenario)
        reg = MetricsRegistry()
        observed = run_smoke(
            smoke_scenario,
            Instrumentation(
                observers=(EventLog(),), metrics=reg, profile=True
            ),
        )
        assert plain.records == observed.records
        assert plain.samples == observed.samples
        # and the registry actually saw the run
        events = reg.get("repro_sim_events_total")
        assert events.labels(event="submit").value == len(smoke_scenario.trace)

    def test_serial_and_parallel_results_match_with_progress(self, smoke_scenario):
        sink = io.StringIO()
        serial = repro.run_experiment(
            smoke_scenario, ["NoRes", "ResSusUtil"], n_workers=1
        )
        parallel = repro.run_experiment(
            smoke_scenario,
            ["NoRes", "ResSusUtil"],
            n_workers=2,
            progress=ProgressReporter(stream=sink),
        )
        assert [c.summary for c in serial] == [c.summary for c in parallel]
        assert "2/2 cells" in sink.getvalue()


class TestEngineMetrics:
    def test_wait_histogram_counts_queue_episodes(self):
        from repro.workload.cluster import ClusterSpec

        from conftest import make_pool

        cluster = ClusterSpec([make_pool("p0", 1, cores=1)])
        jobs = [
            make_job(0, runtime=10.0),
            make_job(1, submit=1.0, runtime=5.0),
        ]
        reg = MetricsRegistry()
        repro.run_simulation(
            make_trace(jobs),
            cluster,
            config=SimulationConfig(
                strict=False, instrumentation=Instrumentation(metrics=reg)
            ),
        )
        assert reg.get("repro_sim_events_total").labels(event="queue").value == 1
        wait = reg.get("repro_wait_duration_minutes").labels(pool="p0")
        assert wait.count == 1
        assert wait.sum == pytest.approx(9.0)  # queued at 1.0, started at 10.0

    def test_profile_report_available(self, smoke_scenario):
        from repro.simulator.engine import SimulationEngine

        engine = SimulationEngine(
            smoke_scenario.trace,
            smoke_scenario.cluster,
            config=SimulationConfig(
                strict=False, instrumentation=Instrumentation(profile=True)
            ),
        )
        engine.run()
        report = engine.profile_report()
        assert report is not None
        assert report.total_events > 0
        handlers = {stats.handler for stats in report.handlers}
        assert "submit" in handlers and "finish" in handlers
        assert "events/sec" in report.render()


class TestExporters:
    def _populated_registry(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_sim_events_total", "events", labelnames=("event",)
        ).labels(event="submit").inc(3)
        reg.gauge("repro_jobs_outstanding", "outstanding").set(2)
        reg.histogram(
            "repro_wait_duration_minutes",
            "waits",
            labelnames=("pool",),
            buckets=(1.0, 10.0),
        ).labels(pool="p0").observe(4.0)
        return reg

    def test_prometheus_round_trip(self):
        reg = self._populated_registry()
        text = to_prometheus(reg)
        assert "# TYPE repro_sim_events_total counter" in text
        parsed = parse_prometheus(text)
        assert parsed[("repro_sim_events_total", (("event", "submit"),))] == 3
        assert parsed[("repro_jobs_outstanding", ())] == 2
        # histogram exposition: cumulative buckets, sum and count
        assert parsed[("repro_wait_duration_minutes_bucket", (("le", "+Inf"), ("pool", "p0")))] == 1
        assert parsed[("repro_wait_duration_minutes_sum", (("pool", "p0"),))] == 4.0

    def test_jsonl_round_trip(self, tmp_path):
        reg = self._populated_registry()
        prom, jsonl = write_telemetry_dir(reg, tmp_path)
        lines = read_jsonl_snapshot(jsonl)
        by_name = {line["name"]: line for line in lines}
        assert by_name["repro_sim_events_total"]["type"] == "counter"
        assert prom.read_text().startswith("# HELP")

    def test_export_is_deterministic(self, smoke_scenario):
        texts = []
        for _ in range(2):
            reg = MetricsRegistry()
            run_smoke(smoke_scenario, Instrumentation(metrics=reg))
            texts.append(to_prometheus(reg))
        assert texts[0] == texts[1]

    def test_load_telemetry_dir_and_render(self, tmp_path, smoke_scenario):
        reg = MetricsRegistry()
        run_smoke(smoke_scenario, Instrumentation(metrics=reg))
        write_telemetry_dir(reg, tmp_path)
        stats = load_telemetry_dir(tmp_path)
        assert stats.value("repro_sim_events_total", event="submit") == len(
            smoke_scenario.trace
        )
        rendered = render_stats(stats)
        assert "event counters" in rendered
        assert "per-pool gauges" in rendered

    def test_load_empty_dir_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_telemetry_dir(tmp_path)


class TestFanOut:
    def test_multiple_observers_in_order(self):
        calls = []

        class Recorder:
            def __init__(self, tag):
                self.tag = tag

            def on_event(self, event):
                calls.append((self.tag, event.event, event.job_id))

        first, second = Recorder("a"), Recorder("b")
        repro.run_simulation(
            make_trace([make_job(0, runtime=5.0)]),
            make_cluster(),
            config=SimulationConfig(
                strict=False,
                instrumentation=Instrumentation(observers=(first, second)),
            ),
        )
        kinds = [c[1] for c in calls if c[0] == "a"]
        assert kinds == ["submit", "start", "finish"]
        # fan-out preserves registration order for every event
        assert calls[0::2] == [("a", k, 0) for k in kinds]
        assert calls[1::2] == [("b", k, 0) for k in kinds]


class TestRemovedObserverKeyword:
    def test_observer_keyword_raises_with_migration_hint(self):
        with pytest.raises(ConfigurationError, match="Instrumentation\\(observers="):
            SimulationConfig(strict=False, observer=EventLog())

    def test_instrumentation_is_the_replacement(self):
        log = EventLog()
        config = SimulationConfig(
            strict=False, instrumentation=Instrumentation(observers=(log,))
        )
        repro.run_simulation(
            make_trace([make_job(0, runtime=5.0)]), make_cluster(), config=config
        )
        assert [e.event for e in log.events] == ["submit", "start", "finish"]


class TestProgress:
    class _Outcome:
        def __init__(self, from_cache=False, wall=1.0):
            self.from_cache = from_cache
            self.wall_seconds = wall

    def test_heartbeat_shows_eta_and_cache(self):
        sink = io.StringIO()
        ticks = iter(range(100))
        reporter = ProgressReporter(stream=sink, clock=lambda: float(next(ticks)))
        reporter.add_total(2)
        reporter(self._Outcome(from_cache=True))
        reporter(self._Outcome())
        lines = sink.getvalue().splitlines()
        assert "1/2 cells (1 cached)" in lines[0]
        assert "eta" in lines[0]
        assert "2/2 cells (1 cached)" in lines[1]

    def test_min_interval_suppresses_but_final_prints(self):
        sink = io.StringIO()
        ticks = iter([0.0, 0.1, 0.2, 0.3, 0.4, 0.5])
        reporter = ProgressReporter(
            stream=sink, min_interval_seconds=1000.0, clock=lambda: next(ticks)
        )
        reporter.add_total(3)
        reporter(self._Outcome())
        reporter(self._Outcome())
        reporter(self._Outcome())
        lines = sink.getvalue().splitlines()
        # first heartbeat and the final cell print; the middle one is
        # suppressed by the interval
        assert len(lines) == 2
        assert "1/3 cells" in lines[0]
        assert "3/3 cells" in lines[1]

    def test_cells_jsonl_round_trip(self, tmp_path, smoke_scenario):
        cells = repro.run_experiment(smoke_scenario, ["NoRes"])
        path = write_cells_jsonl(cells, tmp_path)
        assert path.name == CELLS_FILENAME
        (record,) = read_cells_jsonl(path)
        assert record["policy"] == "NoRes"
        assert record["scenario"] == smoke_scenario.name
        assert json.dumps(record)  # plain JSON-serializable dict
