"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.cdf import EmpiricalCDF
from repro.simulator.events import EVENT_SUBMIT, EventQueue
from repro.simulator.job import Job
from repro.simulator.queues import PriorityWaitQueue
from repro.workload.distributions import BoundedPareto, LogNormal, quantile
from repro.workload.trace import Trace

from conftest import make_cluster, make_job, run_tiny

# -- distributions -------------------------------------------------------------


@given(
    alpha=st.floats(0.5, 3.0),
    low=st.floats(1.0, 100.0),
    spread=st.floats(1.5, 100.0),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=200)
def test_bounded_pareto_stays_in_bounds(alpha, low, spread, seed):
    high = low * spread
    d = BoundedPareto(alpha=alpha, low=low, high=high)
    value = d.sample(random.Random(seed))
    assert low <= value <= high


@given(mu=st.floats(-2.0, 6.0), sigma=st.floats(0.0, 2.0), seed=st.integers(0, 2**32 - 1))
@settings(max_examples=100)
def test_lognormal_positive(mu, sigma, seed):
    assert LogNormal(mu=mu, sigma=sigma).sample(random.Random(seed)) > 0


@given(
    values=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=200),
    q=st.floats(0.0, 1.0),
)
def test_quantile_within_range(values, q):
    ordered = sorted(values)
    result = quantile(ordered, q)
    assert ordered[0] <= result <= ordered[-1]


# -- CDF -----------------------------------------------------------------------


@given(values=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=300))
def test_cdf_fraction_monotone(values):
    cdf = EmpiricalCDF(values)
    probes = sorted({cdf.minimum, cdf.maximum, cdf.mean})
    fractions = [cdf.fraction_at_most(p) for p in probes]
    assert fractions == sorted(fractions)
    assert cdf.fraction_at_most(cdf.maximum) == 1.0


@given(
    values=st.lists(st.floats(0.0, 1e6), min_size=2, max_size=300),
    count=st.integers(2, 50),
)
def test_cdf_points_are_valid_cdf(values, count):
    points = EmpiricalCDF(values).points(count)
    xs = [x for x, _ in points]
    fs = [f for _, f in points]
    assert xs == sorted(xs)
    assert fs == sorted(fs)
    assert all(0.0 < f <= 1.0 for f in fs)


# -- priority queue --------------------------------------------------------------


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["push", "pop", "remove"]), st.integers(0, 200)),
        max_size=200,
    )
)
@settings(max_examples=100)
def test_wait_queue_matches_reference_model(operations):
    """The heap-based queue behaves exactly like a sorted-list model."""
    queue = PriorityWaitQueue()
    model = []  # list of (-priority, order, job)
    order = 0
    jobs = {}
    for op, value in operations:
        if op == "push":
            if value in jobs:
                continue
            job = Job(make_job(value, priority=value % 5))
            jobs[value] = job
            queue.push(job)
            model.append((-job.priority, order, job))
            order += 1
        elif op == "pop":
            if not model:
                continue
            model.sort()
            expected = model.pop(0)[2]
            actual = queue.pop()
            del jobs[actual.job_id]
            assert actual is expected
        else:  # remove
            if value not in jobs:
                continue
            job = jobs.pop(value)
            queue.remove(job)
            model = [entry for entry in model if entry[2] is not job]
        assert len(queue) == len(model)


# -- event queue -------------------------------------------------------------------


@given(times=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=200))
def test_event_queue_pops_sorted(times):
    q = EventQueue()
    q.push_many_unsorted([(t, EVENT_SUBMIT, i) for i, t in enumerate(times)])
    popped = [q.pop()[0] for _ in range(len(times))]
    assert popped == sorted(popped)


# -- trace ------------------------------------------------------------------------


@given(
    submits=st.lists(st.floats(0.0, 1e5), min_size=0, max_size=100),
    lo=st.floats(0.0, 1e5),
    span=st.floats(0.0, 1e5),
)
def test_trace_window_subset_property(submits, lo, span):
    trace = Trace([make_job(i, submit=s) for i, s in enumerate(submits)])
    window = trace.window(lo, lo + span)
    ids = {j.job_id for j in window}
    for job in trace:
        inside = lo <= job.submit_minute < lo + span
        assert (job.job_id in ids) == inside


# -- end-to-end accounting -----------------------------------------------------------


@given(
    runtimes=st.lists(st.floats(1.0, 50.0), min_size=1, max_size=15),
    gaps=st.lists(st.floats(0.0, 10.0), min_size=15, max_size=15),
    priorities=st.lists(st.sampled_from([0, 50, 100]), min_size=15, max_size=15),
)
@settings(max_examples=50, deadline=None)
def test_simulation_accounting_identity(runtimes, gaps, priorities):
    """On speed-1 machines: completion == wait + suspend + service."""
    submit = 0.0
    jobs = []
    for i, runtime in enumerate(runtimes):
        submit += gaps[i]
        jobs.append(
            make_job(i, submit=submit, runtime=runtime, priority=priorities[i])
        )
    result = run_tiny(jobs, cluster=make_cluster([("p0", 1), ("p1", 1)]))
    for record in result.records:
        expected = record.wait_time + record.suspend_time + record.runtime_minutes
        assert abs(record.completion_time - expected) < 1e-6
