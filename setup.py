"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` on this machine has no network and no `wheel`
module, so the PEP 517 editable path (which builds a wheel) fails;
this shim lets the legacy `setup.py develop` path work instead.
"""

from setuptools import setup

setup()
