#!/usr/bin/env python
"""Measure engine throughput and maintain the BENCH_engine.json trajectory.

Default run — measure the full matrix plus the Table-1 cold/warm
campaign and append one record to the trajectory:

    PYTHONPATH=src python scripts/bench_record.py

CI gate — measure the quick matrix and fail when calibration-normalised
throughput regresses more than 20% against the last committed record,
without writing anything:

    PYTHONPATH=src python scripts/bench_record.py --check --quick

Streaming-ingestion trajectory (BENCH_ingest.json) — each cell writes a
synthetic fixture and replays it in a fresh subprocess, recording
jobs/sec, wall clock and peak RSS; the check additionally gates RSS
growth:

    PYTHONPATH=src python scripts/bench_record.py --ingest
    PYTHONPATH=src python scripts/bench_record.py --ingest --check

Distributed-fabric trajectory (BENCH_grid.json) — run the experiment
grids through the serial baseline and 1/2/4-subprocess-worker fleets,
recording cells/sec per backend, the warm-cache rerun and a per-cell
digest; the check gates digest flips, throughput drops and the padded
grid's 4-worker overlap speedup:

    PYTHONPATH=src python scripts/bench_record.py --grid
    PYTHONPATH=src python scripts/bench_record.py --grid --check --quick

Chaos-recovery trajectory (BENCH_chaos.json) — replay the seeded fault
scenarios against a live supervised fleet, recording the recovery
clock and the invariant audit's counters; the check hard-fails on any
invariant violation and gates recovery-time regressions:

    PYTHONPATH=src python scripts/bench_record.py --chaos
    PYTHONPATH=src python scripts/bench_record.py --chaos --check

The file format and comparison rules live in :mod:`repro.benchtrack`;
this script only adds argument parsing, git labelling and reporting.
"""

from __future__ import annotations

import argparse
import datetime
import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import benchtrack  # noqa: E402


def git_label() -> str:
    """Abbreviated git revision of the working tree, or 'unknown'."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_ingest(args) -> int:
    """Measure the ingestion matrix; write or gate BENCH_ingest.json."""
    import datetime as datetime_module

    print("calibrating interpreter ...", flush=True)
    calibration = benchtrack.calibrate()
    print(f"calibration score: {calibration:,.0f} iterations/sec")

    ingests = benchtrack.measure_ingest_matrix(
        progress=lambda msg: print(msg, flush=True), rounds=args.rounds
    )
    for r in ingests:
        print(
            f"  {r.spec.name}: {r.jobs} jobs in {r.wall_seconds:.2f}s "
            f"(best of {args.rounds}) = {r.jobs_per_second:,.0f} jobs/sec, "
            f"peak RSS {r.peak_rss_mb:.0f} MB"
        )

    record = benchtrack.IngestRecord(
        schema_version=benchtrack.SCHEMA_VERSION,
        label=args.label or git_label(),
        recorded_at=datetime_module.datetime.now(
            datetime_module.timezone.utc
        ).isoformat(timespec="seconds"),
        calibration_score=calibration,
        ingests=ingests,
        notes=args.notes,
    )

    if args.check:
        history = benchtrack.load_ingest_history(args.output)
        if not history:
            print(f"no committed trajectory in {args.output}; nothing to gate")
            return 0
        previous = history[-1]
        failures = benchtrack.check_ingest_regression(
            previous, record, threshold=args.threshold
        )
        if failures:
            print(
                f"ingestion regression vs record {previous.label!r}:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"ingestion OK vs record {previous.label!r} "
            f"(threshold {args.threshold:.0%})"
        )
        return 0

    count = benchtrack.write_ingest_record(
        args.output, record, append=not args.overwrite
    )
    print(f"wrote ingest record {record.label!r} to {args.output} ({count} total)")
    return 0


def run_grid(args) -> int:
    """Measure the fabric grid matrix; write or gate BENCH_grid.json."""
    specs = (
        benchtrack.QUICK_GRID_WORKLOADS if args.quick
        else benchtrack.GRID_WORKLOADS
    )

    print("calibrating interpreter ...", flush=True)
    calibration = benchtrack.calibrate()
    cores = os.cpu_count() or 1
    print(
        f"calibration score: {calibration:,.0f} iterations/sec "
        f"({cores} core(s) available)"
    )

    grids = benchtrack.measure_grid_matrix(
        specs, progress=lambda msg: print(msg, flush=True)
    )
    for g in grids:
        floor = f", floor {g.spec.cell_floor}s" if g.spec.cell_floor else ""
        print(f"  {g.spec.name}: {g.cells} cells{floor} [{g.digest[:12]}]")
        for t in g.timings:
            print(
                f"    {t.backend}: {t.wall_seconds:.2f}s "
                f"= {t.cells_per_second:.2f} cells/sec"
            )
        speedup = g.speedup(4)
        if speedup is not None:
            print(f"    subprocess:4 vs :1 speedup: {speedup:.2f}x")
        print(f"    warm rerun: {g.warm_seconds:.2f}s")

    record = benchtrack.GridRecord(
        schema_version=benchtrack.SCHEMA_VERSION,
        label=args.label or git_label(),
        recorded_at=datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        calibration_score=calibration,
        available_cores=cores,
        grids=grids,
        notes=args.notes,
    )

    if args.check:
        history = benchtrack.load_grid_history(args.output)
        if not history:
            print(f"no committed trajectory in {args.output}; nothing to gate")
            return 0
        previous = history[-1]
        failures = benchtrack.check_grid_regression(
            previous, record, threshold=args.threshold
        )
        if failures:
            print(
                f"fabric regression vs record {previous.label!r}:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"fabric OK vs record {previous.label!r} "
            f"(threshold {args.threshold:.0%})"
        )
        return 0

    count = benchtrack.write_grid_record(
        args.output, record, append=not args.overwrite
    )
    print(f"wrote grid record {record.label!r} to {args.output} ({count} total)")
    return 0


def run_chaos(args) -> int:
    """Measure the chaos scenarios; write or gate BENCH_chaos.json."""
    print("calibrating interpreter ...", flush=True)
    calibration = benchtrack.calibrate()
    cores = os.cpu_count() or 1
    print(
        f"calibration score: {calibration:,.0f} iterations/sec "
        f"({cores} core(s) available)"
    )

    scenarios = benchtrack.measure_chaos_matrix(
        progress=lambda msg: print(msg, flush=True)
    )
    for s in scenarios:
        verdict = "OK" if not s.violations else "VIOLATED"
        print(
            f"  {s.spec.name}: {verdict} — {s.cells} cells in "
            f"{s.wall_seconds:.2f}s, recovery {s.recovery_seconds:.2f}s, "
            f"{s.restarts} restart(s), {s.quarantined} quarantined, "
            f"{s.cells_recovered} recovered, {s.takeovers} takeover(s)"
        )
        for violation in s.violations:
            print(f"    VIOLATION: {violation}", file=sys.stderr)

    record = benchtrack.ChaosRecord(
        schema_version=benchtrack.SCHEMA_VERSION,
        label=args.label or git_label(),
        recorded_at=datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        calibration_score=calibration,
        available_cores=cores,
        scenarios=scenarios,
        notes=args.notes,
    )

    if args.check:
        history = benchtrack.load_chaos_history(args.output)
        if not history:
            # Still hard-fail on violations: a chaos run that broke an
            # invariant is wrong even with no baseline to compare to.
            empty = benchtrack.ChaosRecord(
                schema_version=benchtrack.SCHEMA_VERSION,
                label="(none)", recorded_at=None,
                calibration_score=calibration, available_cores=cores,
                scenarios=(),
            )
            failures = benchtrack.check_chaos_regression(empty, record)
            if failures:
                print("chaos invariant violations:", file=sys.stderr)
                for failure in failures:
                    print(f"  {failure}", file=sys.stderr)
                return 1
            print(f"no committed trajectory in {args.output}; nothing to gate")
            return 0
        previous = history[-1]
        failures = benchtrack.check_chaos_regression(
            previous, record, threshold=args.threshold
        )
        if failures:
            print(
                f"chaos regression vs record {previous.label!r}:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"chaos OK vs record {previous.label!r} "
            f"(threshold {args.threshold:.0%})"
        )
        return 0

    count = benchtrack.write_chaos_record(
        args.output, record, append=not args.overwrite
    )
    print(f"wrote chaos record {record.label!r} to {args.output} ({count} total)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default="BENCH_engine.json",
        help="trajectory file to read/write (default: %(default)s)",
    )
    parser.add_argument(
        "--label", default=None,
        help="record label (default: abbreviated git revision)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="timing rounds per workload; the best is recorded (default: 3)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="measure only the reduced-scale matrix cells",
    )
    parser.add_argument(
        "--skip-table1", action="store_true",
        help="skip the Table-1 cold/warm campaign timing",
    )
    parser.add_argument(
        "--overwrite", action="store_true",
        help="start a fresh trajectory instead of appending",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the last committed record and exit nonzero "
             "on regression; does not write the trajectory file",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="allowed fractional drop in normalised throughput for "
             "--check (default: %(default)s)",
    )
    parser.add_argument(
        "--notes", default="", help="free-form note stored in the record",
    )
    parser.add_argument(
        "--ingest", action="store_true",
        help="measure the streaming-ingestion matrix instead of the engine "
             "matrix (trajectory file defaults to BENCH_ingest.json)",
    )
    parser.add_argument(
        "--grid", action="store_true",
        help="measure the distributed-fabric grid matrix instead of the "
             "engine matrix (trajectory file defaults to BENCH_grid.json; "
             "--quick keeps only the padded scheduling-bound grid)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="measure the chaos-recovery scenarios instead of the engine "
             "matrix (trajectory file defaults to BENCH_chaos.json; the "
             "check hard-fails on invariant violations)",
    )
    args = parser.parse_args(argv)

    if sum((args.ingest, args.grid, args.chaos)) > 1:
        parser.error("--ingest, --grid and --chaos are mutually exclusive")
    if args.ingest:
        if args.output == "BENCH_engine.json":
            args.output = "BENCH_ingest.json"
        return run_ingest(args)
    if args.grid:
        if args.output == "BENCH_engine.json":
            args.output = "BENCH_grid.json"
        return run_grid(args)
    if args.chaos:
        if args.output == "BENCH_engine.json":
            args.output = "BENCH_chaos.json"
        if args.threshold == 0.20:
            args.threshold = benchtrack.CHAOS_THRESHOLD
        return run_chaos(args)

    specs = benchtrack.QUICK_WORKLOADS if args.quick else benchtrack.WORKLOADS

    print("calibrating interpreter ...", flush=True)
    calibration = benchtrack.calibrate()
    print(f"calibration score: {calibration:,.0f} iterations/sec")

    workloads = benchtrack.measure_matrix(
        specs, rounds=args.rounds, progress=lambda msg: print(msg, flush=True)
    )
    for w in workloads:
        print(
            f"  {w.spec.name}: {w.jobs} jobs in {w.best_wall_seconds:.2f}s "
            f"(best of {w.rounds}) = {w.jobs_per_second:,.0f} jobs/sec "
            f"[{w.result_digest[:12]}]"
        )

    table1_cold = table1_warm = None
    if not args.skip_table1:
        print("timing Table-1 campaign (cold, then cache-warm) ...", flush=True)
        table1_cold, table1_warm = benchtrack.measure_table1()
        print(f"  table1: cold {table1_cold:.2f}s, warm {table1_warm:.2f}s")

    record = benchtrack.BenchRecord(
        schema_version=benchtrack.SCHEMA_VERSION,
        label=args.label or git_label(),
        recorded_at=datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        calibration_score=calibration,
        workloads=workloads,
        table1_cold_seconds=table1_cold,
        table1_warm_seconds=table1_warm,
        notes=args.notes,
    )

    if args.check:
        history = benchtrack.load_history(args.output)
        if not history:
            print(f"no committed trajectory in {args.output}; nothing to gate")
            return 0
        previous = history[-1]
        failures = benchtrack.check_regression(
            previous, record, threshold=args.threshold
        )
        if failures:
            print(
                f"throughput regression vs record {previous.label!r}:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"throughput OK vs record {previous.label!r} "
            f"(threshold {args.threshold:.0%})"
        )
        return 0

    count = benchtrack.write_record(args.output, record, append=not args.overwrite)
    print(f"wrote record {record.label!r} to {args.output} ({count} total)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
