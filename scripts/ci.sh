#!/usr/bin/env bash
# CI entry point — the same commands run locally (`make ci`) and in
# .github/workflows/ci.yml, so a green local run means a green pipeline.
#
# Usage: scripts/ci.sh [tests|lint|smoke|all]
#
# Subcommands:
#   tests   tier-1 test suite (the gate every PR must keep green)
#   lint    ruff over src/ tests/ benchmarks/ (skipped with a notice
#           when ruff is not installed, unless $CI is set)
#   smoke   benchmarks/bench_ci_smoke.py at reduced scale: asserts
#           parallel == serial bit-for-bit, warm cache >= 5x cold, and
#           telemetry-on == telemetry-off; then drives the CLI with
#           --telemetry-dir and checks the exported snapshot parses
#           with nonzero event counters
#   all     tests + lint + smoke (default)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:}${PYTHONPATH:-}"

run_tests() {
    echo "== tier-1 tests =="
    python -m pytest tests/ -q
}

run_lint() {
    echo "== lint (ruff) =="
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests benchmarks
    elif [ -n "${CI:-}" ]; then
        echo "error: ruff is required in CI but is not installed" >&2
        exit 1
    else
        echo "ruff not installed locally; skipping lint (CI runs it)"
    fi
}

run_smoke() {
    echo "== CI smoke: serial-vs-parallel equivalence + cache speedup =="
    REPRO_SCALE="${REPRO_SCALE:-0.08}" \
        python -m pytest benchmarks/bench_ci_smoke.py -q -s

    echo "== CI smoke: CLI telemetry export =="
    local teldir
    teldir="$(mktemp -d)"
    trap 'rm -rf "$teldir"' RETURN
    # same reduced-scale run with and without --telemetry-dir; the
    # printed summary (everything but the final "wrote ..." line) must
    # be identical, proving telemetry never touches the simulation.
    python -m repro run --scenario smoke --policy ResSusUtil \
        --telemetry-dir "$teldir/metrics" | grep -v '^wrote ' > "$teldir/on.txt"
    python -m repro run --scenario smoke --policy ResSusUtil > "$teldir/off.txt"
    if ! diff -u "$teldir/off.txt" "$teldir/on.txt"; then
        echo "error: simulation output changed when telemetry was enabled" >&2
        exit 1
    fi
    TELDIR="$teldir/metrics" python - <<'EOF'
import os
from repro.telemetry import load_telemetry_dir, parse_prometheus

teldir = os.environ["TELDIR"]
stats = load_telemetry_dir(teldir)
events = stats.by_name("repro_sim_events_total")
assert events, "snapshot is missing repro_sim_events_total"
total = sum(s["value"] for s in events)
assert total > 0, "event counters are all zero"
with open(os.path.join(teldir, "metrics.prom"), encoding="utf-8") as handle:
    samples = parse_prometheus(handle.read())
assert samples, "prometheus export did not parse"
print(f"telemetry snapshot OK: {total:.0f} events across {len(events)} counters")
EOF
    python -m repro stats "$teldir/metrics" > /dev/null
    echo "CLI telemetry export OK"
}

case "${1:-all}" in
    tests) run_tests ;;
    lint)  run_lint ;;
    smoke) run_smoke ;;
    all)   run_tests; run_lint; run_smoke ;;
    *)
        echo "usage: scripts/ci.sh [tests|lint|smoke|all]" >&2
        exit 2
        ;;
esac
