#!/usr/bin/env bash
# CI entry point — the same commands run locally (`make ci`) and in
# .github/workflows/ci.yml, so a green local run means a green pipeline.
#
# Usage: scripts/ci.sh [tests|lint|smoke|all]
#
# Subcommands:
#   tests   tier-1 test suite (the gate every PR must keep green)
#   lint    ruff over src/ tests/ benchmarks/ (skipped with a notice
#           when ruff is not installed, unless $CI is set)
#   smoke   benchmarks/bench_ci_smoke.py at reduced scale: asserts
#           parallel == serial bit-for-bit and warm cache >= 5x cold
#   all     tests + lint + smoke (default)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:}${PYTHONPATH:-}"

run_tests() {
    echo "== tier-1 tests =="
    python -m pytest tests/ -q
}

run_lint() {
    echo "== lint (ruff) =="
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests benchmarks
    elif [ -n "${CI:-}" ]; then
        echo "error: ruff is required in CI but is not installed" >&2
        exit 1
    else
        echo "ruff not installed locally; skipping lint (CI runs it)"
    fi
}

run_smoke() {
    echo "== CI smoke: serial-vs-parallel equivalence + cache speedup =="
    REPRO_SCALE="${REPRO_SCALE:-0.08}" \
        python -m pytest benchmarks/bench_ci_smoke.py -q -s
}

case "${1:-all}" in
    tests) run_tests ;;
    lint)  run_lint ;;
    smoke) run_smoke ;;
    all)   run_tests; run_lint; run_smoke ;;
    *)
        echo "usage: scripts/ci.sh [tests|lint|smoke|all]" >&2
        exit 2
        ;;
esac
