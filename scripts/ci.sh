#!/usr/bin/env bash
# CI entry point — the same commands run locally (`make ci`) and in
# .github/workflows/ci.yml, so a green local run means a green pipeline.
#
# Usage: scripts/ci.sh [tests|lint|smoke|faults|bench|ingest|fabric|policies|chaos|all]
#
# Subcommands:
#   tests   tier-1 test suite (the gate every PR must keep green)
#   lint    ruff over src/ tests/ benchmarks/ (skipped with a notice
#           when ruff is not installed, unless $CI is set)
#   smoke   benchmarks/bench_ci_smoke.py at reduced scale: asserts
#           parallel == serial bit-for-bit, warm cache >= 5x cold, and
#           telemetry-on == telemetry-off; then drives the CLI with
#           --telemetry-dir and checks the exported snapshot parses
#           with nonzero event counters
#   faults  benchmarks/bench_faults_smoke.py: same-seed fault run is
#           byte-identical across runs, fault-enabled grids match
#           serial vs parallel, and a grid survives a forced worker
#           kill; then checks `repro run` with churn flags is
#           byte-identical across two invocations
#   bench   engine-throughput gate: measures the quick workload matrix
#           (scripts/bench_record.py --check) and fails when
#           calibration-normalised throughput regresses more than 20%
#           against the last committed BENCH_engine.json record
#   ingest  streaming-ingestion gate: trace-adapter test files, then a
#           100k-job synthetic SWF fixture generated and replayed
#           end-to-end with a hard peak-RSS ceiling
#           (${INGEST_RSS_MB:-256} MB, measured via getrusage) and a
#           JSON-output schema check; finally the BENCH_ingest.json
#           regression gate (throughput drop > 20% normalised, or RSS
#           growth past the recorded baseline, fails the leg)
#   fabric  distributed-fabric gate: lease/worker/coordinator test
#           files, then a real 2-worker subprocess fleet racing the
#           smoke grid (benchmarks/bench_fabric_smoke.py — sharded
#           results must be bit-identical to serial), a CLI run-grid +
#           cache stats/gc round trip, and the BENCH_grid.json
#           regression gate (scripts/bench_record.py --grid --check
#           --quick: digest flips, >20% cells/sec drops, or the padded
#           grid's 4-worker overlap speedup falling under 3x fail the
#           leg)
#   policies  policy-registry gate: the registry/spec/plugin test
#           file, then benchmarks/bench_policies_smoke.py (registry-
#           routed baselines bit-identical to direct construction, and
#           the NoRes-vs-dfrs fractional smoke grid deterministic
#           across two runs); finally `repro policies list` and a
#           same-spec `repro run --policy dfrs:...` pair that must be
#           byte-identical
#   chaos   robustness gate: chaos-plan/audit/supervisor test files
#           (including the seeded scenario matrix against a live
#           supervised fleet), benchmarks/bench_chaos_smoke.py
#           (kill-storm converges with quarantine, the straggler
#           control stays quiet), a `repro chaos run` CLI round trip,
#           and the BENCH_chaos.json gate (scripts/bench_record.py
#           --chaos --check: any invariant violation, or a scenario's
#           recovery time regressing more than 25% past the committed
#           baseline, fails the leg)
#   all     tests + lint + smoke + faults (default; bench, ingest,
#           fabric and chaos are their own CI jobs because they are
#           timing-sensitive, and policies is its own job so a
#           registry regression is named in the check list)

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:}${PYTHONPATH:-}"

run_tests() {
    echo "== tier-1 tests =="
    python -m pytest tests/ -q
}

run_lint() {
    echo "== lint (ruff) =="
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests benchmarks
    elif [ -n "${CI:-}" ]; then
        echo "error: ruff is required in CI but is not installed" >&2
        exit 1
    else
        echo "ruff not installed locally; skipping lint (CI runs it)"
    fi
}

run_smoke() {
    echo "== CI smoke: serial-vs-parallel equivalence + cache speedup =="
    REPRO_SCALE="${REPRO_SCALE:-0.08}" \
        python -m pytest benchmarks/bench_ci_smoke.py -q -s

    echo "== CI smoke: CLI telemetry export =="
    local teldir
    teldir="$(mktemp -d)"
    trap 'rm -rf "$teldir"' RETURN
    # same reduced-scale run with and without --telemetry-dir; the
    # printed summary (everything but the final "wrote ..." line) must
    # be identical, proving telemetry never touches the simulation.
    python -m repro run --scenario smoke --policy ResSusUtil \
        --telemetry-dir "$teldir/metrics" | grep -v '^wrote ' > "$teldir/on.txt"
    python -m repro run --scenario smoke --policy ResSusUtil > "$teldir/off.txt"
    if ! diff -u "$teldir/off.txt" "$teldir/on.txt"; then
        echo "error: simulation output changed when telemetry was enabled" >&2
        exit 1
    fi
    TELDIR="$teldir/metrics" python - <<'EOF'
import os
from repro.telemetry import load_telemetry_dir, parse_prometheus

teldir = os.environ["TELDIR"]
stats = load_telemetry_dir(teldir)
events = stats.by_name("repro_sim_events_total")
assert events, "snapshot is missing repro_sim_events_total"
total = sum(s["value"] for s in events)
assert total > 0, "event counters are all zero"
with open(os.path.join(teldir, "metrics.prom"), encoding="utf-8") as handle:
    samples = parse_prometheus(handle.read())
assert samples, "prometheus export did not parse"
print(f"telemetry snapshot OK: {total:.0f} events across {len(events)} counters")
EOF
    python -m repro stats "$teldir/metrics" > /dev/null
    echo "CLI telemetry export OK"
}

run_faults() {
    echo "== CI faults: deterministic injection + crash-tolerant grids =="
    python -m pytest benchmarks/bench_faults_smoke.py -q -s

    echo "== CI faults: CLI fault run is reproducible =="
    local fdir
    fdir="$(mktemp -d)"
    trap 'rm -rf "$fdir"' RETURN
    python -m repro run --scenario smoke \
        --machine-mtbf 3000 --machine-mttr 60 > "$fdir/a.txt"
    python -m repro run --scenario smoke \
        --machine-mtbf 3000 --machine-mttr 60 > "$fdir/b.txt"
    if ! diff -u "$fdir/a.txt" "$fdir/b.txt"; then
        echo "error: same-seed fault-injected CLI runs diverged" >&2
        exit 1
    fi
    if ! grep -qi 'crash' "$fdir/a.txt"; then
        echo "error: fault-injected run reported no crashes" >&2
        exit 1
    fi
    echo "CLI fault run OK"
}

run_bench() {
    echo "== bench: engine-throughput trajectory gate =="
    python scripts/bench_record.py --check --quick --skip-table1 \
        --threshold "${BENCH_THRESHOLD:-0.20}" --output BENCH_engine.json
}

run_ingest() {
    echo "== ingest: trace adapter + streaming-results tests =="
    python -m pytest tests/test_traces_swf.py tests/test_traces_google.py \
        tests/test_traces_replay.py tests/test_online_results.py \
        tests/test_streaming_engine.py tests/test_ingest_bench.py -q

    echo "== ingest: 100k-job SWF replay under a hard RSS ceiling =="
    local idir ceiling
    idir="$(mktemp -d)"
    trap 'rm -rf "$idir"' RETURN
    ceiling="${INGEST_RSS_MB:-256}"
    python -m repro make-fixture "$idir/fixture.swf" --format swf \
        --jobs "${INGEST_JOBS:-100000}" --seed 1
    python -m repro ingest "$idir/fixture.swf" --format swf --scale 0.1 \
        --rss-ceiling-mb "$ceiling" --json > "$idir/ingest.json"
    INGEST_JSON="$idir/ingest.json" INGEST_RSS_MB="$ceiling" python - <<'EOF'
import json, os

with open(os.environ["INGEST_JSON"], encoding="utf-8") as handle:
    report = json.load(handle)
required = (
    "path", "format", "policy", "jobs", "completed", "rejected",
    "wall_seconds", "jobs_per_second", "peak_rss_mb", "total_cores",
)
missing = [key for key in required if key not in report]
assert not missing, f"ingest JSON is missing keys: {missing}"
assert report["jobs"] > 0 and report["completed"] > 0, report
ceiling = float(os.environ["INGEST_RSS_MB"])
assert report["peak_rss_mb"] <= ceiling, (
    f"peak RSS {report['peak_rss_mb']:.0f} MB breached the "
    f"{ceiling:.0f} MB ceiling"
)
print(
    f"ingest OK: {report['jobs']} jobs at "
    f"{report['jobs_per_second']:,.0f} jobs/s, "
    f"peak RSS {report['peak_rss_mb']:.0f} MB (ceiling {ceiling:.0f} MB)"
)
EOF

    echo "== ingest: BENCH_ingest.json regression gate =="
    python scripts/bench_record.py --ingest --check \
        --threshold "${BENCH_THRESHOLD:-0.20}" --output BENCH_ingest.json
}

run_fabric() {
    echo "== fabric: lease protocol + worker + coordinator tests =="
    python -m pytest tests/test_fabric_lease.py tests/test_fabric.py \
        tests/test_cache_gc.py -q

    echo "== fabric: 2-worker subprocess fleet vs serial (bit-identical) =="
    python -m pytest benchmarks/bench_fabric_smoke.py -q -s

    echo "== fabric: CLI run-grid + cache stats/gc round trip =="
    local fdir
    fdir="$(mktemp -d)"
    trap 'rm -rf "$fdir"' RETURN
    python -m repro run-grid --preset smoke --backend subprocess:2 \
        --cache-dir "$fdir/cache" > "$fdir/cold.txt"
    python -m repro run-grid --preset smoke --backend subprocess:2 \
        --cache-dir "$fdir/cache" > "$fdir/warm.txt"
    if ! grep -q 'cells: .*cache' "$fdir/warm.txt" \
            || grep -q 'simulated' "$fdir/warm.txt"; then
        echo "error: warm run-grid rerun did not hit the cache" >&2
        cat "$fdir/warm.txt" >&2
        exit 1
    fi
    python -m repro cache stats "$fdir/cache" > /dev/null
    python -m repro cache gc "$fdir/cache" --max-age 0s > /dev/null
    if ! python -m repro cache stats "$fdir/cache" \
            | grep -q ': 0 entries, .* 0 lease file(s)'; then
        echo "error: cache gc --max-age 0s left entries behind" >&2
        exit 1
    fi
    echo "CLI run-grid round trip OK"

    echo "== fabric: BENCH_grid.json regression gate =="
    python scripts/bench_record.py --grid --check --quick \
        --threshold "${BENCH_THRESHOLD:-0.20}" --output BENCH_grid.json
}

run_policies() {
    echo "== policies: registry / spec / plugin tests =="
    python -m pytest tests/test_policy_registry.py -q

    echo "== policies: registry == direct + fractional grid determinism =="
    python -m pytest benchmarks/bench_policies_smoke.py -q -s

    echo "== policies: CLI spec round trip is reproducible =="
    local pdir
    pdir="$(mktemp -d)"
    trap 'rm -rf "$pdir"' RETURN
    python -m repro policies list > "$pdir/list.txt"
    if ! grep -q 'dfrs' "$pdir/list.txt" \
            || ! grep -q 'migration_cost' "$pdir/list.txt"; then
        echo "error: 'repro policies list' is missing the new families" >&2
        cat "$pdir/list.txt" >&2
        exit 1
    fi
    python -m repro run --scenario smoke \
        --policy dfrs:share=0.5,floor=0.1 > "$pdir/a.txt"
    python -m repro run --scenario smoke \
        --policy dfrs:share=0.5,floor=0.1 > "$pdir/b.txt"
    if ! diff -u "$pdir/a.txt" "$pdir/b.txt"; then
        echo "error: same-spec fractional CLI runs diverged" >&2
        exit 1
    fi
    if ! grep -q 'DFRS\[share=0.5,floor=0.1\]' "$pdir/a.txt"; then
        echo "error: fractional run did not report the DFRS policy name" >&2
        cat "$pdir/a.txt" >&2
        exit 1
    fi
    echo "CLI policy spec round trip OK"
}

run_chaos() {
    echo "== chaos: plan / invariant-audit / supervisor tests =="
    python -m pytest tests/test_chaos.py tests/test_supervisor.py -q

    echo "== chaos: kill-storm + straggler control vs live fleet =="
    python -m pytest benchmarks/bench_chaos_smoke.py -q -s

    echo "== chaos: CLI scenario round trip =="
    local cdir
    cdir="$(mktemp -d)"
    trap 'rm -rf "$cdir"' RETURN
    python -m repro chaos list > "$cdir/list.txt"
    for scenario in kill-storm heartbeat-freeze corruption straggler; do
        if ! grep -q "$scenario" "$cdir/list.txt"; then
            echo "error: 'repro chaos list' is missing $scenario" >&2
            cat "$cdir/list.txt" >&2
            exit 1
        fi
    done
    python -m repro chaos run --scenario straggler --seed 2010 --json \
        > "$cdir/report.json"
    CHAOS_JSON="$cdir/report.json" python - <<'EOF'
import json, os

with open(os.environ["CHAOS_JSON"], encoding="utf-8") as handle:
    report = json.load(handle)
assert report["ok"], report["violations"]
assert report["cells"] > 0, report
assert report["restarts"] == 0, "the control scenario restarted workers"
assert report["quarantined"] == 0, "the control scenario quarantined a slot"
print(
    f"chaos CLI OK: {report['scenario']} converged over "
    f"{report['cells']} cells in {report['wall_seconds']:.2f}s"
)
EOF
    echo "CLI chaos round trip OK"

    echo "== chaos: BENCH_chaos.json recovery regression gate =="
    python scripts/bench_record.py --chaos --check \
        --threshold "${CHAOS_THRESHOLD:-0.25}" --output BENCH_chaos.json
}

case "${1:-all}" in
    tests)  run_tests ;;
    lint)   run_lint ;;
    smoke)  run_smoke ;;
    faults) run_faults ;;
    bench)  run_bench ;;
    ingest) run_ingest ;;
    fabric) run_fabric ;;
    policies) run_policies ;;
    chaos)  run_chaos ;;
    all)    run_tests; run_lint; run_smoke; run_faults ;;
    *)
        echo "usage: scripts/ci.sh [tests|lint|smoke|faults|bench|ingest|fabric|policies|chaos|all]" >&2
        exit 2
        ;;
esac
