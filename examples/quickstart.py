"""Quickstart: simulate NetBatch's busy week with and without rescheduling.

Builds the calibrated busy-week scenario (a one-week job trace with a
burst of high-priority work pinned to the large pools, on a 20-pool
synthetic site), runs the NoRes baseline and the paper's ResSusUtil
strategy, and prints both rows in the paper's table layout.

Run:
    python examples/quickstart.py [scale]

``scale`` (default 0.1) multiplies machines-per-pool; 0.25 is the
calibrated experiment scale, smaller is faster.
"""

import sys

import repro


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    scenario = repro.busy_week(scale=scale)
    print(
        f"scenario: {scenario.description}\n"
        f"  pools:    {len(scenario.cluster)}\n"
        f"  machines: {scenario.cluster.total_machines} "
        f"({scenario.cluster.total_cores} cores)\n"
        f"  jobs:     {len(scenario.trace)}\n"
    )

    summaries = []
    for policy in (repro.no_res(), repro.res_sus_util()):
        print(f"simulating {policy.name} ...")
        result = repro.run_simulation(
            scenario.trace,
            scenario.cluster,
            policy=policy,
            config=repro.SimulationConfig(strict=False),
        )
        summaries.append(repro.summarize(result))

    print()
    print(repro.render_table(summaries, "busy week, round-robin initial scheduling"))
    print()
    print(repro.render_waste_components(summaries, "waste decomposition (Figure 3 style)"))

    baseline, rescheduled = summaries
    if baseline.avg_ct_suspended and rescheduled.avg_ct_suspended:
        gain = 100.0 * (1 - rescheduled.avg_ct_suspended / baseline.avg_ct_suspended)
        print(
            f"\nDynamic rescheduling cut suspended jobs' average completion "
            f"time by {gain:.0f}% (the paper reports ~50% under normal load)."
        )


if __name__ == "__main__":
    main()
