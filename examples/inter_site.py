"""Inter-site rescheduling on a two-site NetBatch deployment.

The paper's conclusion proposes "inter-site rescheduling" as the next
step beyond the single-site strategies it evaluates.  This example
builds two geographically separated sites with a 45-minute WAN transfer
cost, pins a high-priority burst on site 0, and shows how much of the
stranded work each strategy recovers:

* LocalOnly — today's NetBatch: suspended/stalled jobs may only move
  within their own site, which the burst has saturated;
* LocalFirst — cross the WAN only when no local pool is acceptable;
* TransferAware — remote pools compete on predicted start time
  including the transfer latency.

Run:
    python examples/inter_site.py [scale] [transfer_minutes]
"""

import sys

import repro
from repro.sites import inter_site_ablation, multi_site_scenario


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.12
    transfer = float(sys.argv[2]) if len(sys.argv) > 2 else 45.0

    scenario = multi_site_scenario(scale=scale, transfer_minutes=transfer)
    pools_per_site = {
        site.site_id: len(site.pools) for site in scenario.topology.sites
    }
    print(
        f"two-site deployment: {pools_per_site}, "
        f"{scenario.cluster.total_cores} cores total\n"
        f"burst lands on {scenario.burst_site}; WAN transfer {transfer:.0f} min\n"
    )

    scenario, rows = inter_site_ablation(scenario=scenario)
    print(repro.render_table(list(rows), "inter-site rescheduling comparison"))

    by_name = {row.policy_name: row for row in rows}
    local = by_name["LocalOnly"]
    remote = by_name["LocalFirst"]
    recovered = (local.avg_wct - remote.avg_wct) / local.avg_wct * 100.0
    print(
        f"\nAllowing cross-site moves recovers a further {recovered:.0f}% of the "
        f"wasted completion time\nthat strictly-local rescheduling leaves on the "
        f"table, even after paying {transfer:.0f}-minute transfers."
    )


if __name__ == "__main__":
    main()
