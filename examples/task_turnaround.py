"""Task-level turnaround: the paper's engineering-productivity motivation.

Section 2.2: "Typically, 100% or a high percentage of jobs associated
with a particular task needs to complete before the task result ... can
be useful.  Often when one or more of those low priority jobs cannot
complete in a timely fashion, engineers lose productivity."

This example runs the high-load busy week under NoRes and
ResSusWaitUtil, measures completion at the *task* level (a task is a
group of ~12 jobs whose combined result is what the engineer actually
waits for), and uses the event log to show the life of the worst
straggler task under the baseline.

Run:
    python examples/task_turnaround.py [scale]
"""

import sys

import repro
from repro.analysis import analyze_tasks
from repro.simulator import EventLog
from repro.simulator.config import SimulationConfig
from repro.telemetry import Instrumentation


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    scenario = repro.high_load(scale=scale)
    print(f"scenario: {scenario.description} ({len(scenario.trace)} jobs)\n")

    analyses = {}
    logs = {}
    for policy in (repro.no_res(), repro.res_sus_wait_util()):
        print(f"simulating {policy.name} ...")
        log = EventLog()
        result = repro.run_simulation(
            scenario.trace,
            scenario.cluster,
            policy=policy,
            config=SimulationConfig(
                strict=False,
                record_samples=False,
                instrumentation=Instrumentation(observers=(log,)),
            ),
        )
        analyses[policy.name] = analyze_tasks(result)
        logs[policy.name] = log

    print()
    header = (
        f"{'strategy':<16} {'tasks':>6} {'avg task CT':>12} "
        f"{'avg member CT':>14} {'amplification':>14} {'gated by susp.':>15}"
    )
    print(header)
    print("-" * len(header))
    for name, tasks in analyses.items():
        print(
            f"{name:<16} {len(tasks):>6} {tasks.avg_task_completion:>12.1f} "
            f"{tasks.avg_member_job_completion:>14.1f} "
            f"{tasks.amplification:>14.2f} "
            f"{tasks.tasks_delayed_by_suspension * 100:>14.1f}%"
        )

    base = analyses["NoRes"]
    resched = analyses["ResSusWaitUtil"]
    gain = 1 - resched.avg_task_completion / base.avg_task_completion
    print(
        f"\nRescheduling cut average task turnaround by {gain * 100:.0f}% — "
        f"tasks wait for their slowest member,\nso rescuing suspended "
        f"stragglers pays off at the task level."
    )

    # drill into the baseline's worst suspension-gated task via the event log
    gated = [t for t in base.tasks if t.straggler_was_suspended]
    if gated:
        worst = max(gated, key=lambda t: t.completion_time)
        print(
            f"\nworst suspension-gated task under NoRes: task {worst.task_id} "
            f"({worst.job_count} jobs, {worst.completion_time:.0f} min turnaround, "
            f"{worst.suspended_jobs} suspended member(s))"
        )
        counts = logs["NoRes"].counts()
        print(
            f"event log: {counts['suspend']} suspensions, "
            f"{counts['resume']} resumes, {counts['queue']} queueings "
            f"across the whole run"
        )


if __name__ == "__main__":
    main()
