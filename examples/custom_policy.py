"""Writing a custom rescheduling policy against the public API.

The paper's future work suggests combining "multiple metrics (e.g.,
utilization, queue lengths, prediction of job completion times within a
pool)".  This example builds exactly that — a policy using the
multi-metric :class:`~repro.core.WeightedSelector` for suspended jobs
and a *priority-aware* threshold for waiting jobs (latency-sensitive
jobs move sooner) — and benchmarks it against the paper's strategies.

Run:
    python examples/custom_policy.py [scale]
"""

import sys
from typing import Optional

import repro
from repro.core import (
    STAY,
    Decision,
    ReschedulingPolicy,
    SystemView,
    WeightedSelector,
    restart,
)


class MultiMetricPolicy(ReschedulingPolicy):
    """Weighted multi-metric selection with priority-aware patience.

    Suspended jobs move to the pool with the best combined
    (utilization, queue pressure, suspension pressure) score; waiting
    jobs move after a threshold that shrinks with their priority, so
    latency-sensitive work escapes congested queues sooner.
    """

    name = "MultiMetric"

    def __init__(self, base_threshold: float = 45.0) -> None:
        self._selector = WeightedSelector(
            utilization_weight=1.0, queue_weight=2.0, suspension_weight=0.5
        )
        self._base_threshold = base_threshold

    @property
    def wait_threshold(self) -> Optional[float]:
        # the engine re-checks each waiting job on this cadence; the
        # per-job patience logic lives in on_wait_timeout.
        return 15.0

    def on_suspend(self, job, view: SystemView) -> Decision:
        target = self._selector.select(view.candidate_pools(job), job.pool_id, view)
        return restart(target) if target else STAY

    def on_wait_timeout(self, job, view: SystemView) -> Decision:
        # high priority -> low patience: move at the first check;
        # low priority -> wait ~3 checks before considering a move.
        patience = self._base_threshold / (1.0 + job.spec.priority / 50.0)
        waited = view.now - job.segment_start
        if waited < patience:
            return STAY
        target = self._selector.select(view.candidate_pools(job), job.pool_id, view)
        return restart(target) if target else STAY


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    scenario = repro.high_load(scale=scale)
    print(f"scenario: {scenario.description} ({len(scenario.trace)} jobs)\n")

    summaries = []
    for policy in (repro.no_res(), repro.res_sus_wait_util(), MultiMetricPolicy()):
        print(f"simulating {policy.name} ...")
        result = repro.run_simulation(
            scenario.trace,
            scenario.cluster,
            policy=policy,
            config=repro.SimulationConfig(strict=False, record_samples=False),
        )
        summaries.append(repro.summarize(result))

    print()
    print(repro.render_table(summaries, "custom multi-metric policy vs paper strategies"))
    print()
    print(repro.render_waste_components(summaries))


if __name__ == "__main__":
    main()
