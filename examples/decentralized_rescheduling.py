"""Decentralised, job-side rescheduling — the paper's closing idea.

Section 3.3.2: "ResSusWaitRand can be implemented without any
coordination or changes to the system's scheduler.  Each job can simply
keep a timer to keep track of how long it has been in a queue and when
a threshold is reached, dequeues itself from the queue and resubmits to
a randomly selected candidate pool."

This example compares, under high load:

* the fully informed strategy (ResSusWaitUtil — needs live utilization
  statistics from every pool), and
* the fully decentralised one (ResSusWaitRand — needs nothing but a
  per-job timer),

and reports how close random selection with second chances gets, plus
the price it pays in extra restart operations (the paper's caveat:
"the advantage of design simplicity does come at a cost of much more
frequent restart operations").

Run:
    python examples/decentralized_rescheduling.py [scale]
"""

import sys

import repro


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    scenario = repro.high_load(scale=scale)
    print(f"scenario: {scenario.description} ({len(scenario.trace)} jobs)\n")

    summaries = []
    for policy in (
        repro.no_res(),
        repro.res_sus_wait_util(),
        repro.res_sus_wait_rand(),
    ):
        print(f"simulating {policy.name} ...")
        result = repro.run_simulation(
            scenario.trace,
            scenario.cluster,
            policy=policy,
            config=repro.SimulationConfig(strict=False, record_samples=False),
        )
        summaries.append(repro.summarize(result))

    print()
    print(repro.render_table(summaries, "high load, round-robin initial scheduling"))

    _, informed, decentralized = summaries
    gap = (decentralized.avg_wct - informed.avg_wct) / informed.avg_wct * 100.0
    moves = (
        decentralized.avg_restarts
        + decentralized.avg_waiting_moves
    ) / max(informed.avg_restarts + informed.avg_waiting_moves, 1e-9)
    print(
        f"\nDecentralised random selection lands within {gap:+.0f}% of the "
        f"fully informed strategy's AvgWCT,\nwhile performing {moves:.1f}x "
        f"as many move operations — the paper's trade-off exactly."
    )


if __name__ == "__main__":
    main()
