"""Section-2 style trace analysis on a long-horizon synthetic trace.

Reproduces the paper's trace-driven observations end to end:

1. generate a year-like NetBatch trace and persist it to JSON Lines
   (the archival format traces are exchanged in);
2. reload it and print its workload statistics;
3. run the NoRes baseline and print the Figure-2 suspension-time CDF
   and the Figure-4 utilization/suspension aggregation.

Run:
    python examples/trace_analysis.py [horizon_minutes] [scale]

Defaults keep the run under a minute (50,000 minutes at scale 0.05);
raise the horizon towards 500,000 for the paper's full year span.
"""

import sys
import tempfile
from pathlib import Path

import repro
from repro.analysis import analyze_suspension, analyze_utilization
from repro.workload import characterize
from repro.workload import trace_from_jsonl, trace_to_jsonl


def main() -> None:
    horizon = float(sys.argv[1]) if len(sys.argv) > 1 else 50_000.0
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05

    print(f"generating a {horizon:.0f}-minute trace at scale {scale} ...")
    scenario = repro.year(scale=scale, horizon=horizon)

    path = Path(tempfile.gettempdir()) / "netbatch_year_trace.jsonl"
    trace_to_jsonl(scenario.trace, path)
    print(f"archived trace to {path}")

    trace = trace_from_jsonl(path)
    stats = trace.stats()
    print(
        f"\ntrace statistics:\n"
        f"  jobs:              {stats.job_count}\n"
        f"  span:              {stats.horizon_minutes:.0f} minutes\n"
        f"  mean runtime:      {stats.mean_runtime:.0f} minutes\n"
        f"  high-priority:     "
        f"{stats.fraction_with_priority_at_least(100) * 100:.1f}%\n"
        f"  offered load:      "
        f"{trace.offered_load(scenario.cluster.total_cores) * 100:.0f}% of "
        f"{scenario.cluster.total_cores} cores"
    )
    print()
    print(characterize(trace).render())

    print("\nsimulating the NoRes baseline ...")
    result = repro.run_simulation(
        trace, scenario.cluster, config=repro.SimulationConfig(strict=False)
    )

    suspension = analyze_suspension(result)
    print("\nFigure 2 — suspension-time distribution (paper: median 437, mean 905):")
    for label, value in suspension.rows():
        print(f"  {label:<28} {value:>10.1f}")

    utilization = analyze_utilization(result, up_to_minute=horizon)
    print(
        f"\nFigure 4 — utilization & suspension over time "
        f"(paper: ~40% average, 20-60% range):\n"
        f"  mean utilization            {utilization.mean_utilization_pct:>8.1f}%\n"
        f"  p10..p90 utilization        {utilization.p10_utilization_pct:>8.1f}%"
        f" .. {utilization.p90_utilization_pct:.1f}%\n"
        f"  peak suspended jobs         {utilization.peak_suspended_jobs:>8.1f}\n"
        f"  suspension while <60% util  "
        f"{utilization.suspension_while_underutilized * 100:>8.1f}%"
    )


if __name__ == "__main__":
    main()
