"""The paper's full evaluation matrix on one busy week.

Runs all five strategies (NoRes, ResSusUtil, ResSusRand,
ResSusWaitUtil, ResSusWaitRand) under both load levels (normal and the
half-cores high load) with round-robin initial scheduling — i.e.
Tables 1, 2 and 4 in one script — and prints the percentage reductions
the paper quotes in prose.

Run:
    python examples/burst_week.py [scale]
"""

import sys

import repro
from repro.analysis import compare_strategies
from repro.schedulers import RoundRobinScheduler


def evaluate(scenario) -> None:
    policies = [repro.policy_from_spec(name) for name in repro.PAPER_POLICY_NAMES]
    comparison = compare_strategies(
        scenario,
        policies,
        scheduler_factory=RoundRobinScheduler,
        config=repro.SimulationConfig(strict=False, record_samples=False),
    )
    print(repro.render_table(list(comparison.summaries), scenario.description))
    for name in ("ResSusUtil", "ResSusWaitUtil"):
        ct_gain = comparison.avg_ct_suspended_reduction(name)
        wct_gain = comparison.avg_wct_reduction(name)
        print(
            f"  {name}: AvgCT(susp) {ct_gain:+.0f}%  AvgWCT {wct_gain:+.0f}% vs NoRes"
        )
    print()


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print("=== normal load (paper Table 1) ===")
    evaluate(repro.busy_week(scale=scale))
    print("=== high load: cores halved (paper Tables 2 and 4) ===")
    evaluate(repro.high_load(scale=scale))


if __name__ == "__main__":
    main()
