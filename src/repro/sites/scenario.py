"""Multi-site scenario construction.

Builds a NetBatch deployment of several geographically separated sites:
each site is a scaled cluster of its own (pool ids prefixed with the
site name), one site's large pools receive the high-priority burst, and
a :class:`~repro.sites.topology.SiteTopology` carries the WAN transfer
latencies between sites.  This is the substrate for the inter-site
rescheduling experiments the paper's conclusion proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..workload.arrivals import BurstProcess
from ..workload.cluster import ClusterSpec, ClusterTemplate, PoolSpec
from ..workload.distributions import RandomStreams
from ..workload.generator import WorkloadGenerator, WorkloadModel
from ..workload.trace import Trace
from .topology import SiteSpec, SiteTopology

__all__ = ["MultiSiteScenario", "multi_site_scenario", "rename_pools"]


def rename_pools(cluster: ClusterSpec, prefix: str) -> ClusterSpec:
    """A copy of ``cluster`` with every pool and machine id prefixed."""
    if not prefix:
        raise ConfigurationError("prefix may not be empty")
    pools = []
    for pool in cluster:
        new_id = f"{prefix}/{pool.pool_id}"
        machines = tuple(
            replace(m, machine_id=f"{prefix}/{m.machine_id}", pool_id=new_id)
            for m in pool.machines
        )
        pools.append(PoolSpec(pool_id=new_id, machines=machines))
    return ClusterSpec(pools)


@dataclass(frozen=True)
class MultiSiteScenario:
    """A ready-to-simulate multi-site experiment condition.

    Attributes:
        name: scenario label.
        topology: the site topology (latencies, pool-site mapping).
        cluster: the flattened cluster the simulator runs on.
        trace: the workload; the burst targets the first site's large
            pools.
        seed: the workload seed used.
        burst_site: id of the site the burst lands on.
    """

    name: str
    topology: SiteTopology
    cluster: ClusterSpec
    trace: Trace
    seed: int
    burst_site: str


def multi_site_scenario(
    site_count: int = 2,
    scale: float = 0.2,
    seed: int = 2010,
    transfer_minutes: float = 45.0,
    horizon: float = 10_080.0,
    utilization: float = 0.34,
    burst_overload: float = 1.1,
    burst_duration: float = 1000.0,
) -> MultiSiteScenario:
    """Build a multi-site busy week with the burst confined to site 0.

    Each site is a scaled-down NetBatch site (half the single-site
    template per site so total capacity stays comparable); the
    high-priority burst hits the *first* site's large pools, leaving
    the other sites "barely utilized" — the exact imbalance that makes
    inter-site rescheduling attractive.
    """
    if site_count < 2:
        raise ConfigurationError(f"site_count must be >= 2, got {site_count}")
    template = ClusterTemplate(
        size_classes=(("large", 2, 80), ("medium", 4, 80), ("small", 4, 36)),
        windows_pool_count=1,
        scale=scale,
    )
    streams = RandomStreams(seed)
    sites = []
    for index in range(site_count):
        site_id = f"site-{index}"
        site_cluster = rename_pools(
            template.build(streams.spawn(site_id)), site_id
        )
        sites.append(SiteSpec(site_id=site_id, pools=tuple(site_cluster.pools)))
    topology = SiteTopology(sites, transfer_minutes=transfer_minutes)
    cluster = topology.cluster()

    burst_site = sites[0].site_id
    burst_pools = tuple(
        f"{burst_site}/{pid}" for pid in template.large_pool_ids()
    )
    probe = WorkloadModel(
        horizon_minutes=horizon,
        base_rate=1.0,
        burst=BurstProcess(
            mean_gap=1e9,
            mean_duration=burst_duration,
            burst_rate=1.0,
            first_burst_start=1500.0,
            first_burst_duration=burst_duration,
        ),
        burst_pool_choices=burst_pools,
        burst_pools_per_burst=len(burst_pools),
        task_size=12,
    )
    mean_cores = probe.cores.mean()
    base_rate = (
        utilization * cluster.total_cores / (probe.runtime.mean() * mean_cores)
    )
    target_cores = sum(cluster.pool(p).total_cores for p in burst_pools)
    burst_rate = (
        burst_overload * target_cores / (probe.burst_runtime.mean() * mean_cores)
    )
    model = replace(
        probe,
        base_rate=base_rate,
        burst=replace(probe.burst, burst_rate=burst_rate),
    )
    trace = WorkloadGenerator(model, streams.spawn("workload")).generate()
    return MultiSiteScenario(
        name=f"multi-site-{site_count}",
        topology=topology,
        cluster=cluster,
        trace=trace,
        seed=seed,
        burst_site=burst_site,
    )
