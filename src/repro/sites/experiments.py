"""Inter-site rescheduling experiments (the paper's future work).

The conclusion proposes "more sophisticated rescheduling strategies
that combine job duplication techniques and inter-site rescheduling"
and notes the simulator should "incorporate network delays and other
rescheduling associated overheads".  :func:`inter_site_ablation` runs
exactly that study: a burst pins down one site while the others idle,
and we compare

* **NoRes** — the baseline;
* **local-only** rescheduling (strictly intra-site, the deployed
  NetBatch capability);
* **local-first** rescheduling (go remote only when no local pool is
  acceptable);
* **transfer-aware** inter-site rescheduling (remote pools compete on
  predicted start time including the WAN latency),

all under an :class:`~repro.sites.overheads.InterSiteOverhead` that
charges real minutes for crossing sites.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.policies import NoRescheduling, RescheduleSuspendedAndWaiting
from ..metrics.summary import PerformanceSummary, summarize
from ..schedulers.initial import RoundRobinScheduler
from ..simulator.config import SimulationConfig
from ..simulator.simulation import run_simulation
from .overheads import InterSiteOverhead
from .scenario import MultiSiteScenario, multi_site_scenario
from .selectors import LocalFirstSelector, TransferAwareSelector

__all__ = ["inter_site_ablation"]


def inter_site_ablation(
    scale: float = 0.2,
    seed: int = 2010,
    transfer_minutes: float = 45.0,
    wait_threshold: float = 30.0,
    scenario: Optional[MultiSiteScenario] = None,
) -> Tuple[MultiSiteScenario, Tuple[PerformanceSummary, ...]]:
    """Run the inter-site strategy comparison; returns (scenario, rows)."""
    if scenario is None:
        scenario = multi_site_scenario(
            scale=scale, seed=seed, transfer_minutes=transfer_minutes
        )
    topology = scenario.topology
    overhead = InterSiteOverhead(topology=topology, per_gb_minutes=1.0)
    policies = [
        NoRescheduling(),
        RescheduleSuspendedAndWaiting(
            LocalFirstSelector(topology, allow_remote=False),
            wait_threshold,
            name="LocalOnly",
        ),
        RescheduleSuspendedAndWaiting(
            LocalFirstSelector(topology, allow_remote=True),
            wait_threshold,
            name="LocalFirst",
        ),
        RescheduleSuspendedAndWaiting(
            TransferAwareSelector(topology),
            wait_threshold,
            name="TransferAware",
        ),
    ]
    summaries = []
    for policy in policies:
        result = run_simulation(
            scenario.trace,
            scenario.cluster,
            policy=policy,
            initial_scheduler=RoundRobinScheduler(),
            config=SimulationConfig(
                strict=False, record_samples=False, restart_overhead=overhead
            ),
        )
        summaries.append(summarize(result))
    return scenario, tuple(summaries)
