"""Multi-site topology: sites, pool-to-site mapping, transfer latencies.

NetBatch is "deployed live on tens of thousands of machines that are
globally distributed at various data centers ... hundreds of machine
clusters called pools, distributed globally at dozens of data centers
with varying wide-area network characteristics" (Sections 1-2), and the
paper's conclusion names **inter-site rescheduling** as future work.

A :class:`SiteTopology` layers sites over an ordinary
:class:`~repro.workload.cluster.ClusterSpec`: the simulator stays
single-cluster (pools are pools), while the topology answers the two
questions inter-site policies need — *which site does this pool belong
to* and *how long does moving a job between these pools take*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..errors import ClusterError, ConfigurationError
from ..workload.cluster import ClusterSpec, PoolSpec

__all__ = ["SiteSpec", "SiteTopology"]


@dataclass(frozen=True)
class SiteSpec:
    """One site: a named group of physical pools."""

    site_id: str
    pools: Tuple[PoolSpec, ...]

    def __post_init__(self) -> None:
        if not self.site_id:
            raise ClusterError("site_id may not be empty")
        if not self.pools:
            raise ClusterError(f"site {self.site_id}: needs at least one pool")

    @property
    def pool_ids(self) -> Tuple[str, ...]:
        """Pool ids in the site, in declaration order."""
        return tuple(p.pool_id for p in self.pools)


class SiteTopology:
    """Sites over a flat cluster, with pairwise transfer latencies.

    Args:
        sites: the sites, in declaration order (which becomes the
            round-robin order of the flattened cluster).
        transfer_minutes: minutes to move a job between two *different*
            sites, either a constant or a mapping from unordered site
            pairs (frozensets are not required; both ``(a, b)`` and
            ``(b, a)`` are looked up).  Intra-site moves cost zero.
    """

    def __init__(
        self,
        sites: Sequence[SiteSpec],
        transfer_minutes=30.0,
    ) -> None:
        if not sites:
            raise ClusterError("a topology needs at least one site")
        ids = [s.site_id for s in sites]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"duplicate site ids: {sorted(ids)}")
        self._sites: Tuple[SiteSpec, ...] = tuple(sites)
        self._site_of: Dict[str, str] = {}
        for site in self._sites:
            for pool in site.pools:
                if pool.pool_id in self._site_of:
                    raise ClusterError(
                        f"pool {pool.pool_id} appears in more than one site"
                    )
                self._site_of[pool.pool_id] = site.site_id
        if isinstance(transfer_minutes, Mapping):
            self._pair_latency: Optional[Dict[Tuple[str, str], float]] = {}
            for (a, b), minutes in transfer_minutes.items():
                if minutes < 0:
                    raise ConfigurationError("transfer minutes must be >= 0")
                self._pair_latency[(a, b)] = float(minutes)
                self._pair_latency[(b, a)] = float(minutes)
            self._default_latency = None
        else:
            if transfer_minutes < 0:
                raise ConfigurationError("transfer minutes must be >= 0")
            self._pair_latency = None
            self._default_latency = float(transfer_minutes)

    # -- structure ----------------------------------------------------------------

    @property
    def sites(self) -> Tuple[SiteSpec, ...]:
        """The sites, in declaration order."""
        return self._sites

    @property
    def site_ids(self) -> Tuple[str, ...]:
        """Site ids, in declaration order."""
        return tuple(s.site_id for s in self._sites)

    def cluster(self) -> ClusterSpec:
        """The flattened single-cluster view the simulator runs on."""
        pools = [pool for site in self._sites for pool in site.pools]
        return ClusterSpec(pools)

    def site_of(self, pool_id: str) -> str:
        """The site a pool belongs to."""
        try:
            return self._site_of[pool_id]
        except KeyError:
            raise ClusterError(f"pool {pool_id!r} is not in this topology") from None

    def pools_in_site(self, site_id: str) -> Tuple[str, ...]:
        """Pool ids of one site."""
        for site in self._sites:
            if site.site_id == site_id:
                return site.pool_ids
        raise ClusterError(f"unknown site id: {site_id!r}")

    def local_pools(self, pool_id: str) -> Tuple[str, ...]:
        """Pool ids co-located with ``pool_id`` (including itself)."""
        return self.pools_in_site(self.site_of(pool_id))

    def same_site(self, pool_a: str, pool_b: str) -> bool:
        """Whether two pools share a site."""
        return self.site_of(pool_a) == self.site_of(pool_b)

    # -- latency -------------------------------------------------------------------

    def transfer_minutes(self, from_pool: str, to_pool: str) -> float:
        """Minutes to move a job between two pools (0 within a site)."""
        site_a = self.site_of(from_pool)
        site_b = self.site_of(to_pool)
        if site_a == site_b:
            return 0.0
        if self._pair_latency is not None:
            try:
                return self._pair_latency[(site_a, site_b)]
            except KeyError:
                raise ConfigurationError(
                    f"no transfer latency configured between sites "
                    f"{site_a!r} and {site_b!r}"
                ) from None
        return self._default_latency

    def __repr__(self) -> str:
        return (
            f"SiteTopology(sites={len(self._sites)}, "
            f"pools={sum(len(s.pools) for s in self._sites)})"
        )
