"""Topology-aware move overheads.

The paper's planned simulator improvement — "network delays and other
rescheduling associated overheads" — matters most *between* sites:
"data synchronization and large data transfers" accompany a job that
restarts in another data center.  :class:`InterSiteOverhead` charges an
intra-site move like an ordinary restart and adds the topology's
transfer latency (plus a per-GB term) for cross-site moves.

The engine duck-types on :meth:`delay_between`; any object with that
method can serve as a move-overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.overheads import NO_OVERHEAD, RestartOverhead
from ..errors import ConfigurationError
from .topology import SiteTopology

__all__ = ["InterSiteOverhead"]


@dataclass(frozen=True)
class InterSiteOverhead:
    """Move delay = local overhead + inter-site transfer when crossing.

    Attributes:
        topology: the site topology providing pairwise latencies.
        local: overhead applied to every move (defaults to none, the
            paper's intra-site assumption).
        per_gb_minutes: additional cross-site cost per GB of job
            footprint (input data and binaries travelling over the WAN).
    """

    topology: SiteTopology
    local: RestartOverhead = field(default_factory=lambda: NO_OVERHEAD)
    per_gb_minutes: float = 0.0

    def __post_init__(self) -> None:
        if self.per_gb_minutes < 0:
            raise ConfigurationError("per_gb_minutes must be >= 0")

    def delay_for(self, job_spec) -> float:
        """Context-free fallback: the local move cost only.

        Used by the engine when the origin pool is unknown (first
        placements are not moves, so this path is rare).
        """
        return self.local.delay_for(job_spec)

    def delay_between(self, job_spec, origin_pool: str, target_pool: str) -> float:
        """Delay for moving ``job_spec`` from ``origin`` to ``target``."""
        delay = self.local.delay_for(job_spec)
        if not self.topology.same_site(origin_pool, target_pool):
            delay += self.topology.transfer_minutes(origin_pool, target_pool)
            delay += self.per_gb_minutes * job_spec.memory_gb
        return delay

    @property
    def is_free(self) -> bool:
        """True when no move ever incurs any delay."""
        if not self.local.is_free or self.per_gb_minutes > 0:
            return False
        pools = [p for site in self.topology.sites for p in site.pool_ids]
        return all(
            self.topology.transfer_minutes(a, b) == 0.0
            for a in pools
            for b in pools
        )
