"""Site-aware alternate-pool selectors.

Inter-site rescheduling changes the selection problem: a remote pool
may be emptier, but reaching it costs a WAN transfer.  Two selectors
capture the design space:

* :class:`LocalFirstSelector` — only go remote when no local pool is
  acceptable (the conservative deployment the paper's operators would
  likely start with);
* :class:`TransferAwareSelector` — score every candidate by expected
  time-to-start *including* the transfer latency, so a far-away empty
  pool competes fairly against a nearby busy one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.context import SystemView
from ..core.selectors import LowestUtilizationSelector, PoolSelector
from ..errors import ConfigurationError
from .topology import SiteTopology

__all__ = ["LocalFirstSelector", "TransferAwareSelector"]


@dataclass(frozen=True)
class LocalFirstSelector(PoolSelector):
    """Delegate to an inner selector, preferring same-site pools.

    The inner selector first sees only the candidates co-located with
    the job's current pool; only if it declines (no acceptable local
    pool) does it see the remote candidates.  With
    ``allow_remote=False`` the selector is strictly intra-site — the
    paper's current-deployment baseline, against which inter-site
    rescheduling is the proposed extension.
    """

    topology: SiteTopology
    inner: PoolSelector = field(default_factory=LowestUtilizationSelector)
    allow_remote: bool = True

    def select(
        self, candidates: Sequence[str], current_pool: Optional[str], view: SystemView
    ) -> Optional[str]:
        if current_pool is None:
            return self.inner.select(candidates, current_pool, view)
        local = set(self.topology.local_pools(current_pool))
        local_candidates = [p for p in candidates if p in local]
        choice = self.inner.select(local_candidates, current_pool, view)
        if choice is not None or not self.allow_remote:
            return choice
        remote_candidates = [p for p in candidates if p not in local]
        if not remote_candidates:
            return None
        return self.inner.select(remote_candidates, current_pool, view)


@dataclass(frozen=True)
class TransferAwareSelector(PoolSelector):
    """Minimise predicted time-to-start including the transfer latency.

    Score(pool) = predicted queueing wait (backlog over service rate,
    as in :class:`~repro.core.selectors.PredictedWaitSelector`) plus the
    topology's transfer minutes from the job's current pool.  The move
    is suppressed unless the best alternative beats staying put by
    ``min_gain_minutes``, so marginal cross-site moves don't churn.
    """

    topology: SiteTopology
    mean_runtime: float = 120.0
    min_gain_minutes: float = 5.0

    def __post_init__(self) -> None:
        if self.mean_runtime <= 0:
            raise ConfigurationError("mean_runtime must be > 0")
        if self.min_gain_minutes < 0:
            raise ConfigurationError("min_gain_minutes must be >= 0")

    def _queue_wait(self, snapshot) -> float:
        net_backlog = (
            snapshot.waiting_jobs + snapshot.suspended_jobs - snapshot.free_cores
        )
        if net_backlog <= 0:
            return 0.0
        return net_backlog * self.mean_runtime / max(snapshot.total_cores, 1)

    def select(
        self, candidates: Sequence[str], current_pool: Optional[str], view: SystemView
    ) -> Optional[str]:
        others = self._others(candidates, current_pool)
        if not others:
            return None

        def score(pool_id: str) -> float:
            wait = self._queue_wait(view.pool(pool_id))
            if current_pool is not None:
                wait += self.topology.transfer_minutes(current_pool, pool_id)
            return wait

        best = min(others, key=lambda pid: (score(pid), pid))
        if current_pool is not None:
            staying = self._queue_wait(view.pool(current_pool))
            if score(best) + self.min_gain_minutes > staying:
                return None
        return best
