"""Multi-site NetBatch: topology, WAN overheads, inter-site rescheduling.

Implements the paper's inter-site future work on top of the single-site
simulator: sites are groups of pools with pairwise transfer latencies;
site-aware selectors and overhead models plug into the ordinary policy
and engine interfaces.
"""

from .experiments import inter_site_ablation
from .overheads import InterSiteOverhead
from .scenario import MultiSiteScenario, multi_site_scenario, rename_pools
from .selectors import LocalFirstSelector, TransferAwareSelector
from .topology import SiteSpec, SiteTopology

__all__ = [
    "inter_site_ablation",
    "InterSiteOverhead",
    "MultiSiteScenario",
    "multi_site_scenario",
    "rename_pools",
    "LocalFirstSelector",
    "TransferAwareSelector",
    "SiteSpec",
    "SiteTopology",
]
