"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  The sub-classes are grouped by the subsystem that raises
them; they carry plain human-readable messages and, where useful,
structured attributes (e.g. the offending job id).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent.

    Raised during validation of simulation, workload or cluster
    configuration, before any simulation work starts.
    """


class TraceError(ReproError):
    """A workload trace is malformed (unsorted, negative times, ...)."""


class ClusterError(ReproError):
    """A cluster specification is malformed (empty pool, bad sizes, ...)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the engine (or a hand-built entity
    graph that bypassed validation), never a property of the workload.
    """


class SchedulingError(SimulationError):
    """A dispatch/preemption invariant was violated inside a pool."""


class JobStateError(SimulationError):
    """An illegal job state transition was attempted.

    Attributes:
        job_id: identifier of the job whose transition failed.
        current: name of the state the job was in.
        attempted: name of the transition that was attempted.
    """

    def __init__(self, job_id: int, current: str, attempted: str) -> None:
        self.job_id = job_id
        self.current = current
        self.attempted = attempted
        super().__init__(
            f"job {job_id}: illegal transition {attempted!r} from state {current!r}"
        )


class UnschedulableJobError(ReproError):
    """A job is not eligible on any machine of any candidate pool.

    NetBatch's virtual pool manager cycles a job through its candidate
    pools; a pool returns the job when *no* machine in the pool can ever
    satisfy the job's static requirements (OS family, total memory,
    total cores).  When every candidate pool returns the job there is no
    point retrying, and the simulator surfaces the problem as this
    error (or records the job as rejected when the engine is configured
    to be lenient).

    Attributes:
        job_id: identifier of the unschedulable job.
    """

    def __init__(self, job_id: int, detail: str = "") -> None:
        self.job_id = job_id
        message = f"job {job_id} is not eligible on any machine of any candidate pool"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class UnknownPoolError(ReproError):
    """A pool id was referenced that does not exist in the cluster."""

    def __init__(self, pool_id: str) -> None:
        self.pool_id = pool_id
        super().__init__(f"unknown pool id: {pool_id!r}")


class UnknownPolicyError(ReproError):
    """A rescheduling policy name was not found in the registry."""

    def __init__(self, name: str, known: tuple = ()) -> None:
        self.name = name
        hint = f" (known: {', '.join(sorted(known))})" if known else ""
        super().__init__(f"unknown rescheduling policy: {name!r}{hint}")


class ExperimentExecutionError(ReproError):
    """One cell of an experiment grid failed.

    Raised by the experiment execution backend when building or running
    a single (scenario, policy, scheduler) cell fails.  The error names
    the failing cell and keeps every cell that had already completed, so
    a long sweep does not lose its finished work.

    Attributes:
        scenario_name: scenario of the failing cell.
        policy_name: policy of the failing cell (the factory's name when
            the policy could not even be constructed).
        scheduler_name: initial scheduler of the failing cell.
        completed_cells: cells that finished before the failure, in grid
            order.
    """

    def __init__(
        self,
        scenario_name: str,
        policy_name: str,
        scheduler_name: str,
        cause: BaseException,
        completed_cells: tuple = (),
    ) -> None:
        self.scenario_name = scenario_name
        self.policy_name = policy_name
        self.scheduler_name = scheduler_name
        self.completed_cells = tuple(completed_cells)
        super().__init__(
            f"experiment cell (scenario={scenario_name!r}, policy={policy_name!r}, "
            f"scheduler={scheduler_name!r}) failed: {type(cause).__name__}: {cause}"
        )


class CacheError(ReproError):
    """The on-disk experiment result cache is misconfigured."""
