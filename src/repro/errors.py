"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  The sub-classes are grouped by the subsystem that raises
them; they carry plain human-readable messages and, where useful,
structured attributes (e.g. the offending job id).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent.

    Raised during validation of simulation, workload or cluster
    configuration, before any simulation work starts.
    """


class TraceError(ReproError):
    """A workload trace is malformed (unsorted, negative times, ...)."""


class ClusterError(ReproError):
    """A cluster specification is malformed (empty pool, bad sizes, ...)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the engine (or a hand-built entity
    graph that bypassed validation), never a property of the workload.
    """


class SchedulingError(SimulationError):
    """A dispatch/preemption invariant was violated inside a pool."""


class JobStateError(SimulationError):
    """An illegal job state transition was attempted.

    Attributes:
        job_id: identifier of the job whose transition failed.
        current: name of the state the job was in.
        attempted: name of the transition that was attempted.
    """

    def __init__(self, job_id: int, current: str, attempted: str) -> None:
        self.job_id = job_id
        self.current = current
        self.attempted = attempted
        super().__init__(
            f"job {job_id}: illegal transition {attempted!r} from state {current!r}"
        )


class UnschedulableJobError(ReproError):
    """A job is not eligible on any machine of any candidate pool.

    NetBatch's virtual pool manager cycles a job through its candidate
    pools; a pool returns the job when *no* machine in the pool can ever
    satisfy the job's static requirements (OS family, total memory,
    total cores).  When every candidate pool returns the job there is no
    point retrying, and the simulator surfaces the problem as this
    error (or records the job as rejected when the engine is configured
    to be lenient).

    Attributes:
        job_id: identifier of the unschedulable job.
    """

    def __init__(self, job_id: int, detail: str = "") -> None:
        self.job_id = job_id
        message = f"job {job_id} is not eligible on any machine of any candidate pool"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class UnknownPoolError(ReproError):
    """A pool id was referenced that does not exist in the cluster."""

    def __init__(self, pool_id: str) -> None:
        self.pool_id = pool_id
        super().__init__(f"unknown pool id: {pool_id!r}")


class UnknownPolicyError(ReproError):
    """A rescheduling policy name was not found in the registry."""

    def __init__(self, name: str, known: tuple = ()) -> None:
        self.name = name
        hint = f" (known: {', '.join(sorted(known))})" if known else ""
        super().__init__(f"unknown rescheduling policy: {name!r}{hint}")
