"""Figure 3: decomposition of average wasted completion time.

The paper's Figure 3 is a stacked bar chart, one bar per strategy
(NoRes, ResSusUtil, ResSusRand) under normal load, decomposing AvgWCT
into wait time, suspend time, and wasted-time-by-rescheduling.  The
qualitative claims it supports:

* NoRes has no rescheduling waste but a large suspend component;
* ResSusUtil trades the suspend component for a small rescheduling
  cost, a clearly profitable trade;
* ResSusRand accumulates a large wait component (restarts into loaded
  pools), the worst total.

:func:`waste_decomposition` produces the same three stacked bars from
three simulation results.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..metrics.summary import PerformanceSummary, WasteBreakdown, summarize
from ..simulator.results import SimulationResult

__all__ = ["waste_decomposition", "WasteFigure"]


class WasteFigure:
    """The data behind Figure 3: one waste breakdown per strategy."""

    def __init__(self, summaries: Sequence[PerformanceSummary]) -> None:
        self._summaries = list(summaries)

    @property
    def summaries(self) -> List[PerformanceSummary]:
        """The per-strategy summaries, in given order."""
        return list(self._summaries)

    def bars(self) -> Dict[str, WasteBreakdown]:
        """strategy name -> waste breakdown (the stacked bar)."""
        return {s.policy_name: s.waste for s in self._summaries}

    def series(self) -> Dict[str, List[float]]:
        """Plot-ready series: component name -> values per strategy.

        Ordered as the paper stacks them: wait, suspend, rescheduling.
        """
        return {
            "wait_time": [s.waste.wait_time for s in self._summaries],
            "suspend_time": [s.waste.suspend_time for s in self._summaries],
            "resched_time": [s.waste.resched_time for s in self._summaries],
        }

    def strategy_names(self) -> List[str]:
        """Bar labels, in order."""
        return [s.policy_name for s in self._summaries]


def waste_decomposition(results: Sequence[SimulationResult]) -> WasteFigure:
    """Build the Figure-3 data from one result per strategy."""
    return WasteFigure([summarize(r) for r in results])
