"""Task-level analysis (the paper's Section-2.2 motivation).

"Some classes of chip simulation work has logical notions of *tasks*,
each of which represents a set of jobs completing a specific function.
Typically, 100% or a high percentage of jobs associated with a
particular task needs to complete before the task result (combined
from the results of those jobs) can be useful.  Often when one or more
of those low priority jobs cannot complete in a timely fashion,
engineers lose productivity and/or system resources are wasted."

The workload generator groups low-priority jobs into tasks
(``task_size`` in :class:`~repro.workload.generator.WorkloadModel`);
this module measures what the quote describes: a task completes when a
required fraction of its jobs has completed, so a single suspended
straggler inflates the whole task's turnaround.  Comparing task-level
metrics across policies shows rescheduling's *engineering-productivity*
benefit, which per-job averages understate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..simulator.results import JobRecord, SimulationResult

__all__ = ["TaskRecord", "TaskAnalysis", "analyze_tasks"]


@dataclass(frozen=True)
class TaskRecord:
    """One logical task's outcome.

    Attributes:
        task_id: the task identifier from the trace.
        job_count: jobs belonging to the task.
        submit_minute: earliest job submission.
        completion_minute: when the required fraction of jobs had
            finished.
        completion_time: ``completion_minute - submit_minute``.
        suspended_jobs: how many of the task's jobs were suspended.
        straggler_was_suspended: whether the job that completed the
            task (the last one needed) had been suspended — the paper's
            "one low priority job cannot complete in a timely fashion"
            situation.
    """

    task_id: int
    job_count: int
    submit_minute: float
    completion_minute: float
    completion_time: float
    suspended_jobs: int
    straggler_was_suspended: bool


@dataclass(frozen=True)
class TaskAnalysis:
    """Aggregate task-level metrics for one simulation run.

    Attributes:
        tasks: per-task records.
        avg_task_completion: mean task completion time.
        avg_member_job_completion: mean completion time of the jobs
            belonging to tasks (for the amplification ratio).
        amplification: ``avg_task_completion / avg_member_job_completion``
            — how much waiting-for-the-whole-task costs over the
            average member job.
        tasks_delayed_by_suspension: fraction of tasks whose completing
            straggler had been suspended.
    """

    tasks: Tuple[TaskRecord, ...]
    avg_task_completion: float
    avg_member_job_completion: float
    amplification: float
    tasks_delayed_by_suspension: float

    def __len__(self) -> int:
        return len(self.tasks)


def analyze_tasks(
    result: SimulationResult, completion_fraction: float = 1.0
) -> TaskAnalysis:
    """Compute task-level metrics from a simulation result.

    Args:
        result: the run to analyse (its trace must carry task ids).
        completion_fraction: the fraction of a task's jobs that must
            finish for the task to count as complete (the paper: "100%
            or a high percentage").
    """
    if not 0.0 < completion_fraction <= 1.0:
        raise ConfigurationError(
            f"completion_fraction must be in (0, 1], got {completion_fraction}"
        )
    grouped: Dict[int, List[JobRecord]] = {}
    for record in result.completed_records():
        if record.task_id is not None:
            grouped.setdefault(record.task_id, []).append(record)
    if not grouped:
        raise ConfigurationError(
            "no tasks in this run; generate the workload with task_size > 0"
        )

    tasks: List[TaskRecord] = []
    member_completion_sum = 0.0
    member_count = 0
    for task_id, records in sorted(grouped.items()):
        needed = max(1, int(round(completion_fraction * len(records))))
        by_finish = sorted(records, key=lambda r: r.finish_minute)
        straggler = by_finish[needed - 1]
        submit = min(r.submit_minute for r in records)
        tasks.append(
            TaskRecord(
                task_id=task_id,
                job_count=len(records),
                submit_minute=submit,
                completion_minute=straggler.finish_minute,
                completion_time=straggler.finish_minute - submit,
                suspended_jobs=sum(1 for r in records if r.was_suspended),
                straggler_was_suspended=straggler.was_suspended,
            )
        )
        member_completion_sum += sum(r.completion_time for r in records)
        member_count += len(records)

    avg_task = sum(t.completion_time for t in tasks) / len(tasks)
    avg_member = member_completion_sum / member_count
    return TaskAnalysis(
        tasks=tuple(tasks),
        avg_task_completion=avg_task,
        avg_member_job_completion=avg_member,
        amplification=avg_task / avg_member if avg_member else 0.0,
        tasks_delayed_by_suspension=(
            sum(1 for t in tasks if t.straggler_was_suspended) / len(tasks)
        ),
    )
