"""Figure 2: the CDF of job suspension time.

The paper plots, over a year of traces from a 20-pool site, the CDF of
per-job suspension time for all suspended jobs and reports:

* median suspension time ≈ 437 minutes (7.3 hours),
* average suspension time ≈ 905 minutes (15 hours),
* 20% of suspended jobs suspended for more than 1,100 minutes,
* a long-tailed distribution.

:func:`suspension_time_cdf` recomputes the same CDF from a simulation
result (typically a long-horizon NoRes run), and
:func:`SuspensionAnalysis` packages the headline statistics for direct
comparison with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from ..metrics.cdf import EmpiricalCDF
from ..simulator.results import SimulationResult

__all__ = ["SuspensionAnalysis", "analyze_suspension", "suspension_time_cdf"]


def suspension_time_cdf(result: SimulationResult) -> EmpiricalCDF:
    """CDF of total suspension time over jobs suspended at least once."""
    values = [r.suspend_time for r in result.suspended_records()]
    if not values:
        raise ConfigurationError(
            "no job was suspended in this run; Figure 2 needs a workload "
            "with preemption (try a scenario preset)"
        )
    return EmpiricalCDF(values)


@dataclass(frozen=True)
class SuspensionAnalysis:
    """Headline suspension statistics (the numbers quoted in Section 2.2).

    Attributes:
        suspended_jobs: how many jobs were suspended at least once.
        median_minutes: median suspension time.
        mean_minutes: mean suspension time.
        p80_minutes: 80th percentile (the paper: "20% of all [suspended]
            jobs are suspended for more than 1100 minutes").
        max_minutes: longest total suspension observed.
        mean_suspensions_per_job: how often a suspended job is suspended
            ("low priority jobs may get suspended more than once").
    """

    suspended_jobs: int
    median_minutes: float
    mean_minutes: float
    p80_minutes: float
    max_minutes: float
    mean_suspensions_per_job: float

    def rows(self) -> List[Tuple[str, float]]:
        """(label, value) pairs for report rendering."""
        return [
            ("suspended jobs", float(self.suspended_jobs)),
            ("median suspension (min)", self.median_minutes),
            ("mean suspension (min)", self.mean_minutes),
            ("80th percentile (min)", self.p80_minutes),
            ("max suspension (min)", self.max_minutes),
            ("mean suspensions/job", self.mean_suspensions_per_job),
        ]


def analyze_suspension(result: SimulationResult) -> SuspensionAnalysis:
    """Compute :class:`SuspensionAnalysis` from a simulation result."""
    records = list(result.suspended_records())
    cdf = suspension_time_cdf(result)
    return SuspensionAnalysis(
        suspended_jobs=len(records),
        median_minutes=cdf.median,
        mean_minutes=cdf.mean,
        p80_minutes=cdf.percentile(80.0),
        max_minutes=cdf.maximum,
        mean_suspensions_per_job=sum(r.suspension_count for r in records) / len(records),
    )
