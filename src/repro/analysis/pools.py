"""Per-pool usage analysis.

Section 2.3's third observation is about *imbalance*: "latency
sensitive jobs with high priority are usually configured to only run in
specific sets of physical pools ... those pools are quickly overwhelmed
and lots of low priority jobs are suspended.  However, during the same
time period, other pools may be barely utilized."  This module
quantifies that from the per-pool sample series: per-pool utilization
statistics, saturation episodes, and an imbalance measure showing hot
pools coexisting with idle capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..simulator.results import SimulationResult, StateSample

__all__ = ["PoolUsage", "SaturationEpisode", "PoolUsageAnalysis", "analyze_pools"]


@dataclass(frozen=True)
class PoolUsage:
    """Usage statistics of one pool over the sampled horizon.

    Attributes:
        pool_id: the pool.
        total_cores: the pool's capacity.
        mean_utilization: time-average busy fraction.
        peak_utilization: maximum busy fraction observed.
        mean_waiting: time-average queued jobs.
        peak_waiting: maximum queued jobs observed.
        saturated_fraction: fraction of samples at >= 95% utilization.
    """

    pool_id: str
    total_cores: int
    mean_utilization: float
    peak_utilization: float
    mean_waiting: float
    peak_waiting: int
    saturated_fraction: float


@dataclass(frozen=True)
class SaturationEpisode:
    """A contiguous period during which one pool stayed saturated.

    Attributes:
        pool_id: the saturated pool.
        start_minute: first saturated sample.
        end_minute: last saturated sample.
        cluster_utilization_during: mean cluster-wide utilization over
            the episode — the paper's point is that this stays moderate
            while individual pools are overwhelmed.
    """

    pool_id: str
    start_minute: float
    end_minute: float
    cluster_utilization_during: float

    @property
    def duration(self) -> float:
        """Episode length in minutes."""
        return self.end_minute - self.start_minute


@dataclass(frozen=True)
class PoolUsageAnalysis:
    """Per-pool statistics plus imbalance measures.

    Attributes:
        pools: per-pool usage, in the cluster's pool order.
        episodes: saturation episodes of at least ``min_episode``
            minutes, across all pools, in start order.
        mean_spread: time-average (max - min) pool utilization — the
            imbalance the round-robin initial scheduler cannot see.
        hot_while_idle_fraction: fraction of samples where some pool is
            saturated while cluster utilization is below 60% — the
            quantified version of the paper's observation.
    """

    pools: Tuple[PoolUsage, ...]
    episodes: Tuple[SaturationEpisode, ...]
    mean_spread: float
    hot_while_idle_fraction: float

    def pool(self, pool_id: str) -> PoolUsage:
        """Usage statistics for one pool."""
        for usage in self.pools:
            if usage.pool_id == pool_id:
                return usage
        raise ConfigurationError(f"no pool {pool_id!r} in this analysis")

    def hottest(self) -> PoolUsage:
        """The pool with the highest mean utilization."""
        return max(self.pools, key=lambda p: p.mean_utilization)

    def coldest(self) -> PoolUsage:
        """The pool with the lowest mean utilization."""
        return min(self.pools, key=lambda p: p.mean_utilization)


def analyze_pools(
    result: SimulationResult,
    pool_cores: Optional[Sequence[int]] = None,
    saturation_threshold: float = 0.95,
    min_episode: float = 30.0,
    up_to_minute: Optional[float] = None,
) -> PoolUsageAnalysis:
    """Compute per-pool usage statistics from a simulation result.

    Args:
        result: a run with sampling enabled.
        pool_cores: per-pool core counts in result.pool_ids order; when
            omitted they are inferred from the peak busy cores observed
            (exact whenever each pool was fully busy at least once).
        saturation_threshold: busy fraction counting as saturated.
        min_episode: minimum saturated minutes to report as an episode.
        up_to_minute: ignore samples after this minute (drain tail).
    """
    samples: Sequence[StateSample] = result.samples
    if up_to_minute is not None:
        samples = [s for s in samples if s.minute <= up_to_minute]
    samples = [s for s in samples if s.per_pool_busy]
    if not samples:
        raise ConfigurationError("no samples with per-pool data to analyse")
    pool_count = len(result.pool_ids)
    if pool_cores is None:
        inferred = [0] * pool_count
        for sample in samples:
            for index, busy in enumerate(sample.per_pool_busy):
                if busy > inferred[index]:
                    inferred[index] = busy
        pool_cores = [max(1, cores) for cores in inferred]
    if len(pool_cores) != pool_count:
        raise ConfigurationError(
            f"pool_cores has {len(pool_cores)} entries for {pool_count} pools"
        )

    count = len(samples)
    busy_sums = [0.0] * pool_count
    waiting_sums = [0.0] * pool_count
    peak_util = [0.0] * pool_count
    peak_waiting = [0] * pool_count
    saturated_counts = [0] * pool_count
    spread_sum = 0.0
    hot_while_idle = 0

    episodes: List[SaturationEpisode] = []
    open_start: Dict[int, float] = {}
    open_util_sum: Dict[int, float] = {}
    open_samples: Dict[int, int] = {}

    def close_episode(index: int, end_minute: float) -> None:
        start = open_start.pop(index)
        util_sum = open_util_sum.pop(index)
        n = open_samples.pop(index)
        if end_minute - start >= min_episode:
            episodes.append(
                SaturationEpisode(
                    pool_id=result.pool_ids[index],
                    start_minute=start,
                    end_minute=end_minute,
                    cluster_utilization_during=util_sum / n,
                )
            )

    for sample in samples:
        utils = []
        has_waiting = len(sample.per_pool_waiting) == pool_count
        any_saturated = False
        for index in range(pool_count):
            busy = sample.per_pool_busy[index]
            utilization = busy / pool_cores[index]
            utils.append(utilization)
            busy_sums[index] += utilization
            if utilization > peak_util[index]:
                peak_util[index] = utilization
            if has_waiting:
                waiting = sample.per_pool_waiting[index]
                waiting_sums[index] += waiting
                if waiting > peak_waiting[index]:
                    peak_waiting[index] = waiting
            if utilization >= saturation_threshold:
                any_saturated = True
                saturated_counts[index] += 1
                if index not in open_start:
                    open_start[index] = sample.minute
                    open_util_sum[index] = 0.0
                    open_samples[index] = 0
                open_util_sum[index] += sample.utilization
                open_samples[index] += 1
            elif index in open_start:
                close_episode(index, sample.minute)
        spread_sum += max(utils) - min(utils)
        if any_saturated and sample.utilization < 0.6:
            hot_while_idle += 1
    last_minute = samples[-1].minute
    for index in list(open_start):
        close_episode(index, last_minute)

    pools = tuple(
        PoolUsage(
            pool_id=result.pool_ids[index],
            total_cores=pool_cores[index],
            mean_utilization=busy_sums[index] / count,
            peak_utilization=peak_util[index],
            mean_waiting=waiting_sums[index] / count,
            peak_waiting=peak_waiting[index],
            saturated_fraction=saturated_counts[index] / count,
        )
        for index in range(pool_count)
    )
    episodes.sort(key=lambda e: e.start_minute)
    return PoolUsageAnalysis(
        pools=pools,
        episodes=tuple(episodes),
        mean_spread=spread_sum / count,
        hot_while_idle_fraction=hot_while_idle / count,
    )
