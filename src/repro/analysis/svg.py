"""Dependency-free SVG rendering of the paper's figures.

The repository avoids plotting dependencies, but hand-inspecting figure
*shapes* is much easier graphically.  These helpers emit small,
self-contained SVG documents for the three figures:

* :func:`cdf_svg` — Figure 2's suspension-time CDF (log-x line chart);
* :func:`stacked_bars_svg` — Figure 3's waste decomposition;
* :func:`timeseries_svg` — Figure 4's dual-axis utilization /
  suspension series.

Only stdlib string formatting is used; the output opens in any browser.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..metrics.summary import PerformanceSummary
from ..metrics.timeseries import WindowedPoint

__all__ = ["cdf_svg", "stacked_bars_svg", "timeseries_svg", "write_svg"]

PathLike = Union[str, Path]

_WIDTH = 720
_HEIGHT = 420
_MARGIN = 60
_SERIES_COLORS = ("#4878d0", "#ee854a", "#6acc64", "#d65f5f")


def write_svg(svg: str, path: PathLike) -> None:
    """Write an SVG document produced by the renderers to disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)


def _header(title: str) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="20" text-anchor="middle" '
        f'font-size="15">{title}</text>',
    ]


def _frame() -> str:
    x0, y0 = _MARGIN, _MARGIN
    x1, y1 = _WIDTH - _MARGIN, _HEIGHT - _MARGIN
    return (
        f'<polyline points="{x0},{y0} {x0},{y1} {x1},{y1}" fill="none" '
        f'stroke="#333" stroke-width="1"/>'
    )


def cdf_svg(
    points: Sequence[Tuple[float, float]],
    title: str = "CDF of job suspension time",
) -> str:
    """Render (value, fraction) CDF points as a log-x line chart."""
    if len(points) < 2:
        raise ConfigurationError("cdf_svg needs at least two points")
    values = [max(v, 0.1) for v, _ in points]
    log_lo = math.log10(min(values))
    log_hi = math.log10(max(values))
    span = max(log_hi - log_lo, 1e-9)
    x0, y0 = _MARGIN, _HEIGHT - _MARGIN
    plot_w = _WIDTH - 2 * _MARGIN
    plot_h = _HEIGHT - 2 * _MARGIN

    def x_of(value: float) -> float:
        return x0 + (math.log10(max(value, 0.1)) - log_lo) / span * plot_w

    def y_of(fraction: float) -> float:
        return y0 - fraction * plot_h

    path = " ".join(
        f"{x_of(v):.1f},{y_of(f):.1f}" for v, f in points
    )
    parts = _header(title)
    parts.append(_frame())
    parts.append(
        f'<polyline points="{path}" fill="none" stroke="{_SERIES_COLORS[0]}" '
        f'stroke-width="2"/>'
    )
    # decade gridlines and labels
    for decade in range(int(math.floor(log_lo)), int(math.ceil(log_hi)) + 1):
        value = 10.0**decade
        if not (min(values) <= value <= max(values)):
            continue
        x = x_of(value)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN}" x2="{x:.1f}" y2="{y0}" '
            f'stroke="#ddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{y0 + 18}" text-anchor="middle">'
            f"{value:g}</text>"
        )
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = y_of(fraction)
        parts.append(
            f'<text x="{x0 - 8}" y="{y + 4:.1f}" text-anchor="end">'
            f"{fraction * 100:.0f}%</text>"
        )
    parts.append(
        f'<text x="{_WIDTH / 2}" y="{_HEIGHT - 10}" text-anchor="middle">'
        f"suspension time (minutes, log scale)</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def stacked_bars_svg(
    summaries: Sequence[PerformanceSummary],
    title: str = "Average wasted completion time",
) -> str:
    """Render per-strategy waste decompositions as stacked bars."""
    if not summaries:
        raise ConfigurationError("stacked_bars_svg needs at least one summary")
    components = ("wait_time", "suspend_time", "resched_time")
    labels = ("wait", "suspend", "resched")
    top = max(s.avg_wct for s in summaries) or 1.0
    x0, y0 = _MARGIN, _HEIGHT - _MARGIN
    plot_w = _WIDTH - 2 * _MARGIN
    plot_h = _HEIGHT - 2 * _MARGIN
    slot = plot_w / len(summaries)
    bar_w = slot * 0.5

    parts = _header(title)
    parts.append(_frame())
    for index, summary in enumerate(summaries):
        x = x0 + index * slot + (slot - bar_w) / 2
        y = y0
        waste = summary.waste
        for color, component in zip(_SERIES_COLORS, components):
            value = getattr(waste, component)
            height = value / top * plot_h
            y -= height
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{height:.1f}" fill="{color}"/>'
            )
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{y0 + 18}" text-anchor="middle">'
            f"{summary.policy_name}</text>"
        )
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{y - 6:.1f}" text-anchor="middle">'
            f"{waste.total:.1f}</text>"
        )
    for index, (color, label) in enumerate(zip(_SERIES_COLORS, labels)):
        lx = _WIDTH - _MARGIN - 100
        ly = _MARGIN + 16 * index
        parts.append(f'<rect x="{lx}" y="{ly}" width="12" height="12" fill="{color}"/>')
        parts.append(f'<text x="{lx + 18}" y="{ly + 10}">{label}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def timeseries_svg(
    points: Sequence[WindowedPoint],
    title: str = "Suspension and utilization over time",
) -> str:
    """Render Figure 4: utilization (%) and suspended jobs, dual axis."""
    if len(points) < 2:
        raise ConfigurationError("timeseries_svg needs at least two points")
    x0, y0 = _MARGIN, _HEIGHT - _MARGIN
    plot_w = _WIDTH - 2 * _MARGIN
    plot_h = _HEIGHT - 2 * _MARGIN
    t_lo = points[0].window_start
    t_hi = points[-1].window_start or 1.0
    t_span = max(t_hi - t_lo, 1e-9)
    susp_top = max(p.suspended_jobs for p in points) or 1.0

    def x_of(minute: float) -> float:
        return x0 + (minute - t_lo) / t_span * plot_w

    util_path = " ".join(
        f"{x_of(p.window_start):.1f},{y0 - p.utilization * plot_h:.1f}"
        for p in points
    )
    susp_path = " ".join(
        f"{x_of(p.window_start):.1f},{y0 - p.suspended_jobs / susp_top * plot_h:.1f}"
        for p in points
    )
    parts = _header(title)
    parts.append(_frame())
    parts.append(
        f'<polyline points="{util_path}" fill="none" '
        f'stroke="{_SERIES_COLORS[0]}" stroke-width="1.5" '
        f'stroke-dasharray="4 3"/>'
    )
    parts.append(
        f'<polyline points="{susp_path}" fill="none" '
        f'stroke="{_SERIES_COLORS[3]}" stroke-width="1.5"/>'
    )
    for fraction in (0.0, 0.5, 1.0):
        y = y0 - fraction * plot_h
        parts.append(
            f'<text x="{x0 - 8}" y="{y + 4:.1f}" text-anchor="end" '
            f'fill="{_SERIES_COLORS[0]}">{fraction * 100:.0f}%</text>'
        )
        parts.append(
            f'<text x="{_WIDTH - _MARGIN + 8}" y="{y + 4:.1f}" '
            f'fill="{_SERIES_COLORS[3]}">{fraction * susp_top:.0f}</text>'
        )
    parts.append(
        f'<text x="{_WIDTH / 2}" y="{_HEIGHT - 10}" text-anchor="middle">'
        f"time (minutes); dashed = utilization, solid = suspended jobs</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)
