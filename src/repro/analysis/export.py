"""CSV export of experiment outputs.

The figures in this reproduction are data products; these helpers write
them (and the result tables) as CSV so any plotting tool can draw the
paper's charts.  Used by ``repro export`` on the CLI and available
programmatically.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, Union

from ..metrics.summary import PerformanceSummary
from ..simulator.results import SimulationResult
from .suspension import suspension_time_cdf
from .utilization import UtilizationAnalysis

__all__ = [
    "write_summaries_csv",
    "write_cdf_csv",
    "write_utilization_csv",
    "write_job_records_csv",
]

PathLike = Union[str, Path]


def write_summaries_csv(
    summaries: Sequence[PerformanceSummary], path: PathLike
) -> None:
    """Write table rows (one per strategy) in the paper's column layout."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "strategy",
                "scheduler",
                "jobs",
                "suspend_rate",
                "avg_ct_suspended",
                "avg_ct_all",
                "avg_st",
                "avg_wct",
                "waste_wait",
                "waste_suspend",
                "waste_resched",
            ]
        )
        for s in summaries:
            writer.writerow(
                [
                    s.policy_name,
                    s.scheduler_name,
                    s.job_count,
                    f"{s.suspend_rate:.6f}",
                    "" if s.avg_ct_suspended is None else f"{s.avg_ct_suspended:.3f}",
                    f"{s.avg_ct_all:.3f}",
                    "" if s.avg_st is None else f"{s.avg_st:.3f}",
                    f"{s.avg_wct:.3f}",
                    f"{s.waste.wait_time:.3f}",
                    f"{s.waste.suspend_time:.3f}",
                    f"{s.waste.resched_time:.3f}",
                ]
            )


def write_cdf_csv(
    result: SimulationResult, path: PathLike, points: int = 200
) -> None:
    """Write the Figure-2 suspension-time CDF as (minutes, fraction) rows."""
    cdf = suspension_time_cdf(result)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["suspension_minutes", "cumulative_fraction"])
        for value, fraction in cdf.points(count=min(points, max(2, len(cdf)))):
            writer.writerow([f"{value:.3f}", f"{fraction:.6f}"])


def write_utilization_csv(analysis: UtilizationAnalysis, path: PathLike) -> None:
    """Write the Figure-4 windowed series as CSV rows."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "window_start_minute",
                "utilization_pct",
                "suspended_jobs",
                "waiting_jobs",
                "running_jobs",
            ]
        )
        for point in analysis.points:
            writer.writerow(
                [
                    f"{point.window_start:.1f}",
                    f"{point.utilization * 100:.3f}",
                    f"{point.suspended_jobs:.3f}",
                    f"{point.waiting_jobs:.3f}",
                    f"{point.running_jobs:.3f}",
                ]
            )


def write_job_records_csv(result: SimulationResult, path: PathLike) -> None:
    """Write the per-job records (the simulator's "log") as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "job_id",
                "priority",
                "submit_minute",
                "finish_minute",
                "runtime_minutes",
                "completion_time",
                "wait_time",
                "suspend_time",
                "wasted_restart_time",
                "suspension_count",
                "restart_count",
                "migration_count",
                "waiting_move_count",
                "pools_visited",
                "rejected",
                "task_id",
                "user",
            ]
        )
        for r in result.records:
            writer.writerow(
                [
                    r.job_id,
                    r.priority,
                    f"{r.submit_minute:.3f}",
                    "" if r.finish_minute is None else f"{r.finish_minute:.3f}",
                    f"{r.runtime_minutes:.3f}",
                    "" if r.completion_time is None else f"{r.completion_time:.3f}",
                    f"{r.wait_time:.3f}",
                    f"{r.suspend_time:.3f}",
                    f"{r.wasted_restart_time:.3f}",
                    r.suspension_count,
                    r.restart_count,
                    r.migration_count,
                    r.waiting_move_count,
                    "|".join(r.pools_visited),
                    int(r.rejected),
                    "" if r.task_id is None else r.task_id,
                    r.user,
                ]
            )
