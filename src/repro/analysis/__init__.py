"""Trace and result analyses backing the paper's figures."""

from .comparison import StrategyComparison, compare_strategies, reduction_pct
from .export import (
    write_cdf_csv,
    write_job_records_csv,
    write_summaries_csv,
    write_utilization_csv,
)
from .pools import PoolUsage, PoolUsageAnalysis, SaturationEpisode, analyze_pools
from .suspension import SuspensionAnalysis, analyze_suspension, suspension_time_cdf
from .svg import cdf_svg, stacked_bars_svg, timeseries_svg, write_svg
from .tasks import TaskAnalysis, TaskRecord, analyze_tasks
from .utilization import UtilizationAnalysis, analyze_utilization
from .waste import WasteFigure, waste_decomposition

__all__ = [
    "StrategyComparison",
    "compare_strategies",
    "reduction_pct",
    "write_cdf_csv",
    "write_job_records_csv",
    "write_summaries_csv",
    "write_utilization_csv",
    "PoolUsage",
    "PoolUsageAnalysis",
    "SaturationEpisode",
    "analyze_pools",
    "SuspensionAnalysis",
    "analyze_suspension",
    "suspension_time_cdf",
    "cdf_svg",
    "stacked_bars_svg",
    "timeseries_svg",
    "write_svg",
    "TaskAnalysis",
    "TaskRecord",
    "analyze_tasks",
    "UtilizationAnalysis",
    "analyze_utilization",
    "WasteFigure",
    "waste_decomposition",
]
