"""Figure 4: utilization and suspension count over a long horizon.

The paper samples "the number of suspended jobs in the system and the
system utilization every minute and aggregate[s] them ... based on a
100 minutes interval" over a year, and observes (Section 2.3):

1. overall utilization averages ~40% and typically ranges 20-60%;
2. suspension spikes suddenly with bursts of high-priority jobs and
   lasts hours to a week;
3. suspension arises even when the system is only 40-60% utilized,
   because bursts are confined to specific pools while "other pools may
   be barely utilized".

:func:`analyze_utilization` recomputes the two aggregated series plus
the summary statistics supporting those three observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..metrics.timeseries import WindowedPoint, aggregate_samples
from ..simulator.results import SimulationResult

__all__ = ["UtilizationAnalysis", "analyze_utilization"]


@dataclass(frozen=True)
class UtilizationAnalysis:
    """The Figure-4 series and its headline statistics.

    Attributes:
        points: windowed (100-minute by default) aggregation of the
            per-minute samples.
        mean_utilization_pct: average utilization over the horizon (%).
        p10_utilization_pct: 10th percentile of windowed utilization.
        p90_utilization_pct: 90th percentile of windowed utilization.
        peak_suspended_jobs: largest windowed mean suspended-job count.
        suspension_while_underutilized: fraction of windows that have
            suspended jobs while utilization is below 60% — the paper's
            third observation quantified.
    """

    points: Tuple[WindowedPoint, ...]
    mean_utilization_pct: float
    p10_utilization_pct: float
    p90_utilization_pct: float
    peak_suspended_jobs: float
    suspension_while_underutilized: float

    def utilization_series(self) -> List[float]:
        """Windowed utilization in percent (the dotted line)."""
        return [p.utilization * 100.0 for p in self.points]

    def suspension_series(self) -> List[float]:
        """Windowed mean suspended-job counts (the solid line)."""
        return [p.suspended_jobs for p in self.points]


def analyze_utilization(
    result: SimulationResult,
    window_minutes: float = 100.0,
    up_to_minute: Optional[float] = None,
) -> UtilizationAnalysis:
    """Compute the Figure-4 aggregation from a simulation result.

    Args:
        result: the simulation to analyse.
        window_minutes: aggregation window (the paper uses 100).
        up_to_minute: ignore samples after this minute.  The simulator
            runs until the last job completes, so a straggler can
            append a long, near-idle drain tail after the submission
            horizon; the paper's year-long window has no such tail.
            Pass the trace horizon to analyse the steady-state span.
    """
    samples = result.samples
    if up_to_minute is not None:
        samples = [s for s in samples if s.minute <= up_to_minute]
    points = aggregate_samples(samples, window_minutes)
    if not points:
        raise ConfigurationError(
            "the simulation recorded no samples; enable record_samples"
        )
    utils = sorted(p.utilization for p in points)

    def percentile(values: Sequence[float], q: float) -> float:
        index = min(len(values) - 1, max(0, int(round(q * (len(values) - 1)))))
        return values[index]

    with_suspension = [p for p in points if p.suspended_jobs > 0]
    underutilized = [p for p in with_suspension if p.utilization < 0.6]
    return UtilizationAnalysis(
        points=tuple(points),
        mean_utilization_pct=100.0 * sum(utils) / len(utils),
        p10_utilization_pct=100.0 * percentile(utils, 0.10),
        p90_utilization_pct=100.0 * percentile(utils, 0.90),
        peak_suspended_jobs=max(p.suspended_jobs for p in points),
        suspension_while_underutilized=(
            len(underutilized) / len(with_suspension) if with_suspension else 0.0
        ),
    )
