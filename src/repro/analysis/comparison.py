"""Side-by-side strategy comparison (the engine behind the tables).

:func:`compare_strategies` runs one scenario under a list of
(policy, initial-scheduler) pairs and collects the per-strategy
summaries, plus convenience reduction figures like "AvgCT of suspended
jobs dropped by 50%" that the paper quotes in prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

from ..core.policy import ReschedulingPolicy
from ..errors import ConfigurationError
from ..metrics.summary import PerformanceSummary
from ..schedulers.initial import InitialScheduler
from ..simulator.config import SimulationConfig
from ..workload.scenarios import Scenario

__all__ = ["StrategyComparison", "compare_strategies", "reduction_pct"]


def reduction_pct(baseline: Optional[float], value: Optional[float]) -> Optional[float]:
    """Percentage reduction of ``value`` relative to ``baseline``.

    Positive means improvement (value below baseline); ``None`` when
    either input is missing or the baseline is zero.
    """
    if baseline is None or value is None or baseline == 0:
        return None
    return 100.0 * (baseline - value) / baseline


@dataclass(frozen=True)
class StrategyComparison:
    """Summaries for one scenario, first row being the baseline.

    ``cells`` carries the per-strategy execution records
    (:class:`~repro.experiments.parallel.CellOutcome`: wall-clock
    seconds, cache provenance, derived seed) when the comparison came
    from :func:`compare_strategies`; it is empty for hand-built
    instances and never affects equality-relevant table content.
    """

    scenario_name: str
    summaries: Tuple[PerformanceSummary, ...]
    cells: Tuple = field(default=(), compare=False)

    def baseline(self) -> PerformanceSummary:
        """The first strategy's summary (by convention, NoRes)."""
        return self.summaries[0]

    def by_name(self, policy_name: str) -> PerformanceSummary:
        """Summary for a strategy by its policy name."""
        for summary in self.summaries:
            if summary.policy_name == policy_name:
                return summary
        raise ConfigurationError(
            f"no strategy named {policy_name!r} in comparison "
            f"({[s.policy_name for s in self.summaries]})"
        )

    def avg_ct_suspended_reduction(self, policy_name: str) -> Optional[float]:
        """% reduction in AvgCT over suspended jobs vs the baseline."""
        return reduction_pct(
            self.baseline().avg_ct_suspended, self.by_name(policy_name).avg_ct_suspended
        )

    def avg_ct_all_reduction(self, policy_name: str) -> Optional[float]:
        """% reduction in AvgCT over all jobs vs the baseline."""
        return reduction_pct(
            self.baseline().avg_ct_all, self.by_name(policy_name).avg_ct_all
        )

    def avg_wct_reduction(self, policy_name: str) -> Optional[float]:
        """% reduction in AvgWCT vs the baseline."""
        return reduction_pct(self.baseline().avg_wct, self.by_name(policy_name).avg_wct)


def compare_strategies(
    scenario: Scenario,
    policies: Sequence[ReschedulingPolicy],
    scheduler_factory: Optional[Callable[[], InitialScheduler]] = None,
    config: Optional[SimulationConfig] = None,
    n_workers: int = 1,
    cache=None,
    keep_results: bool = False,
    progress: Optional[Callable] = None,
) -> StrategyComparison:
    """Run every policy on the scenario and summarise each run.

    Each (scenario, policy, scheduler) cell gets a child seed derived
    from its identity (spawn-key style), so results are identical for
    serial and parallel execution and for any ``policies`` ordering.

    Args:
        scenario: workload + cluster to evaluate on.
        policies: the strategies, baseline first.
        scheduler_factory: builds a fresh initial scheduler per run
            (fresh, because round-robin keeps cursors); defaults to the
            engine's round-robin.
        config: simulation config shared across runs.
        n_workers: process-pool width; ``1`` runs serially in-process.
        cache: optional :class:`~repro.experiments.cache.ResultCache`
            serving previously computed cells.
        keep_results: also keep (and cache) each run's full
            :class:`~repro.simulator.results.SimulationResult`,
            reachable through ``comparison.cells``.
        progress: optional per-cell completion callback (e.g. a
            :class:`~repro.telemetry.ProgressReporter`), forwarded to
            the execution backend.
    """
    # Imported here: repro.analysis must stay importable without pulling
    # the experiments package in at module-import time (and vice versa).
    from ..experiments.parallel import execute_cells, make_cell_task

    if not policies:
        raise ConfigurationError("compare_strategies needs at least one policy")
    resolved_config = config or SimulationConfig(strict=False)
    tasks = [
        make_cell_task(
            index,
            scenario,
            policy,
            scheduler_factory() if scheduler_factory is not None else None,
            resolved_config,
            keep_result=keep_results,
        )
        for index, policy in enumerate(policies)
    ]
    outcomes = execute_cells(
        tasks, n_workers=n_workers, cache=cache, progress=progress
    )
    return StrategyComparison(
        scenario_name=scenario.name,
        summaries=tuple(outcome.summary for outcome in outcomes),
        cells=tuple(outcomes),
    )
