"""Crash-safe filesystem helpers.

Every file this repository exports — cache entries, telemetry
snapshots, progress feeds, grid checkpoints — is written through the
same pattern: serialise to a temporary file in the *same directory*,
then :func:`os.replace` it over the destination.  ``os.replace`` is
atomic on POSIX and Windows for same-filesystem moves, so a reader (or
a resumed run) can only ever observe the old complete file or the new
complete file — never a truncated hybrid, even if the writer is
SIGKILLed mid-write.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``)."""
    path = Path(path)
    # The tmp name must be unique per *writer*, not per process: two
    # threads of one process writing the same path (a worker's
    # heartbeat thread racing its compute thread on a lease file)
    # would otherwise interleave inside a shared tmp file and rename
    # torn bytes into place.  The pid stays last so crash-sweepers can
    # parse it for a liveness check.
    tmp = path.with_name(
        f"{path.name}.tmp.{threading.get_ident()}.{os.getpid()}"
    )
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    finally:
        # Only reached with the tmp file still present when the write or
        # replace itself failed; never leave the litter behind.
        if tmp.exists():
            tmp.unlink()


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``)."""
    atomic_write_bytes(path, text.encode(encoding))
