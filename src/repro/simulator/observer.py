"""Observation of simulation events (ASCA's "logs for post-analysis").

The reference simulator "outputs the results as logs for post-analysis"
(Section 3.1).  Beyond the built-in job records and state samples, some
analyses need the raw event stream — every start, suspension, resume,
restart, move and completion with its timestamp.  An
:class:`EventObserver` subscribed via
:attr:`~repro.simulator.config.SimulationConfig.observer` receives each
event as it happens; :class:`EventLog` collects them in memory and
:class:`JsonlEventWriter` streams them to disk.

Observation is strictly read-only: observers receive immutable event
tuples, never live simulator objects, so they cannot perturb a run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Counter as CounterType
from typing import Dict, List, Optional, TextIO, Tuple, Union
from collections import Counter

__all__ = [
    "SimEvent",
    "EventObserver",
    "EventLog",
    "JsonlEventWriter",
    "EVENT_TYPES",
]

#: The event vocabulary emitted by the engine.
EVENT_TYPES: Tuple[str, ...] = (
    "submit",  # job submitted to its VPM
    "start",  # began executing on a machine
    "suspend",  # preempted (suspended on its host)
    "resume",  # resumed on its host
    "restart",  # abandoned its attempt to restart elsewhere
    "migrate",  # moved with progress preserved
    "dequeue",  # left a wait queue via waiting-job rescheduling
    "queue",  # entered a pool's wait queue
    "duplicate",  # a shadow attempt was launched
    "finish",  # completed
    "reject",  # statically unschedulable everywhere
)


@dataclass(frozen=True)
class SimEvent:
    """One simulation event.

    Attributes:
        minute: simulated time of the event.
        event: one of :data:`EVENT_TYPES`.
        job_id: the affected job.
        pool_id: pool involved (target pool for moves), if any.
        detail: optional extra context (e.g. the preemptor's job id for
            suspensions, the origin pool for moves).
    """

    minute: float
    event: str
    job_id: int
    pool_id: Optional[str] = None
    detail: Optional[str] = None

    def as_dict(self) -> Dict:
        """A JSON-serialisable representation."""
        record: Dict = {
            "minute": round(self.minute, 4),
            "event": self.event,
            "job_id": self.job_id,
        }
        if self.pool_id is not None:
            record["pool_id"] = self.pool_id
        if self.detail is not None:
            record["detail"] = self.detail
        return record


class EventObserver:
    """Interface for event consumers; the base class ignores everything."""

    def on_event(self, event: SimEvent) -> None:
        """Receive one event (called in simulated-time order)."""

    def close(self) -> None:
        """Called once when the simulation finishes."""


class EventLog(EventObserver):
    """Collects all events in memory.

    Suited to tests and small runs; a year-scale run emits millions of
    events, for which :class:`JsonlEventWriter` is the right sink.
    """

    def __init__(self) -> None:
        self.events: List[SimEvent] = []

    def on_event(self, event: SimEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_type(self, event_type: str) -> List[SimEvent]:
        """All events of one type, in order."""
        return [e for e in self.events if e.event == event_type]

    def for_job(self, job_id: int) -> List[SimEvent]:
        """All events affecting one job, in order."""
        return [e for e in self.events if e.job_id == job_id]

    def counts(self) -> CounterType[str]:
        """Event counts by type."""
        return Counter(e.event for e in self.events)


class JsonlEventWriter(EventObserver):
    """Streams events to a JSON Lines file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._handle: Optional[TextIO] = open(self._path, "w", encoding="utf-8")
        self.written = 0

    def on_event(self, event: SimEvent) -> None:
        if self._handle is None:  # pragma: no cover - misuse guard
            raise ValueError(f"writer for {self._path} is closed")
        self._handle.write(json.dumps(event.as_dict()) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def read(path: Union[str, Path]) -> List[SimEvent]:
        """Load events previously written to ``path``."""
        events: List[SimEvent] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                events.append(
                    SimEvent(
                        minute=float(record["minute"]),
                        event=str(record["event"]),
                        job_id=int(record["job_id"]),
                        pool_id=record.get("pool_id"),
                        detail=record.get("detail"),
                    )
                )
        return events
