"""Priority wait queue with lazy removal.

Physical pools queue jobs "waiting for resources to become available"
in priority order (higher priority first), FIFO within a priority
level.  The queue supports the operation waiting-job rescheduling
needs — removing a job from the middle — via lazy invalidation, so
both push and pop stay O(log n).

Membership is tracked by job *identity*, not just id: a stale heap
entry for a removed job must not shadow a different ``Job`` object
later pushed with the same id (re-pushes of the same id happen across
wait episodes).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from ..errors import SchedulingError
from .job import Job

__all__ = ["PriorityWaitQueue", "QueueStats"]


class QueueStats(NamedTuple):
    """Lifetime statistics of one wait queue (telemetry only).

    Attributes:
        pushes: total insertions over the run.
        peak_depth: high-water number of valid queued jobs.
        compactions: lazy-removal heap rebuilds performed.
    """

    pushes: int
    peak_depth: int
    compactions: int


class PriorityWaitQueue:
    """Max-priority, FIFO-within-priority queue of waiting jobs."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Job]] = []
        self._counter = itertools.count()
        # Job objects currently valid in the queue, keyed by id.
        self._members: Dict[int, Job] = {}
        self._pushes = 0
        self._peak_depth = 0
        self._compactions = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, job: Job) -> bool:
        return self._members.get(job.job_id) is job

    def push(self, job: Job) -> None:
        """Enqueue ``job`` (must not already be queued here)."""
        if job.job_id in self._members:
            raise SchedulingError(f"job {job.job_id} is already in this wait queue")
        heapq.heappush(self._heap, (-job.priority, next(self._counter), job))
        self._members[job.job_id] = job
        self._pushes += 1
        if len(self._members) > self._peak_depth:
            self._peak_depth = len(self._members)

    def pop(self) -> Job:
        """Dequeue the highest-priority (oldest within level) job."""
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if self._members.get(job.job_id) is job:
                del self._members[job.job_id]
                return job
        raise SchedulingError("pop from an empty wait queue")

    def peek(self) -> Optional[Job]:
        """The job :meth:`pop` would return, or ``None`` if empty."""
        while self._heap:
            _, _, job = self._heap[0]
            if self._members.get(job.job_id) is job:
                return job
            heapq.heappop(self._heap)
        return None

    def remove(self, job: Job) -> None:
        """Remove ``job`` from anywhere in the queue (lazy)."""
        if self._members.get(job.job_id) is not job:
            raise SchedulingError(f"job {job.job_id} is not in this wait queue")
        del self._members[job.job_id]
        self._compact_if_stale()

    def best_match(self, predicate) -> Optional[Job]:
        """Highest-priority (oldest within level) job satisfying ``predicate``.

        Non-destructive O(n) scan over the heap storage — used by pools
        to match queued jobs to a machine that just freed capacity,
        where sorting the whole queue per event would be too costly.
        """
        best_key: Optional[Tuple[int, int]] = None
        best_job: Optional[Job] = None
        for neg_priority, order, job in self._heap:
            if self._members.get(job.job_id) is not job:
                continue
            key = (neg_priority, order)
            if (best_key is None or key < best_key) and predicate(job):
                best_key = key
                best_job = job
        return best_job

    def iter_jobs(self) -> Iterator[Job]:
        """Iterate valid entries in priority order (non-destructive).

        O(n log n); used by pools when matching queued jobs to a freed
        machine, and by tests.
        """
        for _, _, job in sorted(self._heap):
            if self._members.get(job.job_id) is job:
                yield job

    def stats(self) -> QueueStats:
        """Lifetime queue statistics for telemetry exports."""
        return QueueStats(
            pushes=self._pushes,
            peak_depth=self._peak_depth,
            compactions=self._compactions,
        )

    def _compact_if_stale(self) -> None:
        """Rebuild the heap when more than half its entries are invalid."""
        if len(self._heap) > 16 and len(self._heap) > 2 * len(self._members):
            self._heap = [
                entry
                for entry in self._heap
                if self._members.get(entry[2].job_id) is entry[2]
            ]
            heapq.heapify(self._heap)
            self._compactions += 1

    def __repr__(self) -> str:
        return f"PriorityWaitQueue(len={len(self)})"
