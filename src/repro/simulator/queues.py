"""Priority wait queue with lazy removal, bucketed by requirement signature.

Physical pools queue jobs "waiting for resources to become available"
in priority order (higher priority first), FIFO within a priority
level.  The queue supports the operation waiting-job rescheduling
needs — removing a job from the middle — via lazy invalidation, so
both push and pop stay O(log n).

Storage is sharded into one heap per *requirement signature* — the
``(os_family, cores, memory_gb)`` triple that fully determines whether
a job fits any given machine.  Traces contain few distinct signatures
(tens, against tens of thousands of queued jobs), and machine-fit
predicates are constant across a signature, so the engine's hottest
queue operation — "find the best queued job that fits this machine,
on every capacity release" (:meth:`best_schedulable`) — evaluates the
fit once per signature instead of once per queued job.  A single
global insertion counter spans all shards, so ordering across shards
is exactly the classic single-heap ordering.

Membership is tracked per *entry*, not merely per job object: each
insertion records its global order token, and only the entry carrying
the currently-registered token is valid.  Job identity alone is not
enough — a job that is removed and later re-pushed (wait episodes
repeat across retries and rescheduling) would otherwise leave a stale
entry that passes an identity check and resurrects the job's *old*
queue position, letting it jump the FIFO line and making ``iter_jobs``
yield it twice (which in turn double-removes during pool drains).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterator, List, NamedTuple, Optional, Tuple

from ..errors import SchedulingError
from .job import Job

__all__ = ["PriorityWaitQueue", "QueueStats"]

#: A signature key: (os_family, cores, memory_gb).
Signature = Tuple[str, int, float]


class QueueStats(NamedTuple):
    """Lifetime statistics of one wait queue (telemetry only).

    Attributes:
        pushes: total insertions over the run.
        peak_depth: high-water number of valid queued jobs.
        compactions: lazy-removal heap rebuilds performed.
    """

    pushes: int
    peak_depth: int
    compactions: int


class PriorityWaitQueue:
    """Max-priority, FIFO-within-priority queue of waiting jobs."""

    __slots__ = (
        "_shards",
        "_valid",
        "_counter",
        "_members",
        "_pushes",
        "_peak_depth",
        "_compactions",
    )

    def __init__(self) -> None:
        # One lazy-removal heap of (-priority, order, job) per signature.
        self._shards: Dict[Signature, List[Tuple[int, int, Job]]] = {}
        # Valid (non-removed) entry count per shard.
        self._valid: Dict[Signature, int] = {}
        self._counter = itertools.count()
        # Currently queued jobs keyed by id; the value carries the order
        # token of the job's live entry, so stale entries from earlier
        # wait episodes of the same object can never validate.
        self._members: Dict[int, Tuple[Job, int]] = {}
        self._pushes = 0
        self._peak_depth = 0
        self._compactions = 0

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, job: Job) -> bool:
        member = self._members.get(job.job_id)
        return member is not None and member[0] is job

    @property
    def storage_size(self) -> int:
        """Total stored entries, including lazily-removed ones."""
        return sum(len(shard) for shard in self._shards.values())

    def push(self, job: Job) -> None:
        """Enqueue ``job`` (must not already be queued here)."""
        if job.job_id in self._members:
            raise SchedulingError(f"job {job.job_id} is already in this wait queue")
        spec = job.spec
        sig = (spec.os_family, spec.cores, spec.memory_gb)
        order = next(self._counter)
        shard = self._shards.get(sig)
        if shard is None:
            self._shards[sig] = [(-job.priority, order, job)]
            self._valid[sig] = 1
        else:
            heapq.heappush(shard, (-job.priority, order, job))
            self._valid[sig] += 1
        self._members[job.job_id] = (job, order)
        self._pushes += 1
        if len(self._members) > self._peak_depth:
            self._peak_depth = len(self._members)

    def _shard_top(self, sig: Signature) -> Optional[Tuple[int, int, Job]]:
        """The shard's best valid entry, discarding stale tops; None if drained."""
        shard = self._shards[sig]
        members = self._members
        while shard:
            entry = shard[0]
            member = members.get(entry[2].job_id)
            # The order token pins the one live entry; identity alone
            # would also match stale entries of a re-pushed job.
            if member is not None and member[1] == entry[1]:
                return entry
            heapq.heappop(shard)
        del self._shards[sig]
        del self._valid[sig]
        return None

    def pop(self) -> Job:
        """Dequeue the highest-priority (oldest within level) job."""
        best_sig = None
        best_entry = None
        for sig in list(self._shards):
            entry = self._shard_top(sig)
            if entry is not None and (best_entry is None or entry < best_entry):
                best_entry = entry
                best_sig = sig
        if best_entry is None:
            raise SchedulingError("pop from an empty wait queue")
        heapq.heappop(self._shards[best_sig])
        self._valid[best_sig] -= 1
        job = best_entry[2]
        del self._members[job.job_id]
        return job

    def peek(self) -> Optional[Job]:
        """The job :meth:`pop` would return, or ``None`` if empty."""
        best_entry = None
        for sig in list(self._shards):
            entry = self._shard_top(sig)
            if entry is not None and (best_entry is None or entry < best_entry):
                best_entry = entry
        return None if best_entry is None else best_entry[2]

    def remove(self, job: Job) -> None:
        """Remove ``job`` from anywhere in the queue (lazy)."""
        member = self._members.get(job.job_id)
        if member is None or member[0] is not job:
            raise SchedulingError(f"job {job.job_id} is not in this wait queue")
        del self._members[job.job_id]
        spec = job.spec
        sig = (spec.os_family, spec.cores, spec.memory_gb)
        self._valid[sig] -= 1
        self._compact_if_stale(sig)

    def best_schedulable(self, fits: Callable[[object], bool]) -> Optional[Job]:
        """Highest-priority (oldest within level) job whose *spec* fits.

        ``fits`` receives a job's :class:`~repro.workload.trace.TraceJob`
        spec and must depend only on its requirement signature
        (OS family, cores, memory) — exactly the machine eligibility +
        capacity checks pools perform.  Under that contract the result
        equals :meth:`best_match` on the equivalent per-job predicate,
        but costs O(signatures) instead of O(queued jobs): within one
        shard every entry fits or none does, so only shard tops are
        consulted.  This is the pool hot path on every capacity release.
        """
        best_entry = None
        for sig in list(self._shards):
            entry = self._shard_top(sig)
            if entry is None:
                continue
            if (best_entry is None or entry < best_entry) and fits(entry[2].spec):
                best_entry = entry
        return None if best_entry is None else best_entry[2]

    def best_match(self, predicate: Callable[[Job], bool]) -> Optional[Job]:
        """Highest-priority (oldest within level) job satisfying ``predicate``.

        Non-destructive O(n) scan over all stored entries; ``predicate``
        may be arbitrary (unlike :meth:`best_schedulable` it need not be
        uniform within a signature).
        """
        members = self._members
        best_key: Optional[Tuple[int, int]] = None
        best_job: Optional[Job] = None
        for shard in self._shards.values():
            for neg_priority, order, job in shard:
                member = members.get(job.job_id)
                if member is None or member[1] != order:
                    continue
                key = (neg_priority, order)
                if (best_key is None or key < best_key) and predicate(job):
                    best_key = key
                    best_job = job
        return best_job

    def iter_jobs(self) -> Iterator[Job]:
        """Iterate valid entries in priority order (non-destructive).

        O(n log n); used by pools when draining a blacked-out pool's
        queue, and by tests.
        """
        members = self._members
        entries = [
            entry
            for shard in self._shards.values()
            for entry in shard
            if (member := members.get(entry[2].job_id)) is not None
            and member[1] == entry[1]
        ]
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        for entry in entries:
            yield entry[2]

    def stats(self) -> QueueStats:
        """Lifetime queue statistics for telemetry exports."""
        return QueueStats(
            pushes=self._pushes,
            peak_depth=self._peak_depth,
            compactions=self._compactions,
        )

    def _compact_if_stale(self, sig: Signature) -> None:
        """Rebuild one shard when more than half its entries are invalid."""
        shard = self._shards[sig]
        valid = self._valid[sig]
        if len(shard) > 16 and len(shard) > 2 * valid:
            members = self._members
            self._shards[sig] = [
                entry
                for entry in shard
                if (member := members.get(entry[2].job_id)) is not None
                and member[1] == entry[1]
            ]
            heapq.heapify(self._shards[sig])
            self._compactions += 1
        elif not valid and len(shard) > 16:
            del self._shards[sig]
            del self._valid[sig]

    def __repr__(self) -> str:
        return f"PriorityWaitQueue(len={len(self)})"
