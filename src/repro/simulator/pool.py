"""The physical pool manager.

Implements the dispatch semantics of Section 2.1 at the level of one
pool:

* **First-fit dispatch** — "the pool manager searches its list to find
  the first eligible machine (i.e., which satisfies the job
  requirements) that is available and schedules the job there".
* **Priority preemption** — "if there is a job currently running on an
  eligible machine that has lower priority than the new job, this
  currently running job will be suspended by the new job".
* **Queueing** — "otherwise, the new job will be queued and waiting for
  resources to become available in the physical pool".
* **Give-back** — "if none of the machines in the list is eligible, the
  physical pool manager will return the new job to the virtual pool
  manager".

The pool mutates machines and jobs but never talks to the event queue
or to policies; the engine orchestrates those.  All capacity-releasing
paths report which machines freed up so the engine can re-fill them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.context import PoolSnapshot
from ..errors import SchedulingError
from ..workload.cluster import PoolSpec
from .job import Job, JobState
from .machine import Machine
from .queues import PriorityWaitQueue

#: Upper bound on per-pool eligibility-cache entries (the negative
#: first-fit cache shares its keys, so bounding one bounds both).
_SIGNATURE_CACHE_CAP = 4096

__all__ = ["PhysicalPool", "SubmitOutcome", "SubmitResult"]


class SubmitOutcome(enum.Enum):
    """What happened when a job arrived at a pool."""

    STARTED = "started"  # placed on a free machine immediately
    PREEMPTED = "preempted"  # placed by suspending lower-priority work
    QUEUED = "queued"  # eligible machines exist, none available
    INELIGIBLE = "ineligible"  # no machine can ever run this job


@dataclass(frozen=True)
class SubmitResult:
    """Outcome of :meth:`PhysicalPool.submit`.

    Attributes:
        outcome: what happened.
        machine: machine the job started on, when it started.
        victims: jobs suspended to make room (``PREEMPTED`` only); the
            engine passes each to the rescheduling policy.
    """

    outcome: SubmitOutcome
    machine: Optional[Machine] = None
    victims: Tuple[Job, ...] = ()


class PhysicalPool:
    """Runtime state and dispatch logic of one physical pool.

    ``telemetry`` is an optional
    :class:`~repro.telemetry.hooks.EngineTelemetry`; when present the
    pool reports completed wait and suspension episodes to it.  The
    hooks receive already-computed durations and cannot perturb the
    simulation.
    """

    def __init__(self, spec: PoolSpec, telemetry=None) -> None:
        self.spec = spec
        self.machines: List[Machine] = [Machine(m) for m in spec.machines]
        self.wait_queue = PriorityWaitQueue()
        self.suspended: Dict[int, Job] = {}
        self.total_cores = spec.total_cores
        self.busy_cores = 0
        self.running_jobs = 0
        # Histogram of running-job priorities (counts may sit at zero).
        # Lets submit prove "nothing in this pool is preemptible by
        # priority p" without scanning any machine; traces use a
        # handful of priority levels.
        self._running_priorities: Dict[int, int] = {}
        self._suspend_order: Dict[int, int] = {}
        self._suspend_counter = 0
        self._telemetry = telemetry
        # Statically eligible machines (in dispatch order) per job
        # requirement signature.  Eligibility depends only on immutable
        # specs, so entries never invalidate; traces have few distinct
        # signatures, so the one-off scans amortise to nothing.
        self._eligible_machines: Dict[tuple, Tuple[Machine, ...]] = {}
        # Negative first-fit cache: requirement signatures whose
        # first-fit scan came up empty, tagged with the capacity
        # version they failed at.  Every capacity release (finish,
        # suspension, detach, refill after recovery) bumps the version,
        # so a current-version hit proves the scan would fail again
        # without touching a machine.  A saturated pool sees long
        # arrival bursts between releases; this turns each burst's
        # repeated failing scans into one dictionary probe.
        self._no_first_fit: Dict[tuple, int] = {}
        self._capacity_version = 0
        # Snapshot cache: pools are snapshotted once per candidate per
        # policy decision, far more often than their statistics change.
        self._snapshot_key: Optional[tuple] = None
        self._snapshot: Optional[PoolSnapshot] = None
        # Fault-injection pool state: False while a blackout window is
        # open.  The engine flips it and routes around down pools.
        self.up = True

    # -- statistics --------------------------------------------------------------

    @property
    def pool_id(self) -> str:
        """The pool's identifier."""
        return self.spec.pool_id

    def utilization(self) -> float:
        """Busy fraction of the pool's cores."""
        if self.total_cores == 0:
            return 0.0
        return self.busy_cores / self.total_cores

    def snapshot(self) -> PoolSnapshot:
        """Point-in-time statistics for schedulers and policies.

        Cached on the statistics themselves: the key is recomputed from
        live counters on every call (so it can never go stale) and the
        frozen snapshot object is rebuilt only when a counter moved.
        """
        key = (self.busy_cores, len(self.wait_queue), len(self.suspended))
        if key != self._snapshot_key:
            self._snapshot_key = key
            self._snapshot = PoolSnapshot(
                pool_id=self.pool_id,
                total_cores=self.total_cores,
                busy_cores=key[0],
                waiting_jobs=key[1],
                suspended_jobs=key[2],
            )
        return self._snapshot

    def running_job_count(self) -> int:
        """Number of jobs currently executing in this pool."""
        return self.running_jobs

    # -- submission -----------------------------------------------------------------

    def eligible_machines(self, job_spec) -> Tuple[Machine, ...]:
        """Statically eligible machines for ``job_spec``, in dispatch order.

        Cached per requirement signature; eligibility depends only on
        immutable machine and job specs, so the cache never invalidates.
        """
        sig = (job_spec.os_family, job_spec.cores, job_spec.memory_gb)
        machines = self._eligible_machines.get(sig)
        if machines is None:
            machines = tuple(m for m in self.machines if m.eligible(job_spec))
            self._remember_eligible(sig, machines)
        return machines

    def _remember_eligible(self, sig: tuple, machines: Tuple[Machine, ...]) -> None:
        """Insert into the eligibility cache, clearing it at the cap so
        signature-diverse traces degrade to rescans, not unbounded RSS.
        The negative first-fit cache is keyed by the same signatures and
        is dropped alongside (it is purely an optimisation)."""
        if len(self._eligible_machines) >= _SIGNATURE_CACHE_CAP:
            self._eligible_machines.clear()
            self._no_first_fit.clear()
        self._eligible_machines[sig] = machines

    def submit(self, job: Job, now: float) -> SubmitResult:
        """Dispatch an arriving job per the NetBatch pool-manager rules."""
        spec = job.spec
        sig = (spec.os_family, spec.cores, spec.memory_gb)
        eligible = self._eligible_machines.get(sig)
        if eligible is None:
            eligible = tuple(m for m in self.machines if m.eligible(spec))
            self._remember_eligible(sig, eligible)
        if not eligible:
            return SubmitResult(SubmitOutcome.INELIGIBLE)
        cores = spec.cores
        memory = spec.memory_gb
        # 1. First fit on an available eligible machine (dynamic checks
        #    inlined: this scan runs once per placement attempt).  The
        #    pool-level free-core total is a necessary condition for any
        #    machine to fit, and a no-first-fit entry at the current
        #    capacity version replays a scan that already failed —
        #    either proof lets a saturated pool skip the whole scan.
        if (
            self.total_cores - self.busy_cores >= cores
            and self._no_first_fit.get(sig) != self._capacity_version
        ):
            for machine in eligible:
                if (
                    machine.up
                    and machine.free_cores >= cores
                    and machine.free_memory_gb >= memory
                ):
                    self._start_on(job, machine, now)
                    return SubmitResult(SubmitOutcome.STARTED, machine=machine)
            self._no_first_fit[sig] = self._capacity_version
        # 2. Preemption: first eligible machine where suspending
        #    lower-priority work makes room.  The priority histogram
        #    proves the common case — nothing running in the pool is
        #    below the new job's priority — without touching a machine.
        priority = job.priority
        for level, count in self._running_priorities.items():
            if count and level < priority:
                break
        else:
            job.enqueue(self.pool_id, now)
            self.wait_queue.push(job)
            return SubmitResult(SubmitOutcome.QUEUED)
        for machine in eligible:
            # Preemption frees cores but never memory: cheap rejects
            # first, then the exact victim computation.  The priority
            # bound is conservative (never stale high), so it can only
            # skip machines where no running job is preemptible.
            if (
                not machine.up
                or machine.free_memory_gb < memory
                or priority <= machine._min_running_priority
            ):
                continue
            victims = machine.preemption_victims(spec, priority)
            # An empty victim list means preemption cannot make the job
            # fit here (a machine it would already fit on was taken in
            # step 1), so move on.
            if not victims:
                continue
            for victim in victims:
                self._suspend_on(victim, machine, now)
            if not machine.fits_now(spec):
                raise SchedulingError(
                    f"pool {self.pool_id}: preemption on {machine.machine_id} "
                    f"did not make room for job {job.job_id}"
                )
            self._start_on(job, machine, now)
            return SubmitResult(
                SubmitOutcome.PREEMPTED, machine=machine, victims=tuple(victims)
            )
        # 3. Queue.
        job.enqueue(self.pool_id, now)
        self.wait_queue.push(job)
        return SubmitResult(SubmitOutcome.QUEUED)

    # -- capacity refill ---------------------------------------------------------------

    def fill_machine(self, machine: Machine, now: float) -> List[Job]:
        """Hand freed capacity on ``machine`` to pending work.

        Suspended jobs resident on the machine resume first,
        unconditionally: NetBatch suspension is host-level (the process
        image stays resident), so a host with a suspended job is not
        "available" to the dispatch queue and the job resumes as soon
        as its preemptor's cores free up.  Queued jobs only claim
        whatever capacity is left once nothing resident can resume.
        New *arrivals* can still re-suspend a resumed job through
        dispatch-time preemption — which is how one job comes to be
        "suspended more than once" during a burst (Section 2.2).
        Returns the jobs that started or resumed.
        """
        placed: List[Job] = []
        # The engine calls this after every capacity release, including
        # machine/pool recoveries that flip ``up`` flags outside the
        # pool's sight — so the refill entry point also invalidates the
        # negative first-fit cache.
        self._capacity_version += 1
        if not self.up or not machine.up:
            return placed
        while True:
            resumable = self._best_resumable(machine)
            waiting = None
            if resumable is None:
                # Machine fit depends only on the job's requirement
                # signature, so the sharded queue evaluates it once per
                # signature instead of once per queued job.
                waiting = self.wait_queue.best_schedulable(
                    lambda spec: machine.eligible(spec) and machine.fits_now(spec)
                )
            if resumable is None and waiting is None:
                break
            if resumable is not None:
                job = resumable
                machine.resume(job)
                if self._telemetry is not None:
                    self._telemetry.observe_suspension(
                        self.pool_id, now - job.segment_start
                    )
                job.resume(now)
                del self.suspended[job.job_id]
                self._suspend_order.pop(job.job_id, None)
                self.busy_cores += job.spec.cores
                self.running_jobs += 1
                counts = self._running_priorities
                priority = job.spec.priority
                counts[priority] = counts.get(priority, 0) + 1
            else:
                job = waiting
                self.wait_queue.remove(job)
                self._start_on(job, machine, now)
            placed.append(job)
        return placed

    def _best_resumable(self, machine: Machine) -> Optional[Job]:
        """Highest-priority suspended job on ``machine`` that fits its free cores."""
        best: Optional[Job] = None
        best_key = None
        for job in machine.suspended.values():
            if machine.free_cores < job.spec.cores:
                continue
            key = (-job.priority, self._suspend_order.get(job.job_id, 0))
            if best_key is None or key < best_key:
                best_key = key
                best = job
        return best

    # -- job lifecycle hooks (called by the engine) ------------------------------------------

    def finish_job(self, job: Job, now: float) -> Machine:
        """Account a running job's completion; returns its machine."""
        machine = job.machine
        if machine is None or job.job_id not in machine.running:
            raise SchedulingError(
                f"pool {self.pool_id}: job {job.job_id} is not running on any machine here"
            )
        machine.remove(job)
        self.busy_cores -= job.spec.cores
        self.running_jobs -= 1
        self._running_priorities[job.spec.priority] -= 1
        self._capacity_version += 1
        job.finish(now)
        return machine

    def finish_suspended(self, job: Job, now: float) -> Machine:
        """Account a fractionally-shared suspended job's completion.

        A suspended job holds memory but no cores, so only the resident
        memory is released; the suspension episode is capped at the
        finish time (see :meth:`Job.finish`).  Returns the machine so
        the engine can refill the freed memory.
        """
        machine = job.machine
        if machine is None or job.job_id not in machine.suspended:
            raise SchedulingError(
                f"pool {self.pool_id}: job {job.job_id} is not suspended on any machine here"
            )
        machine.remove(job)
        del self.suspended[job.job_id]
        self._suspend_order.pop(job.job_id, None)
        self._capacity_version += 1
        if self._telemetry is not None:
            self._telemetry.observe_suspension(self.pool_id, now - job.segment_start)
        job.finish(now)
        return machine

    def detach_suspended(
        self, job: Job, now: float, preserve_progress: bool = False
    ) -> Machine:
        """Remove a suspended job (rescheduled away); returns its machine.

        Frees the memory the suspended job was holding, which may allow
        queued work to start — the engine refills the machine.  With
        ``preserve_progress`` the job keeps its completed work
        (checkpoint/VM migration); otherwise the progress becomes
        wasted-restart time (the paper's restart semantics).
        """
        machine = job.machine
        if machine is None or job.job_id not in machine.suspended:
            raise SchedulingError(
                f"pool {self.pool_id}: job {job.job_id} is not suspended on any machine here"
            )
        machine.remove(job)
        del self.suspended[job.job_id]
        self._suspend_order.pop(job.job_id, None)
        self._capacity_version += 1
        if self._telemetry is not None:
            self._telemetry.observe_suspension(self.pool_id, now - job.segment_start)
        if preserve_progress:
            job.checkpoint_detach(now)
        else:
            job.abandon(now)
        return machine

    def detach_running(self, job: Job, now: float) -> Machine:
        """Remove a running job without completing it (duplicate-loser cleanup)."""
        machine = job.machine
        if machine is None or job.job_id not in machine.running:
            raise SchedulingError(
                f"pool {self.pool_id}: job {job.job_id} is not running on any machine here"
            )
        machine.remove(job)
        self.busy_cores -= job.spec.cores
        self.running_jobs -= 1
        self._running_priorities[job.spec.priority] -= 1
        self._capacity_version += 1
        return machine

    def remove_waiting(self, job: Job, now: float) -> None:
        """Take a job out of the wait queue (waiting-job rescheduling)."""
        self.wait_queue.remove(job)
        if self._telemetry is not None:
            self._telemetry.observe_wait(self.pool_id, now - job.segment_start)
        job.dequeue(now)

    def cancel_job(self, job: Job, now: float) -> Optional[Machine]:
        """Tear down a duplicate-loser attempt wherever it is in this pool.

        Returns the machine whose capacity was freed, or ``None`` when
        the job was only waiting in the queue.
        """
        if job.state is JobState.RUNNING:
            machine = self.detach_running(job, now)
            job.cancel(now)
            return machine
        if job.state is JobState.SUSPENDED:
            machine = job.machine
            if machine is None or job.job_id not in machine.suspended:
                raise SchedulingError(
                    f"pool {self.pool_id}: job {job.job_id} is not suspended here"
                )
            machine.remove(job)
            del self.suspended[job.job_id]
            self._suspend_order.pop(job.job_id, None)
            self._capacity_version += 1
            if self._telemetry is not None:
                self._telemetry.observe_suspension(
                    self.pool_id, now - job.segment_start
                )
            job.cancel(now)
            return machine
        if job.state is JobState.WAITING:
            self.wait_queue.remove(job)
            if self._telemetry is not None:
                self._telemetry.observe_wait(self.pool_id, now - job.segment_start)
            job.cancel(now)
            return None
        raise SchedulingError(
            f"pool {self.pool_id}: cannot cancel job {job.job_id} "
            f"in state {job.state.value}"
        )

    # -- fault injection (called by the engine) ----------------------------------------

    def evict_machine(self, machine: Machine, now: float) -> List[Job]:
        """Empty one machine after a host death; returns the orphans.

        Running jobs come first, then suspended ones, each in occupancy
        order.  Only the pool-level accounting happens here — the jobs
        still reference the machine so the engine can fold their final
        segment into the fault accounting before requeueing them.
        """
        orphans: List[Job] = []
        self._capacity_version += 1
        for job in list(machine.running.values()):
            machine.remove(job)
            self.busy_cores -= job.spec.cores
            self.running_jobs -= 1
            self._running_priorities[job.spec.priority] -= 1
            orphans.append(job)
        for job in list(machine.suspended.values()):
            machine.remove(job)
            del self.suspended[job.job_id]
            self._suspend_order.pop(job.job_id, None)
            if self._telemetry is not None:
                self._telemetry.observe_suspension(
                    self.pool_id, now - job.segment_start
                )
            orphans.append(job)
        return orphans

    def drain(self, now: float) -> Tuple[List[Job], List[Job]]:
        """Pool blackout: empty every machine and the wait queue.

        Returns ``(killed, drained)``: attempts that were running or
        suspended on a machine, and jobs swept out of the wait queue.
        Individual machines keep their own up/down state; the
        pool-level ``up`` flag is the engine's to manage.
        """
        killed: List[Job] = []
        for machine in self.machines:
            killed.extend(self.evict_machine(machine, now))
        drained: List[Job] = []
        for job in list(self.wait_queue.iter_jobs()):
            self.wait_queue.remove(job)
            if self._telemetry is not None:
                self._telemetry.observe_wait(self.pool_id, now - job.segment_start)
            drained.append(job)
        return killed, drained

    # -- internals ---------------------------------------------------------------------

    def _start_on(self, job: Job, machine: Machine, now: float) -> None:
        machine.place(job)
        if self._telemetry is not None and job.state is JobState.WAITING:
            self._telemetry.observe_wait(self.pool_id, now - job.segment_start)
        job.start(machine, self.pool_id, now)
        self.busy_cores += job.spec.cores
        self.running_jobs += 1
        counts = self._running_priorities
        priority = job.spec.priority
        counts[priority] = counts.get(priority, 0) + 1

    def _suspend_on(self, victim: Job, machine: Machine, now: float) -> None:
        machine.suspend(victim)
        self._capacity_version += 1
        victim.suspend(now)
        self.suspended[victim.job_id] = victim
        self._suspend_order[victim.job_id] = self._suspend_counter
        self._suspend_counter += 1
        self.busy_cores -= victim.spec.cores
        self.running_jobs -= 1
        self._running_priorities[victim.spec.priority] -= 1

    def check_invariants(self) -> None:
        """Validate aggregate counters against per-machine state."""
        running = sum(len(m.running) for m in self.machines)
        if running != self.running_jobs:
            raise SchedulingError(
                f"pool {self.pool_id}: running-job drift (counter={self.running_jobs}, "
                f"actual={running})"
            )
        busy = sum(m.busy_cores for m in self.machines)
        if busy != self.busy_cores:
            raise SchedulingError(
                f"pool {self.pool_id}: busy-core drift (counter={self.busy_cores}, "
                f"actual={busy})"
            )
        suspended_on_machines = {
            job_id for m in self.machines for job_id in m.suspended
        }
        if suspended_on_machines != set(self.suspended):
            raise SchedulingError(
                f"pool {self.pool_id}: suspended-set drift"
            )
        actual_priorities: Dict[int, int] = {}
        for m in self.machines:
            for job in m.running.values():
                p = job.spec.priority
                actual_priorities[p] = actual_priorities.get(p, 0) + 1
        tracked = {p: c for p, c in self._running_priorities.items() if c}
        if tracked != actual_priorities:
            raise SchedulingError(
                f"pool {self.pool_id}: running-priority histogram drift "
                f"(counter={tracked}, actual={actual_priorities})"
            )
        for sig, version in self._no_first_fit.items():
            if version != self._capacity_version:
                continue
            for machine in self._eligible_machines.get(sig, ()):
                if (
                    machine.up
                    and machine.free_cores >= sig[1]
                    and machine.free_memory_gb >= sig[2]
                ):
                    raise SchedulingError(
                        f"pool {self.pool_id}: stale no-first-fit entry for {sig} "
                        f"(machine {machine.machine_id} fits)"
                    )
        for machine in self.machines:
            machine.check_invariants()
        for job in self.wait_queue.iter_jobs():
            if job.state is not JobState.WAITING:
                raise SchedulingError(
                    f"pool {self.pool_id}: queued job {job.job_id} in state {job.state.value}"
                )

    def __repr__(self) -> str:
        return (
            f"PhysicalPool({self.pool_id}, util={self.utilization():.2f}, "
            f"waiting={len(self.wait_queue)}, suspended={len(self.suspended)})"
        )
