"""Runtime machine: core/memory accounting and occupancy.

Models NetBatch's host-level semantics:

* a **running** job holds cores and memory;
* a **suspended** job releases its cores but keeps its memory resident
  (suspension is SIGSTOP-style, the process image stays on the host) —
  this is precisely why suspended jobs waste resources and why
  rescheduling them away "better utilize[s] system resources";
* consequently, preemption can free cores but never memory, so a
  high-priority job whose memory demand exceeds the host's *free*
  memory cannot be placed there by preemption.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import SchedulingError
from ..schedulers.eligibility import machine_eligible
from ..workload.cluster import MachineSpec
from .job import Job, JobState

__all__ = ["Machine"]


class Machine:
    """Mutable occupancy state of one machine."""

    __slots__ = ("spec", "free_cores", "free_memory_gb", "running", "suspended", "up")

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.free_cores = spec.cores
        self.free_memory_gb = spec.memory_gb
        self.running: Dict[int, Job] = {}
        self.suspended: Dict[int, Job] = {}
        # Fault-injection host state.  A down machine stays *statically*
        # eligible (jobs queue for it) but never passes the dynamic
        # checks, mirroring a NetBatch host that dropped out of the pool.
        self.up = True

    # -- queries ---------------------------------------------------------------

    @property
    def machine_id(self) -> str:
        """The machine's identifier."""
        return self.spec.machine_id

    @property
    def busy_cores(self) -> int:
        """Cores currently held by running jobs."""
        return self.spec.cores - self.free_cores

    def eligible(self, job_spec) -> bool:
        """Static eligibility (OS, total cores, total memory)."""
        return machine_eligible(self.spec, job_spec)

    def fits_now(self, job_spec) -> bool:
        """Whether the job could start immediately (dynamic check)."""
        return (
            self.up
            and self.free_cores >= job_spec.cores
            and self.free_memory_gb >= job_spec.memory_gb
        )

    def preemptible_cores(self, priority: int) -> int:
        """Cores held by running jobs with priority strictly below ``priority``."""
        return sum(
            job.spec.cores for job in self.running.values() if job.priority < priority
        )

    def could_fit_by_preemption(self, job_spec, priority: int) -> bool:
        """Whether suspending lower-priority work would make the job fit.

        Preemption releases victims' cores but not their memory, so the
        memory check is against *current* free memory.
        """
        if not self.up or self.free_memory_gb < job_spec.memory_gb:
            return False
        return self.free_cores + self.preemptible_cores(priority) >= job_spec.cores

    def preemption_victims(self, job_spec, priority: int) -> List[Job]:
        """Minimal set of lowest-priority running jobs to suspend.

        Victims are taken lowest priority first; within a priority
        level, in submission order.  NetBatch's host-level preemption
        does not consider how much work a victim has completed, so
        neither do we — mid-flight jobs lose real progress when a
        rescheduling policy then restarts them elsewhere, which is
        exactly the waste the paper's ResSusRand results expose.
        Returns an empty list when preemption cannot make the job fit.
        """
        if not self.could_fit_by_preemption(job_spec, priority):
            return []
        needed = job_spec.cores - self.free_cores
        if needed <= 0:
            return []
        candidates = sorted(
            (job for job in self.running.values() if job.priority < priority),
            key=lambda job: (job.priority, job.job_id),
        )
        victims: List[Job] = []
        freed = 0
        for job in candidates:
            victims.append(job)
            freed += job.spec.cores
            if freed >= needed:
                return victims
        return []  # pragma: no cover - guarded by could_fit_by_preemption

    # -- occupancy transitions ---------------------------------------------------

    def place(self, job: Job) -> None:
        """Account a job that starts running here."""
        if not self.fits_now(job.spec):
            raise SchedulingError(
                f"machine {self.machine_id}: job {job.job_id} does not fit "
                f"(free {self.free_cores}c/{self.free_memory_gb}GB, "
                f"needs {job.spec.cores}c/{job.spec.memory_gb}GB)"
            )
        self.free_cores -= job.spec.cores
        self.free_memory_gb -= job.spec.memory_gb
        self.running[job.job_id] = job

    def suspend(self, job: Job) -> None:
        """Move a running job to the suspended set (cores freed, memory kept)."""
        if job.job_id not in self.running:
            raise SchedulingError(
                f"machine {self.machine_id}: cannot suspend job {job.job_id}: not running here"
            )
        del self.running[job.job_id]
        self.suspended[job.job_id] = job
        self.free_cores += job.spec.cores

    def resume(self, job: Job) -> None:
        """Move a suspended job back to running (cores re-acquired)."""
        if job.job_id not in self.suspended:
            raise SchedulingError(
                f"machine {self.machine_id}: cannot resume job {job.job_id}: not suspended here"
            )
        if self.free_cores < job.spec.cores:
            raise SchedulingError(
                f"machine {self.machine_id}: cannot resume job {job.job_id}: "
                f"only {self.free_cores} cores free"
            )
        del self.suspended[job.job_id]
        self.running[job.job_id] = job
        self.free_cores -= job.spec.cores

    def remove(self, job: Job) -> None:
        """Detach a job entirely (finish, restart-away, or cancellation)."""
        if job.job_id in self.running:
            del self.running[job.job_id]
            self.free_cores += job.spec.cores
            self.free_memory_gb += job.spec.memory_gb
        elif job.job_id in self.suspended:
            del self.suspended[job.job_id]
            self.free_memory_gb += job.spec.memory_gb
        else:
            raise SchedulingError(
                f"machine {self.machine_id}: cannot remove job {job.job_id}: not present"
            )

    def check_invariants(self) -> None:
        """Raise :class:`SchedulingError` if occupancy accounting drifted."""
        used_cores = sum(j.spec.cores for j in self.running.values())
        used_memory = sum(
            j.spec.memory_gb for j in self.running.values()
        ) + sum(j.spec.memory_gb for j in self.suspended.values())
        if self.free_cores != self.spec.cores - used_cores:
            raise SchedulingError(
                f"machine {self.machine_id}: core accounting drift "
                f"(free={self.free_cores}, expected={self.spec.cores - used_cores})"
            )
        if abs(self.free_memory_gb - (self.spec.memory_gb - used_memory)) > 1e-6:
            raise SchedulingError(
                f"machine {self.machine_id}: memory accounting drift "
                f"(free={self.free_memory_gb}, expected={self.spec.memory_gb - used_memory})"
            )
        for job in self.running.values():
            if job.state is not JobState.RUNNING:
                raise SchedulingError(
                    f"machine {self.machine_id}: job {job.job_id} in running set "
                    f"but state is {job.state.value}"
                )
        for job in self.suspended.values():
            if job.state is not JobState.SUSPENDED:
                raise SchedulingError(
                    f"machine {self.machine_id}: job {job.job_id} in suspended set "
                    f"but state is {job.state.value}"
                )
        if not self.up and (self.running or self.suspended):
            raise SchedulingError(
                f"machine {self.machine_id}: down but still occupied"
            )

    def __repr__(self) -> str:
        return (
            f"Machine({self.machine_id}, free={self.free_cores}/{self.spec.cores}c, "
            f"running={len(self.running)}, suspended={len(self.suspended)})"
        )
