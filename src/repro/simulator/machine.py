"""Runtime machine: core/memory accounting and occupancy.

Models NetBatch's host-level semantics:

* a **running** job holds cores and memory;
* a **suspended** job releases its cores but keeps its memory resident
  (suspension is SIGSTOP-style, the process image stays on the host) —
  this is precisely why suspended jobs waste resources and why
  rescheduling them away "better utilize[s] system resources";
* consequently, preemption can free cores but never memory, so a
  high-priority job whose memory demand exceeds the host's *free*
  memory cannot be placed there by preemption.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import SchedulingError
from ..schedulers.eligibility import machine_eligible
from ..workload.cluster import MachineSpec
from .job import Job, JobState

#: Upper bound on per-machine eligibility-memo entries.  Synthetic and
#: quantised-replay workloads stay far below this; it exists so a trace
#: with pathological signature diversity degrades to recomputation
#: instead of unbounded RSS.
_ELIGIBILITY_CACHE_CAP = 4096

__all__ = ["Machine"]


class Machine:
    """Mutable occupancy state of one machine."""

    __slots__ = (
        "spec",
        "free_cores",
        "free_memory_gb",
        "running",
        "suspended",
        "up",
        "_eligibility",
        "_running_priorities",
        "_min_running_priority",
    )

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.free_cores = spec.cores
        self.free_memory_gb = spec.memory_gb
        self.running: Dict[int, Job] = {}
        self.suspended: Dict[int, Job] = {}
        # Fault-injection host state.  A down machine stays *statically*
        # eligible (jobs queue for it) but never passes the dynamic
        # checks, mirroring a NetBatch host that dropped out of the pool.
        self.up = True
        # Static eligibility verdict per requirement signature; specs
        # are immutable so entries never invalidate.
        self._eligibility: Dict[tuple, bool] = {}
        # Exact minimum priority among running jobs (inf when idle),
        # backed by a histogram of occupied priority levels.  Traces use
        # a handful of levels, so when the minimum level empties the new
        # minimum comes from a scan over the histogram keys rather than
        # the whole running set.  "new priority <= min" exactly proves
        # preemption impossible, so submit's preemption scan touches
        # only machines that truly hold a lower-priority victim.
        self._running_priorities: Dict[int, int] = {}
        self._min_running_priority = float("inf")

    # -- queries ---------------------------------------------------------------

    @property
    def machine_id(self) -> str:
        """The machine's identifier."""
        return self.spec.machine_id

    @property
    def busy_cores(self) -> int:
        """Cores currently held by running jobs."""
        return self.spec.cores - self.free_cores

    def eligible(self, job_spec) -> bool:
        """Static eligibility (OS, total cores, total memory).

        Memoized per requirement signature — both specs are immutable,
        and this check sits inside every dispatch and refill scan.
        """
        sig = (job_spec.os_family, job_spec.cores, job_spec.memory_gb)
        verdict = self._eligibility.get(sig)
        if verdict is None:
            verdict = machine_eligible(self.spec, job_spec)
            if len(self._eligibility) >= _ELIGIBILITY_CACHE_CAP:
                # A trace with unbounded distinct requirement signatures
                # (e.g. unquantised per-job byte counts) must not grow
                # this memo without bound; dropping it only costs a
                # recompute of a cheap static check.
                self._eligibility.clear()
            self._eligibility[sig] = verdict
        return verdict

    def fits_now(self, job_spec) -> bool:
        """Whether the job could start immediately (dynamic check)."""
        return (
            self.up
            and self.free_cores >= job_spec.cores
            and self.free_memory_gb >= job_spec.memory_gb
        )

    def preemptible_cores(self, priority: int) -> int:
        """Cores held by running jobs with priority strictly below ``priority``."""
        return sum(
            job.spec.cores for job in self.running.values() if job.priority < priority
        )

    def could_fit_by_preemption(self, job_spec, priority: int) -> bool:
        """Whether suspending lower-priority work would make the job fit.

        Preemption releases victims' cores but not their memory, so the
        memory check is against *current* free memory.
        """
        if not self.up or self.free_memory_gb < job_spec.memory_gb:
            return False
        return self.free_cores + self.preemptible_cores(priority) >= job_spec.cores

    def preemption_victims(self, job_spec, priority: int) -> List[Job]:
        """Minimal set of lowest-priority running jobs to suspend.

        Victims are taken lowest priority first; within a priority
        level, in submission order.  NetBatch's host-level preemption
        does not consider how much work a victim has completed, so
        neither do we — mid-flight jobs lose real progress when a
        rescheduling policy then restarts them elsewhere, which is
        exactly the waste the paper's ResSusRand results expose.
        Returns an empty list when preemption cannot make the job fit.
        """
        if not self.up or self.free_memory_gb < job_spec.memory_gb:
            return []
        needed = job_spec.cores - self.free_cores
        if needed <= 0:
            return []
        # Single pass over the (small) running set: collect candidates
        # and their total cores together, then sort only on success.
        candidates: List[Job] = []
        freed_limit = 0
        for job in self.running.values():
            if job.spec.priority < priority:
                candidates.append(job)
                freed_limit += job.spec.cores
        if freed_limit < needed:
            return []
        candidates.sort(key=lambda job: (job.spec.priority, job.job_id))
        victims: List[Job] = []
        freed = 0
        for job in candidates:
            victims.append(job)
            freed += job.spec.cores
            if freed >= needed:
                return victims
        return []  # pragma: no cover - guarded by the freed_limit check

    # -- occupancy transitions ---------------------------------------------------

    def _note_running(self, priority: int) -> None:
        """Account one more running job at ``priority``."""
        counts = self._running_priorities
        counts[priority] = counts.get(priority, 0) + 1
        if priority < self._min_running_priority:
            self._min_running_priority = priority

    def _unnote_running(self, priority: int) -> None:
        """Account one less running job at ``priority``."""
        counts = self._running_priorities
        remaining = counts[priority] - 1
        if remaining:
            counts[priority] = remaining
        else:
            del counts[priority]
            if priority == self._min_running_priority:
                self._min_running_priority = (
                    min(counts) if counts else float("inf")
                )

    def place(self, job: Job) -> None:
        """Account a job that starts running here."""
        if not self.fits_now(job.spec):
            raise SchedulingError(
                f"machine {self.machine_id}: job {job.job_id} does not fit "
                f"(free {self.free_cores}c/{self.free_memory_gb}GB, "
                f"needs {job.spec.cores}c/{job.spec.memory_gb}GB)"
            )
        self.free_cores -= job.spec.cores
        self.free_memory_gb -= job.spec.memory_gb
        self.running[job.job_id] = job
        self._note_running(job.spec.priority)

    def suspend(self, job: Job) -> None:
        """Move a running job to the suspended set (cores freed, memory kept)."""
        if job.job_id not in self.running:
            raise SchedulingError(
                f"machine {self.machine_id}: cannot suspend job {job.job_id}: not running here"
            )
        del self.running[job.job_id]
        self.suspended[job.job_id] = job
        self.free_cores += job.spec.cores
        self._unnote_running(job.spec.priority)

    def resume(self, job: Job) -> None:
        """Move a suspended job back to running (cores re-acquired)."""
        if job.job_id not in self.suspended:
            raise SchedulingError(
                f"machine {self.machine_id}: cannot resume job {job.job_id}: not suspended here"
            )
        if self.free_cores < job.spec.cores:
            raise SchedulingError(
                f"machine {self.machine_id}: cannot resume job {job.job_id}: "
                f"only {self.free_cores} cores free"
            )
        del self.suspended[job.job_id]
        self.running[job.job_id] = job
        self.free_cores -= job.spec.cores
        self._note_running(job.spec.priority)

    def remove(self, job: Job) -> None:
        """Detach a job entirely (finish, restart-away, or cancellation)."""
        if job.job_id in self.running:
            del self.running[job.job_id]
            self.free_cores += job.spec.cores
            self.free_memory_gb += job.spec.memory_gb
            self._unnote_running(job.spec.priority)
        elif job.job_id in self.suspended:
            del self.suspended[job.job_id]
            self.free_memory_gb += job.spec.memory_gb
        else:
            raise SchedulingError(
                f"machine {self.machine_id}: cannot remove job {job.job_id}: not present"
            )

    def check_invariants(self) -> None:
        """Raise :class:`SchedulingError` if occupancy accounting drifted."""
        used_cores = sum(j.spec.cores for j in self.running.values())
        used_memory = sum(
            j.spec.memory_gb for j in self.running.values()
        ) + sum(j.spec.memory_gb for j in self.suspended.values())
        if self.free_cores != self.spec.cores - used_cores:
            raise SchedulingError(
                f"machine {self.machine_id}: core accounting drift "
                f"(free={self.free_cores}, expected={self.spec.cores - used_cores})"
            )
        if abs(self.free_memory_gb - (self.spec.memory_gb - used_memory)) > 1e-6:
            raise SchedulingError(
                f"machine {self.machine_id}: memory accounting drift "
                f"(free={self.free_memory_gb}, expected={self.spec.memory_gb - used_memory})"
            )
        for job in self.running.values():
            if job.state is not JobState.RUNNING:
                raise SchedulingError(
                    f"machine {self.machine_id}: job {job.job_id} in running set "
                    f"but state is {job.state.value}"
                )
        for job in self.suspended.values():
            if job.state is not JobState.SUSPENDED:
                raise SchedulingError(
                    f"machine {self.machine_id}: job {job.job_id} in suspended set "
                    f"but state is {job.state.value}"
                )
        if not self.up and (self.running or self.suspended):
            raise SchedulingError(
                f"machine {self.machine_id}: down but still occupied"
            )
        actual_counts: Dict[int, int] = {}
        for job in self.running.values():
            p = job.spec.priority
            actual_counts[p] = actual_counts.get(p, 0) + 1
        if self._running_priorities != actual_counts:
            raise SchedulingError(
                f"machine {self.machine_id}: running-priority histogram drift "
                f"(tracked={self._running_priorities}, actual={actual_counts})"
            )
        actual_min = min(actual_counts) if actual_counts else float("inf")
        if self._min_running_priority != actual_min:
            raise SchedulingError(
                f"machine {self.machine_id}: running-priority minimum drifted "
                f"(tracked={self._min_running_priority}, actual={actual_min})"
            )

    def __repr__(self) -> str:
        return (
            f"Machine({self.machine_id}, free={self.free_cores}/{self.spec.cores}c, "
            f"running={len(self.running)}, suspended={len(self.suspended)})"
        )
