"""The one-call simulation facade.

Most users need exactly one entry point::

    from repro import run_simulation, res_sus_util, busy_week

    scenario = busy_week()
    result = run_simulation(
        scenario.trace, scenario.cluster, policy=res_sus_util()
    )

Power users construct :class:`~repro.simulator.engine.SimulationEngine`
directly (e.g. to step events manually in tests).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.policy import ReschedulingPolicy
from ..schedulers.initial import InitialScheduler
from ..workload.cluster import ClusterSpec
from ..workload.trace import Trace, TraceJob
from .config import SimulationConfig
from .engine import SimulationEngine
from .online import OnlineResults
from .results import SimulationResult

__all__ = ["run_simulation", "run_streaming"]


def run_simulation(
    trace: Trace,
    cluster: ClusterSpec,
    *,
    policy: Optional[ReschedulingPolicy] = None,
    initial_scheduler: Optional[InitialScheduler] = None,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Simulate ``trace`` on ``cluster`` and return the results.

    Args:
        trace: the workload (e.g. from a scenario preset or generator).
        cluster: the site to emulate.
        policy: dynamic rescheduling policy; defaults to the paper's
            *NoRes* baseline.
        initial_scheduler: the VPM's initial scheduler; defaults to
            NetBatch's round-robin.
        config: engine knobs; defaults to
            :class:`~repro.simulator.config.SimulationConfig`'s
            paper-faithful settings.

    Returns:
        The :class:`~repro.simulator.results.SimulationResult` with
        per-job records and per-minute state samples.
    """
    engine = SimulationEngine(
        trace,
        cluster,
        policy=policy,
        initial_scheduler=initial_scheduler,
        config=config,
    )
    return engine.run()


def run_streaming(
    feed: Iterable[TraceJob],
    cluster: ClusterSpec,
    *,
    policy: Optional[ReschedulingPolicy] = None,
    initial_scheduler: Optional[InitialScheduler] = None,
    config: Optional[SimulationConfig] = None,
    sink: Optional[OnlineResults] = None,
) -> OnlineResults:
    """Simulate a streaming trace feed with constant-memory results.

    The constant-memory counterpart of :func:`run_simulation`: ``feed``
    is any iterator of :class:`~repro.workload.trace.TraceJob` sorted by
    submission time (e.g. a :class:`~repro.workload.traces.TraceReplaySpec`
    replay of an SWF or Google-cluster log), consumed lazily by the
    engine, and every per-job record is folded into an
    :class:`~repro.simulator.online.OnlineResults` sink the moment the
    job completes.  Peak memory is bounded by the number of jobs *in
    flight*, never by the trace length; the aggregates (and
    ``sink.summary()``) are bit-identical to materialising the same
    trace and calling :func:`~repro.metrics.summary.summarize`.

    Args:
        feed: submission-sorted iterator of trace jobs.
        cluster: the site to emulate.
        policy: rescheduling policy; defaults to the NoRes baseline.
        initial_scheduler: the VPM's initial scheduler.
        config: engine knobs.
        sink: a pre-built sink (e.g. with ``keep_samples=True``);
            defaults to a fresh :class:`OnlineResults`.

    Returns:
        The finalized sink.
    """
    if isinstance(feed, Trace):
        # A materialised Trace still works, but go through the bulk
        # loader: it is faster and the sink output is identical.
        feed_arg: object = feed
    else:
        feed_arg = iter(feed)
    engine = SimulationEngine(
        feed_arg,
        cluster,
        policy=policy,
        initial_scheduler=initial_scheduler,
        config=config,
        sink=sink if sink is not None else OnlineResults(),
    )
    return engine.run()
