"""The one-call simulation facade.

Most users need exactly one entry point::

    from repro import run_simulation, res_sus_util, busy_week

    scenario = busy_week()
    result = run_simulation(
        scenario.trace, scenario.cluster, policy=res_sus_util()
    )

Power users construct :class:`~repro.simulator.engine.SimulationEngine`
directly (e.g. to step events manually in tests).
"""

from __future__ import annotations

from typing import Optional

from ..core.policy import ReschedulingPolicy
from ..schedulers.initial import InitialScheduler
from ..workload.cluster import ClusterSpec
from ..workload.trace import Trace
from .config import SimulationConfig
from .engine import SimulationEngine
from .results import SimulationResult

__all__ = ["run_simulation"]


def run_simulation(
    trace: Trace,
    cluster: ClusterSpec,
    *,
    policy: Optional[ReschedulingPolicy] = None,
    initial_scheduler: Optional[InitialScheduler] = None,
    config: Optional[SimulationConfig] = None,
) -> SimulationResult:
    """Simulate ``trace`` on ``cluster`` and return the results.

    Args:
        trace: the workload (e.g. from a scenario preset or generator).
        cluster: the site to emulate.
        policy: dynamic rescheduling policy; defaults to the paper's
            *NoRes* baseline.
        initial_scheduler: the VPM's initial scheduler; defaults to
            NetBatch's round-robin.
        config: engine knobs; defaults to
            :class:`~repro.simulator.config.SimulationConfig`'s
            paper-faithful settings.

    Returns:
        The :class:`~repro.simulator.results.SimulationResult` with
        per-job records and per-minute state samples.
    """
    engine = SimulationEngine(
        trace,
        cluster,
        policy=policy,
        initial_scheduler=initial_scheduler,
        config=config,
    )
    return engine.run()
