"""Discrete-event machinery.

The engine's event queue is a binary heap of ``(time, seq, kind,
payload)`` tuples.  ``seq`` is a monotonically increasing tie-breaker,
so events at equal times fire in scheduling order and the heap never
compares payloads.  Event kinds are plain ints for speed; the engine
dispatches on them in a single ``if`` chain.

Stale events are handled by *versioning*, not by removal: completion
events carry the job's ``epoch`` and wait-timeout events its
``wait_episode``; handlers drop events whose version no longer matches.
This keeps all heap operations O(log n) with no bookkeeping of handles.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from ..errors import SimulationError

__all__ = [
    "EventQueue",
    "EVENT_SUBMIT",
    "EVENT_FINISH",
    "EVENT_WAIT_TIMEOUT",
    "EVENT_POOL_ARRIVAL",
    "EVENT_SAMPLE",
    "EVENT_MACHINE_CRASH",
    "EVENT_MACHINE_RECOVER",
    "EVENT_POOL_DOWN",
    "EVENT_POOL_UP",
    "EVENT_JOB_FAILURE",
    "EVENT_JOB_RETRY",
    "EVENT_NAMES",
]

#: A job is submitted to its virtual pool manager.  Payload: Job.
EVENT_SUBMIT = 0
#: A running job's completion time arrives.  Payload: (Job, epoch).
EVENT_FINISH = 1
#: A waiting job's threshold check fires.  Payload: (Job, wait_episode).
EVENT_WAIT_TIMEOUT = 2
#: A rescheduled job arrives at its target pool.  Payload: (Job, pool_id).
EVENT_POOL_ARRIVAL = 3
#: The per-minute state sampler ticks.  Payload: None.
EVENT_SAMPLE = 4
#: A machine dies (fault injection).  Payload: (pool_id, Machine).
EVENT_MACHINE_CRASH = 5
#: A dead machine comes back (fault injection).  Payload: (pool_id, Machine).
EVENT_MACHINE_RECOVER = 6
#: A pool blackout window opens (fault injection).  Payload: pool_id.
EVENT_POOL_DOWN = 7
#: A pool blackout window closes (fault injection).  Payload: pool_id.
EVENT_POOL_UP = 8
#: A running job's execution segment dies (fault injection).
#: Payload: (Job, epoch).
EVENT_JOB_FAILURE = 9
#: A failed or orphaned job re-enters placement.  Payload: Job.
EVENT_JOB_RETRY = 10

EVENT_NAMES = {
    EVENT_SUBMIT: "submit",
    EVENT_FINISH: "finish",
    EVENT_WAIT_TIMEOUT: "wait-timeout",
    EVENT_POOL_ARRIVAL: "pool-arrival",
    EVENT_SAMPLE: "sample",
    EVENT_MACHINE_CRASH: "machine-crash",
    EVENT_MACHINE_RECOVER: "machine-recover",
    EVENT_POOL_DOWN: "pool-down",
    EVENT_POOL_UP: "pool-up",
    EVENT_JOB_FAILURE: "job-failure",
    EVENT_JOB_RETRY: "job-retry",
}

Event = Tuple[float, int, int, Any]


class EventQueue:
    """Min-heap of timestamped events with FIFO tie-breaking."""

    __slots__ = ("_heap", "_seq", "_now")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: int, payload: Any = None) -> None:
        """Schedule an event; must not be in the past."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule {EVENT_NAMES.get(kind, kind)} at {time} "
                f"(current time {self._now})"
            )
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def push_many_unsorted(self, events: List[Tuple[float, int, Any]]) -> None:
        """Bulk-load events (used once, for a trace's submissions).

        Much faster than repeated :meth:`push` for large traces: builds
        the tuples in one pass and heapifies.
        Only valid while the queue is empty and time is 0.
        """
        if self._heap or self._now != 0.0:
            raise SimulationError("bulk load is only allowed into an empty queue at t=0")
        self._heap = [
            (time, index, kind, payload)
            for index, (time, kind, payload) in enumerate(events)
        ]
        self._seq = len(self._heap)
        heapq.heapify(self._heap)

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event[0]
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None
