"""Discrete-event machinery.

The engine's event queue is a *calendar queue*: events are hashed into
fixed-width time buckets (a dict keyed by ``int(time / width)``), each
bucket kept unsorted until the clock reaches it, then sorted once in a
single C-speed ``list.sort`` and consumed in order.  Pushes into the
active bucket use ``bisect.insort``.  This replaces the classic single
binary heap (kept as :class:`HeapEventQueue` for differential testing):
pops are O(1) amortised instead of O(log n), and a year-scale bulk load
never pays per-event heap comparisons.

Events are ``(time, seq, kind, payload)`` tuples.  ``seq`` is a
monotonically increasing tie-breaker, so events at equal times fire in
scheduling order and ordering never compares payloads.  Because buckets
partition the time axis and every bucket is sorted by ``(time, seq)``
before consumption, the calendar queue pops in **exactly** the order
the heap implementation did — ``tests/test_events.py`` replays large
randomized mixed schedules against both implementations to prove it.

Event kinds are plain ints for speed; the engine dispatches on them
through a handler table.

Stale events are handled by *versioning*, not by removal: completion
events carry the job's ``epoch`` and wait-timeout events its
``wait_episode``; handlers drop events whose version no longer matches.
This keeps all queue operations cheap with no bookkeeping of handles.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Dict, List, Optional, Tuple

from ..errors import SimulationError

__all__ = [
    "EventQueue",
    "CalendarEventQueue",
    "HeapEventQueue",
    "EVENT_SUBMIT",
    "EVENT_FINISH",
    "EVENT_WAIT_TIMEOUT",
    "EVENT_POOL_ARRIVAL",
    "EVENT_SAMPLE",
    "EVENT_MACHINE_CRASH",
    "EVENT_MACHINE_RECOVER",
    "EVENT_POOL_DOWN",
    "EVENT_POOL_UP",
    "EVENT_JOB_FAILURE",
    "EVENT_JOB_RETRY",
    "EVENT_NAMES",
]

#: A job is submitted to its virtual pool manager.  Payload: Job.
EVENT_SUBMIT = 0
#: A running job's completion time arrives.  Payload: (Job, epoch).
EVENT_FINISH = 1
#: A waiting job's threshold check fires.  Payload: (Job, wait_episode).
EVENT_WAIT_TIMEOUT = 2
#: A rescheduled job arrives at its target pool.  Payload: (Job, pool_id).
EVENT_POOL_ARRIVAL = 3
#: The per-minute state sampler ticks.  Payload: None.
EVENT_SAMPLE = 4
#: A machine dies (fault injection).  Payload: (pool_id, Machine).
EVENT_MACHINE_CRASH = 5
#: A dead machine comes back (fault injection).  Payload: (pool_id, Machine).
EVENT_MACHINE_RECOVER = 6
#: A pool blackout window opens (fault injection).  Payload: pool_id.
EVENT_POOL_DOWN = 7
#: A pool blackout window closes (fault injection).  Payload: pool_id.
EVENT_POOL_UP = 8
#: A running job's execution segment dies (fault injection).
#: Payload: (Job, epoch).
EVENT_JOB_FAILURE = 9
#: A failed or orphaned job re-enters placement.  Payload: Job.
EVENT_JOB_RETRY = 10

EVENT_NAMES = {
    EVENT_SUBMIT: "submit",
    EVENT_FINISH: "finish",
    EVENT_WAIT_TIMEOUT: "wait-timeout",
    EVENT_POOL_ARRIVAL: "pool-arrival",
    EVENT_SAMPLE: "sample",
    EVENT_MACHINE_CRASH: "machine-crash",
    EVENT_MACHINE_RECOVER: "machine-recover",
    EVENT_POOL_DOWN: "pool-down",
    EVENT_POOL_UP: "pool-up",
    EVENT_JOB_FAILURE: "job-failure",
    EVENT_JOB_RETRY: "job-retry",
}

Event = Tuple[float, int, int, Any]

#: Default bucket width in simulated minutes when no bulk load chose one.
DEFAULT_BUCKET_WIDTH = 16.0

#: Target mean events per bucket when sizing the calendar from a bulk load.
_TARGET_BUCKET_OCCUPANCY = 16


class CalendarEventQueue:
    """Bucketed (calendar-queue) event scheduler with FIFO tie-breaking.

    Same contract as :class:`HeapEventQueue` — including bit-identical
    pop order — with O(1) amortised push/pop.  The active bucket is a
    sorted list consumed by cursor; future buckets stay unsorted until
    the clock reaches them.
    """

    __slots__ = (
        "_buckets",
        "_bucket_order",
        "_current",
        "_cursor",
        "_current_idx",
        "_width",
        "_seq",
        "_now",
        "_size",
        "_peek_idx",
        "_peek_time",
    )

    def __init__(self, bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if bucket_width <= 0:
            raise SimulationError(
                f"calendar bucket width must be > 0, got {bucket_width}"
            )
        # Unsorted future buckets, keyed by int(time / width).
        self._buckets: Dict[int, List[Event]] = {}
        # Min-heap of bucket keys awaiting activation (in sync with
        # ``_buckets``: a key is pushed when its bucket is created and
        # popped exactly when the bucket is activated).
        self._bucket_order: List[int] = []
        # The active bucket, sorted ascending, consumed via ``_cursor``.
        self._current: List[Event] = []
        self._cursor = 0
        self._current_idx = -1
        self._width = bucket_width
        self._seq = 0
        self._now = 0.0
        self._size = 0
        # Memoized (bucket key, earliest time) of the head *future*
        # bucket, maintained by push/activate so the streaming-ingest
        # loop can call peek_time() per iteration in O(1).
        self._peek_idx: Optional[int] = None
        self._peek_time = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event."""
        return self._now

    @property
    def bucket_width(self) -> float:
        """Width of one calendar bucket in simulated minutes."""
        return self._width

    def __len__(self) -> int:
        return self._size

    def push(self, time: float, kind: int, payload: Any = None) -> None:
        """Schedule an event; must not be in the past."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule {EVENT_NAMES.get(kind, kind)} at {time} "
                f"(current time {self._now})"
            )
        entry = (time, self._seq, kind, payload)
        self._seq += 1
        self._size += 1
        idx = int(time / self._width)
        if idx <= self._current_idx:
            # Lands in (or before) the active bucket: keep the sorted
            # invariant.  ``lo=_cursor`` skips the consumed prefix, and
            # any in-tolerance event earlier than remaining entries
            # simply becomes the next pop — exactly what a heap does.
            insort(self._current, entry, lo=self._cursor)
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
                heapq.heappush(self._bucket_order, idx)
            else:
                bucket.append(entry)
            # Keep the head-bucket peek memo exact: a push into the
            # memoized bucket can only lower its earliest time; a push
            # creating an earlier bucket replaces the memo outright.
            peek_idx = self._peek_idx
            if peek_idx is not None:
                if idx == peek_idx:
                    if time < self._peek_time:
                        self._peek_time = time
                elif idx < peek_idx:
                    self._peek_idx = idx
                    self._peek_time = time

    def push_many_unsorted(self, events: List[Tuple[float, int, Any]]) -> None:
        """Bulk-load events (used once, for a trace's submissions).

        Much faster than repeated :meth:`push` for large traces: events
        are hashed straight into their buckets with no per-event
        ordering work at all, and the calendar's bucket width is sized
        from the load's time span so buckets stay near the target
        occupancy.  Only valid while the queue is empty and time is 0.
        """
        if self._size or self._now != 0.0:
            raise SimulationError("bulk load is only allowed into an empty queue at t=0")
        if not events:
            return
        lo = min(e[0] for e in events)
        hi = max(e[0] for e in events)
        span = hi - lo
        count = len(events)
        if span > 0 and count >= 4 * _TARGET_BUCKET_OCCUPANCY:
            self._width = span / (count / _TARGET_BUCKET_OCCUPANCY)
        width = self._width
        buckets = self._buckets
        for index, (time, kind, payload) in enumerate(events):
            if time < 0:
                raise SimulationError(
                    f"cannot schedule {EVENT_NAMES.get(kind, kind)} at {time} "
                    f"(current time {self._now})"
                )
            entry = (time, index, kind, payload)
            idx = int(time / width)
            bucket = buckets.get(idx)
            if bucket is None:
                buckets[idx] = [entry]
            else:
                bucket.append(entry)
        self._bucket_order = sorted(buckets)
        self._seq = count
        self._size = count

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        cursor = self._cursor
        current = self._current
        if cursor >= len(current):
            self._activate_next_bucket()
            cursor = 0
            current = self._current
        event = current[cursor]
        cursor += 1
        if cursor >= len(current):
            # Bucket consumed: drop the storage so pushes landing back
            # in this (still-current) bucket start from a clean list.
            current.clear()
            cursor = 0
        self._cursor = cursor
        self._size -= 1
        self._now = event[0]
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        if self._cursor < len(self._current):
            return self._current[self._cursor][0]
        if not self._bucket_order:
            return None
        head = self._bucket_order[0]
        if self._peek_idx != head:
            self._peek_idx = head
            self._peek_time = min(self._buckets[head])[0]
        return self._peek_time

    def advance_to(self, time: float) -> None:
        """Advance the clock to ``time`` without popping an event.

        Used by the streaming-ingest loop, which processes trace
        submissions outside the queue: before handling a submission at
        minute ``t`` the clock must read ``t``, exactly as it would had
        the submission been a popped event.  Never moves time backwards.
        """
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot advance the clock to {time} (current time {self._now})"
            )
        if time > self._now:
            self._now = time

    def _activate_next_bucket(self) -> None:
        """Sort the earliest pending bucket and make it active."""
        if not self._bucket_order:
            raise SimulationError("pop from an empty event queue")
        idx = heapq.heappop(self._bucket_order)
        bucket = self._buckets.pop(idx)
        bucket.sort()
        self._current = bucket
        self._cursor = 0
        self._current_idx = idx
        if self._peek_idx == idx:
            self._peek_idx = None


class HeapEventQueue:
    """Min-heap of timestamped events with FIFO tie-breaking.

    The original single-heap scheduler, kept as the reference
    implementation: the calendar queue must reproduce its pop order
    bit-for-bit, and the differential tests replay mixed schedules
    against both.
    """

    __slots__ = ("_heap", "_seq", "_now")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, kind: int, payload: Any = None) -> None:
        """Schedule an event; must not be in the past."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule {EVENT_NAMES.get(kind, kind)} at {time} "
                f"(current time {self._now})"
            )
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def push_many_unsorted(self, events: List[Tuple[float, int, Any]]) -> None:
        """Bulk-load events (used once, for a trace's submissions).

        Builds the tuples in one pass and heapifies.  Only valid while
        the queue is empty and time is 0.
        """
        if self._heap or self._now != 0.0:
            raise SimulationError("bulk load is only allowed into an empty queue at t=0")
        self._heap = [
            (time, index, kind, payload)
            for index, (time, kind, payload) in enumerate(events)
        ]
        self._seq = len(self._heap)
        heapq.heapify(self._heap)

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event[0]
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def advance_to(self, time: float) -> None:
        """Advance the clock without popping (see :meth:`CalendarEventQueue.advance_to`)."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot advance the clock to {time} (current time {self._now})"
            )
        if time > self._now:
            self._now = time


#: The engine's event queue implementation.
EventQueue = CalendarEventQueue
