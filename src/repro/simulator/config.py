"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.overheads import NO_OVERHEAD, RestartOverhead
from ..errors import ConfigurationError
from ..faults.config import NO_FAULTS, FaultConfig
from ..telemetry.instrumentation import NO_INSTRUMENTATION, Instrumentation

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Engine knobs, all with paper-faithful defaults.

    Attributes:
        sample_interval: minutes between state samples.  ASCA "samples
            at each minute the current states of all NetBatch
            components", so the default is 1.0; raise it for very long
            horizons where per-minute samples are not needed.
        vpm_count: number of virtual pool managers accepting
            submissions; jobs are assigned round-robin by job id.  The
            paper's site has several, but its evaluation semantics do
            not depend on the count, so the default is 1.
        seed: seed for the simulation-side random streams (stochastic
            policies and schedulers); independent from workload seeds.
        strict: when True, a job that is statically ineligible on every
            candidate pool raises
            :class:`~repro.errors.UnschedulableJobError`; when False it
            is recorded as rejected and the run continues.
        restart_overhead: delay model applied to every rescheduling
            move (the paper's evaluation uses none).
        migration_overhead: delay model applied to MIGRATE moves
            (checkpoint/image transfer); defaults to none.
        migration_dilation: fraction of a migrated job's *remaining*
            work added as overhead, modelling the 10-20% virtualised
            execution penalty the paper cites when discussing VM
            migration (Section 2.3).
        max_minutes: optional hard wall on simulated time; exceeding it
            raises :class:`~repro.errors.SimulationError`.  A guard
            against pathological workloads, not a normal stop.
        record_samples: disable to skip state sampling entirely (saves
            memory in policy-search sweeps that only need job records).
        check_invariants: run deep state validation at every sample
            tick.  Very slow; meant for tests.
        faults: the :class:`~repro.faults.FaultConfig` fault model
            (machine churn, pool outages, transient job failures).
            Defaults to the disabled :data:`~repro.faults.NO_FAULTS`,
            in which case the engine takes the exact pre-fault code
            paths and the field is excluded from cache keys — see
            ``docs/robustness.md``.
        instrumentation: the typed
            :class:`~repro.telemetry.Instrumentation` aggregate — a
            tuple of event observers that all receive every simulation
            event, an optional
            :class:`~repro.telemetry.MetricsRegistry` the engine
            records metrics into, and a profiler switch.  Defaults to
            the disabled :data:`~repro.telemetry.NO_INSTRUMENTATION`.
            Telemetry is strictly read-only: enabling it never changes
            a :class:`~repro.simulator.results.SimulationResult`.
        observer: removed single-observer field.  It went through a
            deprecation cycle (warn-and-fold); a non-``None`` value now
            raises :class:`~repro.errors.ConfigurationError` with the
            migration hint.  Use
            ``instrumentation=Instrumentation(observers=(obs,))``.
    """

    sample_interval: float = 1.0
    vpm_count: int = 1
    seed: int = 0
    strict: bool = True
    restart_overhead: RestartOverhead = field(default_factory=lambda: NO_OVERHEAD)
    migration_overhead: RestartOverhead = field(default_factory=lambda: NO_OVERHEAD)
    migration_dilation: float = 0.0
    max_minutes: Optional[float] = None
    record_samples: bool = True
    check_invariants: bool = False
    faults: FaultConfig = NO_FAULTS
    instrumentation: Instrumentation = NO_INSTRUMENTATION
    observer: Optional[object] = None

    def __post_init__(self) -> None:
        if not isinstance(self.instrumentation, Instrumentation):
            raise ConfigurationError(
                "instrumentation must be an Instrumentation instance, "
                f"got {type(self.instrumentation).__name__}"
            )
        if not isinstance(self.faults, FaultConfig):
            raise ConfigurationError(
                f"faults must be a FaultConfig instance, got {type(self.faults).__name__}"
            )
        if self.observer is not None:
            raise ConfigurationError(
                "SimulationConfig(observer=...) was removed after its "
                "deprecation cycle; pass "
                "instrumentation=Instrumentation(observers=(obs,)) instead"
            )
        if self.sample_interval <= 0:
            raise ConfigurationError(
                f"sample_interval must be > 0, got {self.sample_interval}"
            )
        if self.vpm_count < 1:
            raise ConfigurationError(f"vpm_count must be >= 1, got {self.vpm_count}")
        if self.max_minutes is not None and self.max_minutes <= 0:
            raise ConfigurationError(
                f"max_minutes must be > 0 when set, got {self.max_minutes}"
            )
        if self.migration_dilation < 0:
            raise ConfigurationError(
                f"migration_dilation must be >= 0, got {self.migration_dilation}"
            )
