"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.overheads import NO_OVERHEAD, RestartOverhead
from ..errors import ConfigurationError

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Engine knobs, all with paper-faithful defaults.

    Attributes:
        sample_interval: minutes between state samples.  ASCA "samples
            at each minute the current states of all NetBatch
            components", so the default is 1.0; raise it for very long
            horizons where per-minute samples are not needed.
        vpm_count: number of virtual pool managers accepting
            submissions; jobs are assigned round-robin by job id.  The
            paper's site has several, but its evaluation semantics do
            not depend on the count, so the default is 1.
        seed: seed for the simulation-side random streams (stochastic
            policies and schedulers); independent from workload seeds.
        strict: when True, a job that is statically ineligible on every
            candidate pool raises
            :class:`~repro.errors.UnschedulableJobError`; when False it
            is recorded as rejected and the run continues.
        restart_overhead: delay model applied to every rescheduling
            move (the paper's evaluation uses none).
        migration_overhead: delay model applied to MIGRATE moves
            (checkpoint/image transfer); defaults to none.
        migration_dilation: fraction of a migrated job's *remaining*
            work added as overhead, modelling the 10-20% virtualised
            execution penalty the paper cites when discussing VM
            migration (Section 2.3).
        max_minutes: optional hard wall on simulated time; exceeding it
            raises :class:`~repro.errors.SimulationError`.  A guard
            against pathological workloads, not a normal stop.
        record_samples: disable to skip state sampling entirely (saves
            memory in policy-search sweeps that only need job records).
        check_invariants: run deep state validation at every sample
            tick.  Very slow; meant for tests.
        observer: optional :class:`~repro.simulator.observer.EventObserver`
            receiving every simulation event (ASCA-style event log);
            ``None`` disables event emission entirely.
    """

    sample_interval: float = 1.0
    vpm_count: int = 1
    seed: int = 0
    strict: bool = True
    restart_overhead: RestartOverhead = field(default_factory=lambda: NO_OVERHEAD)
    migration_overhead: RestartOverhead = field(default_factory=lambda: NO_OVERHEAD)
    migration_dilation: float = 0.0
    max_minutes: Optional[float] = None
    record_samples: bool = True
    check_invariants: bool = False
    observer: Optional[object] = None

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ConfigurationError(
                f"sample_interval must be > 0, got {self.sample_interval}"
            )
        if self.vpm_count < 1:
            raise ConfigurationError(f"vpm_count must be >= 1, got {self.vpm_count}")
        if self.max_minutes is not None and self.max_minutes <= 0:
            raise ConfigurationError(
                f"max_minutes must be > 0 when set, got {self.max_minutes}"
            )
        if self.migration_dilation < 0:
            raise ConfigurationError(
                f"migration_dilation must be >= 0, got {self.migration_dilation}"
            )
