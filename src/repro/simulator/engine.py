"""The simulation engine: our from-scratch stand-in for Intel's ASCA.

ASCA is "a hybrid event-based and agent-based simulator ... [that]
models the operational capability and semantics of various fine-grained
components of NetBatch such as sites, pools, queues, job requirements
and priorities, virtual and physical pool managers, round-robin
physical pool scheduling.  It samples at each minute the current states
of all NetBatch components" (Section 3.1).  This engine reproduces that
design: a discrete-event core (submissions, completions, wait-timeout
checks, rescheduling arrivals) plus a periodic sampling tick.

The engine owns the event queue and the policy/scheduler hook points;
pools own machine-level bookkeeping; jobs own their accounting.  The
rescheduling policy is consulted exactly where the paper inserts its
strategies: when a job is suspended by preemption, and when a waiting
job crosses the policy's threshold.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import replace
from time import perf_counter
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from ..core.context import PoolSnapshot, SystemView
from ..core.decisions import Action, Decision
from ..core.policy import ReschedulingPolicy
from ..core.policies import NoRescheduling
from ..errors import (
    SchedulingError,
    SimulationError,
    UnknownPoolError,
    UnschedulableJobError,
)
from ..faults.injector import FaultInjector
from ..schedulers.eligibility import machine_eligible
from ..schedulers.initial import InitialScheduler, RoundRobinScheduler
from ..telemetry.hooks import EngineTelemetry
from ..telemetry.profiler import EngineProfiler
from ..workload.cluster import ClusterSpec
from ..workload.distributions import RandomStreams
from ..workload.trace import Trace, TraceJob
from .config import SimulationConfig
from .events import (
    EVENT_FINISH,
    EVENT_JOB_FAILURE,
    EVENT_JOB_RETRY,
    EVENT_MACHINE_CRASH,
    EVENT_MACHINE_RECOVER,
    EVENT_NAMES,
    EVENT_POOL_ARRIVAL,
    EVENT_POOL_DOWN,
    EVENT_POOL_UP,
    EVENT_SAMPLE,
    EVENT_SUBMIT,
    EVENT_WAIT_TIMEOUT,
    EventQueue,
)
from .job import Job, JobState
from .machine import Machine
from .pool import PhysicalPool, SubmitOutcome, SubmitResult
from .observer import SimEvent
from .results import JobRecord, SimulationResult, StateSample
from .virtual_pool import VirtualPoolManager

__all__ = ["SimulationEngine", "LiveSystemView", "STREAMING_SHADOW_ID_BASE"]

#: First shadow-job id in streaming mode.  A streaming feed's maximum
#: job id is unknown until the feed is exhausted, so shadow attempts
#: are numbered from a base no sane trace reaches instead of
#: ``max(trace ids) + 1``.
STREAMING_SHADOW_ID_BASE = 1 << 62

#: Upper bound on entries in the engine-level eligibility memos.  Keeps
#: replay RSS bounded even for traces whose requirement signatures never
#: repeat; overflow degrades to recomputation, never to wrong answers.
_SIGNATURE_CACHE_CAP = 8192


class LiveSystemView(SystemView):
    """A :class:`SystemView` backed by the engine's live state."""

    def __init__(self, engine: "SimulationEngine") -> None:
        self._engine = engine

    @property
    def now(self) -> float:
        return self._engine.now

    @property
    def pool_ids(self) -> Tuple[str, ...]:
        return self._engine.pool_order

    def pool(self, pool_id: str) -> PoolSnapshot:
        try:
            return self._engine.pools[pool_id].snapshot()
        except KeyError:
            raise UnknownPoolError(pool_id) from None

    @property
    def rng(self) -> random.Random:
        return self._engine.decision_rng

    def candidate_pools(self, job) -> Tuple[str, ...]:
        """Pools the job may run in, is statically eligible in, and that are up."""
        return self._engine.available_candidates(job.spec)


class SimulationEngine:
    """Runs one trace against one cluster under one policy."""

    def __init__(
        self,
        trace: Union[Trace, Iterable[TraceJob]],
        cluster: ClusterSpec,
        policy: Optional[ReschedulingPolicy] = None,
        initial_scheduler: Optional[InitialScheduler] = None,
        config: Optional[SimulationConfig] = None,
        sink=None,
    ) -> None:
        """Build one single-use engine.

        Args:
            trace: the workload.  A :class:`~repro.workload.trace.Trace`
                is bulk-loaded up front (the classic path); any other
                iterable of :class:`TraceJob` is consumed **lazily** in
                submission order during :meth:`run` — constant-memory
                streaming ingestion for traces too large to materialise.
                Streaming feeds must be sorted by ``submit_minute``.
            cluster: the site to emulate.
            policy: rescheduling policy (default: the NoRes baseline).
            initial_scheduler: VPM initial scheduler (default round-robin).
            config: engine knobs.
            sink: optional result sink (e.g.
                :class:`~repro.simulator.online.OnlineResults`).  When
                given, per-job records and samples are folded into it as
                they are produced instead of being materialised, and
                :meth:`run` returns ``sink.finalize(...)``'s value
                instead of a :class:`SimulationResult`.
        """
        self.config = config or SimulationConfig()
        self.policy = policy or NoRescheduling()
        self.scheduler = initial_scheduler or RoundRobinScheduler()
        # A reused scheduler instance (grids share one object across
        # cells) must not leak placement state between runs: every
        # simulation is a pure function of its inputs.
        self.scheduler.reset()
        instrumentation = self.config.instrumentation
        self._observers = instrumentation.observers
        self._telemetry: Optional[EngineTelemetry] = (
            EngineTelemetry(instrumentation.metrics, cluster.pool_ids)
            if instrumentation.metrics is not None
            else None
        )
        self._profiler: Optional[EngineProfiler] = (
            EngineProfiler() if instrumentation.profile else None
        )
        self._emit_enabled = bool(self._observers) or self._telemetry is not None
        self.pools: Dict[str, PhysicalPool] = {
            pool.pool_id: PhysicalPool(pool, telemetry=self._telemetry)
            for pool in cluster
        }
        self.pool_order: Tuple[str, ...] = cluster.pool_ids
        self.total_cores = cluster.total_cores
        # Per-pool core totals in pool order; immutable over a run, so
        # the sampling tick need not rebuild the list every minute.
        self._pool_core_totals = [
            self.pools[pool_id].total_cores for pool_id in self.pool_order
        ]
        self._streams = RandomStreams(self.config.seed)
        self.decision_rng = self._streams.stream("decisions")
        self.view = LiveSystemView(self)
        self._vpms = [
            VirtualPoolManager(f"vpm-{i}", self.scheduler, self.pools)
            for i in range(self.config.vpm_count)
        ]
        self._events = EventQueue()
        self._records: List[JobRecord] = []
        self._samples: List[StateSample] = []
        self._sink = sink
        # Hot-path record/sample routing: bound once, so the recording
        # sites need no per-record sink check.
        self._add_record = self._records.append if sink is None else sink.add_record
        self._add_sample = self._samples.append if sink is None else sink.add_sample
        streaming = not isinstance(trace, Trace)
        self._feed = iter(trace) if streaming else None
        #: True once a streaming feed has yielded its last job (always
        #: True in materialised mode: every submission is queued up
        #: front, so the sampler's keep-alive check needs no feed term).
        self._feed_exhausted = not streaming
        self._outstanding = 0 if streaming else len(trace)
        # Eligible-pool tuples cached at two levels: per requirement
        # signature, and per (signature, whitelist) pair so whitelisted
        # jobs skip the per-call filter too.
        self._signature_pools: Dict[Tuple[str, int, float], Tuple[str, ...]] = {}
        self._eligibility_cache: Dict[tuple, Tuple[str, ...]] = {}
        self._dup_partner: Dict[int, Job] = {}
        # Permanently failed members of duplicate pairs, keyed by the
        # surviving attempt's job id so the survivor's record (or
        # failure) merges both attempts' accounting.
        self._dup_fallen: Dict[int, Job] = {}
        self._outage_depth: Dict[str, int] = {}
        if streaming:
            # The feed's maximum job id is unknown until it is drained;
            # shadow attempts start from a base no real trace reaches.
            self._shadow_ids = itertools.count(STREAMING_SHADOW_ID_BASE)
            if self.config.record_samples:
                self._events.push(0.0, EVENT_SAMPLE, None)
        else:
            self._shadow_ids = itertools.count(
                (max((j.job_id for j in trace), default=0) + 1) if len(trace) else 1
            )
        self._finished = False

        if not streaming:
            events: List[Tuple[float, int, object]] = [
                (spec.submit_minute, EVENT_SUBMIT, Job(spec)) for spec in trace
            ]
            if self.config.record_samples:
                events.append((0.0, EVENT_SAMPLE, None))
            self._events.push_many_unsorted(events)
        self._faults: Optional[FaultInjector] = None
        if self.config.faults.enabled:
            self._faults = FaultInjector(
                self.config.faults, self._streams, telemetry=self._telemetry
            )
            self._faults.schedule_initial(self._events, self.pool_order, self.pools)
        # Handler table indexed by event kind (the kinds are dense small
        # ints); every handler takes (payload, now).  Replaces a per-event
        # if/elif chain in the drain loop.
        handlers = {
            EVENT_SUBMIT: self._on_submit,
            EVENT_FINISH: self._on_finish,
            EVENT_WAIT_TIMEOUT: self._on_wait_timeout,
            EVENT_POOL_ARRIVAL: self._on_pool_arrival,
            EVENT_SAMPLE: self._on_sample,
            EVENT_MACHINE_CRASH: self._on_machine_crash,
            EVENT_MACHINE_RECOVER: self._on_machine_recover,
            EVENT_POOL_DOWN: self._on_pool_down,
            EVENT_POOL_UP: self._on_pool_up,
            EVENT_JOB_FAILURE: self._on_job_failure,
            EVENT_JOB_RETRY: self._on_job_retry,
        }
        self._dispatch = tuple(handlers[kind] for kind in range(len(handlers)))

    # -- public API -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in minutes."""
        return self._events.now

    def profile_report(self):
        """The run's :class:`~repro.telemetry.ProfileReport`, or ``None``.

        Available after :meth:`run` when the configuration enabled
        ``instrumentation.profile``.
        """
        if self._profiler is None:
            return None
        return self._profiler.report()

    def run(self) -> SimulationResult:
        """Execute until every job completes; return the result.

        With a ``sink`` the return value is ``sink.finalize(...)``'s
        result (an :class:`~repro.simulator.online.OnlineResults` for
        the standard sink) instead of a :class:`SimulationResult`.
        """
        if self._finished:
            raise SimulationError("engine instances are single-use; build a new one")
        max_minutes = self.config.max_minutes
        events = self._events
        telemetry = self._telemetry
        profiler = self._profiler
        if profiler is not None:
            profiler.start()
        faults = self._faults
        dispatch = self._dispatch
        pop = events.pop
        if self._feed is not None:
            self._drain_streaming()
        elif telemetry is None and profiler is None:
            # Fast drain: no per-event instrumentation checks at all.
            # Fault renewal processes (machine crash/recover) outlive
            # the workload; once every job is accounted for, the
            # remaining events are pure fault noise and the run is over.
            # Without faults the queue drains naturally, exactly as
            # before.
            while len(events):
                if faults is not None and self._outstanding == 0:
                    break
                time, _, kind, payload = pop()
                if max_minutes is not None and time > max_minutes:
                    raise SimulationError(
                        f"simulation exceeded max_minutes={max_minutes} "
                        f"with {self._outstanding} jobs outstanding"
                    )
                dispatch[kind](payload, time)
        else:
            while len(events):
                if faults is not None and self._outstanding == 0:
                    break
                time, _, kind, payload = pop()
                if max_minutes is not None and time > max_minutes:
                    raise SimulationError(
                        f"simulation exceeded max_minutes={max_minutes} "
                        f"with {self._outstanding} jobs outstanding"
                    )
                if telemetry is not None:
                    telemetry.count_queue_event(EVENT_NAMES[kind])
                if profiler is not None:
                    started_at = perf_counter()
                dispatch[kind](payload, time)
                if profiler is not None:
                    profiler.record(EVENT_NAMES[kind], perf_counter() - started_at)
        if profiler is not None:
            profiler.stop()
        if self._outstanding != 0:
            raise SimulationError(
                f"event queue drained with {self._outstanding} jobs unfinished"
            )
        self._finished = True
        if telemetry is not None:
            telemetry.finalize(
                self.now,
                self._outstanding,
                self.pool_order,
                {
                    pool_id: self.pools[pool_id].wait_queue.stats()
                    for pool_id in self.pool_order
                },
                profiler=profiler,
            )
        for observer in self._observers:
            close = getattr(observer, "close", None)
            if close is not None:
                close()
        fault_stats = None
        if faults is not None:
            # The sink accumulates completed demand record-by-record in
            # the same order finalize() would sum it, so both paths
            # produce bit-identical goodput.
            fault_stats = (
                faults.finalize_with_goodput(self._sink.goodput_minutes)
                if self._sink is not None
                else faults.finalize(self._records)
            )
        if self._sink is not None:
            return self._sink.finalize(
                pool_ids=self.pool_order,
                policy_name=self.policy.name,
                scheduler_name=self.scheduler.name,
                total_cores=self.total_cores,
                fault_stats=fault_stats,
            )
        return SimulationResult(
            records=self._records,
            samples=self._samples,
            pool_ids=self.pool_order,
            policy_name=self.policy.name,
            scheduler_name=self.scheduler.name,
            total_cores=self.total_cores,
            fault_stats=fault_stats,
        )

    def _drain_streaming(self) -> None:
        """The event loop for a lazily consumed (streaming) trace feed.

        Submissions are *pulled* from the feed and processed directly —
        never queued — so memory stays constant in the trace length:
        only in-flight jobs and their runtime events are live at any
        moment.  Pop order is nevertheless **bit-identical** to the
        materialised path: bulk load gives every submission a lower seq
        than any runtime event, so at equal times submissions fire
        first, in trace order — exactly what processing the next
        arrival whenever ``submit_minute <= peek_time()`` reproduces
        (the clock is advanced to the submission time first, as a popped
        event would have done).
        """
        events = self._events
        max_minutes = self.config.max_minutes
        telemetry = self._telemetry
        profiler = self._profiler
        instrumented = telemetry is not None or profiler is not None
        faults = self._faults
        dispatch = self._dispatch
        pop = events.pop
        peek = events.peek_time
        advance = events.advance_to
        on_submit = self._on_submit
        feed = self._feed
        next_spec = next(feed, None)
        if next_spec is None:
            self._feed_exhausted = True
        last_submit = 0.0
        while True:
            if next_spec is not None:
                queue_time = peek()
                submit_minute = next_spec.submit_minute
                if queue_time is None or submit_minute <= queue_time:
                    if submit_minute < last_submit:
                        raise SimulationError(
                            f"streaming trace feed is not sorted by submission "
                            f"time: job {next_spec.job_id} submits at minute "
                            f"{submit_minute} after minute {last_submit}"
                        )
                    last_submit = submit_minute
                    if max_minutes is not None and submit_minute > max_minutes:
                        raise SimulationError(
                            f"simulation exceeded max_minutes={max_minutes} "
                            f"with {self._outstanding} jobs outstanding"
                        )
                    advance(submit_minute)
                    self._outstanding += 1
                    if instrumented:
                        if telemetry is not None:
                            telemetry.count_queue_event("submit")
                        if profiler is not None:
                            started_at = perf_counter()
                        on_submit(Job(next_spec), submit_minute)
                        if profiler is not None:
                            profiler.record("submit", perf_counter() - started_at)
                    else:
                        on_submit(Job(next_spec), submit_minute)
                    next_spec = next(feed, None)
                    if next_spec is None:
                        self._feed_exhausted = True
                    continue
            if not len(events):
                break
            if faults is not None and next_spec is None and self._outstanding == 0:
                break
            time, _, kind, payload = pop()
            if max_minutes is not None and time > max_minutes:
                raise SimulationError(
                    f"simulation exceeded max_minutes={max_minutes} "
                    f"with {self._outstanding} jobs outstanding"
                )
            if instrumented:
                if telemetry is not None:
                    telemetry.count_queue_event(EVENT_NAMES[kind])
                if profiler is not None:
                    started_at = perf_counter()
                dispatch[kind](payload, time)
                if profiler is not None:
                    profiler.record(EVENT_NAMES[kind], perf_counter() - started_at)
            else:
                dispatch[kind](payload, time)

    def eligible_candidates(self, spec: TraceJob) -> Tuple[str, ...]:
        """Pools where ``spec`` is whitelisted and statically eligible.

        Cached by requirement signature (OS, cores, memory) and, one
        level up, by (signature, whitelist): traces contain few distinct
        signatures and whitelists, so both the per-pool machine scans
        and the whitelist filtering amortise to nothing.  Equal keys
        normally return the same tuple object; after a cache-cap clear
        they return a new-but-equal tuple, which schedulers keying
        round-robin state on the candidate tuple handle by value.
        """
        key = (spec.os_family, spec.cores, spec.memory_gb, spec.candidate_pools)
        cached = self._eligibility_cache.get(key)
        if cached is not None:
            return cached
        signature = key[:3]
        eligible = self._signature_pools.get(signature)
        if eligible is None:
            eligible = tuple(
                pool_id
                for pool_id in self.pool_order
                if any(
                    machine_eligible(m.spec, spec)
                    for m in self.pools[pool_id].machines
                )
            )
            if len(self._signature_pools) >= _SIGNATURE_CACHE_CAP:
                self._signature_pools.clear()
            self._signature_pools[signature] = eligible
        if spec.candidate_pools is None:
            result = eligible
        else:
            allowed = set(spec.candidate_pools)
            result = tuple(pool_id for pool_id in eligible if pool_id in allowed)
        if len(self._eligibility_cache) >= _SIGNATURE_CACHE_CAP:
            # Bounded so traces with unbounded signature diversity cost
            # recomputes, not RSS.  Equal keys after a clear produce a
            # new-but-equal tuple; schedulers key state by value, so
            # round-robin positions survive.
            self._eligibility_cache.clear()
        self._eligibility_cache[key] = result
        return result

    def available_candidates(self, spec: TraceJob) -> Tuple[str, ...]:
        """Eligible pools that are also currently up.

        Without fault injection every pool is always up and this *is*
        :meth:`eligible_candidates` (same tuple object, so scheduler
        state keyed on the candidate tuple is unaffected).
        """
        candidates = self.eligible_candidates(spec)
        if self._faults is None:
            return candidates
        return tuple(p for p in candidates if self.pools[p].up)

    # -- event handlers -----------------------------------------------------------------

    def _emit(
        self,
        now: float,
        event: str,
        job: Job,
        pool_id: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Fan one simulation event out to telemetry and all observers.

        The enabled-check lives here so emission can never be
        accidentally skipped for one consumer; hot call sites *also*
        pre-check ``_emit_enabled`` before building detail strings, so
        the telemetry-off path pays neither string formatting nor this
        call.
        """
        if not self._emit_enabled:
            return
        if self._telemetry is not None:
            self._telemetry.count_event(event)
        if self._observers:
            if job.is_shadow and detail is None:
                detail = "shadow"
            sim_event = SimEvent(
                minute=now, event=event, job_id=job.job_id,
                pool_id=pool_id, detail=detail,
            )
            for observer in self._observers:
                observer.on_event(sim_event)

    def _on_submit(self, job: Job, now: float) -> None:
        if self._emit_enabled:
            self._emit(now, "submit", job)
        self._place_via_vpm(job, now)

    def _place_via_vpm(self, job: Job, now: float) -> None:
        """Hand a PENDING job to its virtual pool manager.

        Shared by submission, orphan requeue and retry.  When fault
        injection has every statically-eligible pool dark, placement is
        deferred rather than rejected: the job tries again after the
        configured requeue delay.
        """
        candidates = self.available_candidates(job.spec)
        if (
            self._faults is not None
            and not candidates
            and self.eligible_candidates(job.spec)
        ):
            self._faults.note_deferred()
            self._emit(now, "fault-defer", job)
            self._events.push(
                now + self.config.faults.requeue_delay_minutes, EVENT_JOB_RETRY, job
            )
            return
        vpm = self._vpms[job.job_id % len(self._vpms)]
        result, _ = vpm.submit(job, candidates, self.view, now)
        self._after_placement(job, result, now)

    def _on_finish(self, payload: Tuple[Job, int], now: float) -> None:
        job, epoch = payload
        if job.epoch != epoch:
            return  # stale completion from before a suspension/restart
        pool_id = job.pool_id
        if job.state is JobState.RUNNING:
            pool = self.pools[pool_id]
            finish_pool = pool_id
            machine = pool.finish_job(job, now)
        elif job.state is JobState.SUSPENDED and job.fractional_share:
            # A fractional-share grant let the suspended job run out its
            # remaining work in place (see _grant_fraction).
            pool = self.pools[pool_id]
            finish_pool = pool_id
            machine = pool.finish_suspended(job, now)
        else:
            return  # stale completion from before a suspension/restart
        if self._emit_enabled:
            self._emit(now, "finish", job, pool_id=finish_pool)
        partner = self._dup_partner.pop(job.job_id, None)
        if partner is not None:
            self._dup_partner.pop(partner.job_id, None)
            self._cancel_attempt(partner, now)
        else:
            # A pair member that permanently failed earlier has nothing
            # left to cancel, but its accounting still merges in.
            partner = self._dup_fallen.pop(job.job_id, None)
        self._record_completion(job, partner, now)
        self._fill(pool, machine, now)

    def _on_wait_timeout(self, payload: Tuple[Job, int], now: float) -> None:
        job, episode = payload
        if job.state is not JobState.WAITING or job.wait_episode != episode:
            return  # the job started or moved since this check was scheduled
        decision = self.policy.on_wait_timeout(job, self.view)
        if self._telemetry is not None:
            self._telemetry.count_policy_decision(
                self.policy.name, decision.action.value
            )
        target = self._validated_target(job, decision)
        if target is None:
            # Keep checking: the paper's per-job timer re-arms while the
            # job remains stuck.
            threshold = self.policy.wait_threshold
            if threshold is not None:
                self._events.push(now + threshold, EVENT_WAIT_TIMEOUT, (job, episode))
            return
        origin_id = job.pool_id
        self.pools[origin_id].remove_waiting(job, now)
        if self._emit_enabled:
            self._emit(now, "dequeue", job, pool_id=origin_id)
        # A moved job may itself preempt lower-priority work at the
        # target pool; run those victims through the suspension hook.
        victims = self._move_to_pool(job, target, now, origin=origin_id)
        if victims:
            self._process_victims(victims, now)

    def _on_pool_arrival(self, payload: Tuple[Job, str], now: float) -> None:
        job, pool_id = payload
        if job.state is JobState.FINISHED:
            return  # cancelled while in transit (duplication loser)
        if job.state is not JobState.PENDING:
            raise SimulationError(
                f"job {job.job_id} arrived at pool {pool_id} in state {job.state.value}"
            )
        if self._faults is not None and not self.pools[pool_id].up:
            # The target went dark while the job was in transit; route
            # around it like any other placement.
            self._emit(now, "fault-reroute", job, pool_id=pool_id)
            self._place_via_vpm(job, now)
            return
        result = self.pools[pool_id].submit(job, now)
        if result.outcome is SubmitOutcome.INELIGIBLE:
            raise SchedulingError(
                f"job {job.job_id} was rescheduled to pool {pool_id} "
                f"where it is statically ineligible"
            )
        self._after_placement(job, result, now)

    def _on_sample(self, _payload: None, now: float) -> None:
        busy = 0
        running = 0
        suspended = 0
        waiting = 0
        per_pool_busy: List[int] = []
        per_pool_waiting: List[int] = []
        per_pool_suspended: List[int] = []
        for pool_id in self.pool_order:
            pool = self.pools[pool_id]
            pool_waiting = len(pool.wait_queue)
            pool_suspended = len(pool.suspended)
            busy += pool.busy_cores
            running += pool.running_jobs
            suspended += pool_suspended
            waiting += pool_waiting
            per_pool_busy.append(pool.busy_cores)
            per_pool_waiting.append(pool_waiting)
            per_pool_suspended.append(pool_suspended)
        self._add_sample(
            StateSample(
                minute=now,
                busy_cores=busy,
                total_cores=self.total_cores,
                running_jobs=running,
                suspended_jobs=suspended,
                waiting_jobs=waiting,
                per_pool_busy=tuple(per_pool_busy),
                per_pool_waiting=tuple(per_pool_waiting),
                per_pool_suspended=tuple(per_pool_suspended),
            )
        )
        if self._telemetry is not None:
            self._telemetry.on_sample(
                now,
                self._outstanding,
                self.total_cores,
                self.pool_order,
                per_pool_busy,
                self._pool_core_totals,
                per_pool_waiting,
                per_pool_suspended,
            )
        if self.config.check_invariants:
            for pool in self.pools.values():
                pool.check_invariants()
        if self._outstanding > 0 or not self._feed_exhausted:
            self._events.push(now + self.config.sample_interval, EVENT_SAMPLE, None)

    # -- fault handlers -----------------------------------------------------------------

    def _on_machine_crash(self, payload: Tuple[str, Machine], now: float) -> None:
        pool_id, machine = payload
        faults = self._faults
        machine.up = False
        faults.note_machine_crash()
        self._events.push(
            now + faults.draw_ttr(pool_id, machine.machine_id),
            EVENT_MACHINE_RECOVER,
            (pool_id, machine),
        )
        pool = self.pools[pool_id]
        orphans = pool.evict_machine(machine, now)
        self._requeue_orphans(orphans, (), now, cause="machine")

    def _on_machine_recover(self, payload: Tuple[str, Machine], now: float) -> None:
        pool_id, machine = payload
        faults = self._faults
        machine.up = True
        faults.note_machine_recovery()
        self._events.push(
            now + faults.draw_ttf(pool_id, machine.machine_id),
            EVENT_MACHINE_CRASH,
            (pool_id, machine),
        )
        pool = self.pools[pool_id]
        if pool.up:
            self._fill(pool, machine, now)

    def _on_pool_down(self, pool_id: str, now: float) -> None:
        # Overlapping outage windows nest: the pool is down while any
        # window covers it.
        depth = self._outage_depth.get(pool_id, 0) + 1
        self._outage_depth[pool_id] = depth
        if depth > 1:
            return
        pool = self.pools[pool_id]
        pool.up = False
        self._faults.note_pool_down(pool_id)
        killed, drained = pool.drain(now)
        self._requeue_orphans(killed, drained, now, cause="outage")

    def _on_pool_up(self, pool_id: str, now: float) -> None:
        depth = self._outage_depth.get(pool_id, 0) - 1
        self._outage_depth[pool_id] = depth
        if depth > 0:
            return
        pool = self.pools[pool_id]
        pool.up = True
        for machine in pool.machines:
            if machine.up:
                self._fill(pool, machine, now)

    def _requeue_orphans(
        self,
        killed: List[Job],
        drained: List[Job],
        now: float,
        cause: str,
    ) -> None:
        """Fold fault kills into job accounting, then re-place every orphan.

        ``killed`` attempts were running or suspended (their progress is
        lost); ``drained`` jobs were only waiting.  All transitions
        happen before any placement so one orphan's placement sees the
        others' capacity already released.
        """
        faults = self._faults
        for job in killed:
            origin = job.pool_id
            lost = job.fail_attempt(now, kind="machine")
            faults.note_kill(cause, lost)
            self._emit(now, "fault-kill", job, pool_id=origin, detail=cause)
        for job in drained:
            origin = job.pool_id
            job.fail_attempt(now, kind="drain")
            faults.note_drained()
            self._emit(now, "fault-requeue", job, pool_id=origin, detail=cause)
        for job in itertools.chain(killed, drained):
            self._place_via_vpm(job, now)

    def _on_job_failure(self, payload: Tuple[Job, int], now: float) -> None:
        job, epoch = payload
        if job.epoch != epoch or job.state is not JobState.RUNNING:
            return  # the segment this failure was rolled for ended first
        faults = self._faults
        pool = self.pools[job.pool_id]
        origin = job.pool_id
        machine = pool.detach_running(job, now)
        lost = job.fail_attempt(now, kind="transient")
        faults.note_transient_failure(lost)
        failures = job.transient_failures
        if self._emit_enabled:
            self._emit(
                now, "fault-job-failure", job, pool_id=origin,
                detail=f"attempt={failures}",
            )
        self._fill(pool, machine, now)
        retry = self.config.faults.retry
        if failures >= retry.max_attempts:
            self._emit(now, "fault-give-up", job, pool_id=origin)
            self._give_up(job, now)
        else:
            faults.note_retry()
            self._events.push(
                now + faults.retry_delay(failures), EVENT_JOB_RETRY, job
            )

    def _on_job_retry(self, job: Job, now: float) -> None:
        if job.state is not JobState.PENDING:
            return  # cancelled (duplicate loser) while waiting to retry
        self._place_via_vpm(job, now)

    def _give_up(self, job: Job, now: float) -> None:
        """Permanently fail a job whose retry budget is exhausted."""
        partner = self._dup_partner.pop(job.job_id, None)
        if partner is not None:
            # The logical job lives on in the other attempt; stash this
            # dead one so the survivor's record merges its accounting.
            self._dup_partner.pop(partner.job_id, None)
            self._dup_fallen[partner.job_id] = job
            job.give_up(now)
            return
        fallen = self._dup_fallen.pop(job.job_id, None)
        job.give_up(now)
        self._record_failure(job, fallen, now)

    # -- placement and rescheduling machinery ---------------------------------------------

    def _after_placement(self, job: Job, result: SubmitResult, now: float) -> None:
        outcome = result.outcome
        emit = self._emit_enabled
        if outcome is SubmitOutcome.STARTED:
            if emit:
                self._emit(now, "start", job, pool_id=job.pool_id)
            self._schedule_finish(job, now)
        elif outcome is SubmitOutcome.PREEMPTED:
            if emit:
                self._emit(now, "start", job, pool_id=job.pool_id)
                for victim in result.victims:
                    self._emit(
                        now, "suspend", victim, pool_id=victim.pool_id,
                        detail=f"preempted-by={job.job_id}",
                    )
            self._schedule_finish(job, now)
            self._process_victims(result.victims, now)
        elif outcome is SubmitOutcome.QUEUED:
            if emit:
                self._emit(now, "queue", job, pool_id=job.pool_id)
            self._arm_wait_timer(job, now)
        elif outcome is SubmitOutcome.INELIGIBLE:
            if self.config.strict:
                raise UnschedulableJobError(job.job_id)
            job.reject(now)
            self._emit(now, "reject", job)
            self._record_rejection(job)
        else:  # pragma: no cover - outcomes are closed
            raise SimulationError(f"unknown submit outcome {outcome}")

    def _schedule_finish(self, job: Job, now: float) -> None:
        speed = job.machine.spec.speed_factor
        duration = job.remaining_minutes() / speed
        if self._faults is not None:
            fail_after = self._faults.roll_segment_failure(duration)
            if fail_after is not None:
                self._events.push(now + fail_after, EVENT_JOB_FAILURE, (job, job.epoch))
                return
        self._events.push(now + duration, EVENT_FINISH, (job, job.epoch))

    def _arm_wait_timer(self, job: Job, now: float) -> None:
        threshold = self.policy.wait_threshold
        if threshold is not None:
            self._events.push(
                now + threshold, EVENT_WAIT_TIMEOUT, (job, job.wait_episode)
            )

    def _process_victims(self, victims: Tuple[Job, ...], now: float) -> None:
        """Run the policy's suspension hook over a preemption's victims.

        Restarted victims may preempt lower-priority jobs at their
        target pool; the resulting second-order victims are processed
        from the same work queue.  Chains terminate because priorities
        strictly decrease along them.
        """
        pending: Deque[Job] = deque(victims)
        while pending:
            victim = pending.popleft()
            # Handling an earlier victim can release capacity that
            # resumes this one before its turn; only still-suspended
            # jobs go to the policy.
            if victim.state is not JobState.SUSPENDED:
                continue
            decision = self.policy.on_suspend(victim, self.view)
            if self._telemetry is not None:
                self._telemetry.count_policy_decision(
                    self.policy.name, decision.action.value
                )
            if decision.action is Action.FRACTION:
                # FRACTION never moves the job, so it is handled before
                # target validation (which would degrade it to STAY).
                self._grant_fraction(victim, decision.share, now)
                continue
            target = self._validated_target(victim, decision)
            if target is None:
                continue
            if decision.action is Action.RESTART:
                origin_id = victim.pool_id
                origin = self.pools[origin_id]
                machine = origin.detach_suspended(victim, now)
                if self._emit_enabled:
                    self._emit(
                        now, "restart", victim, pool_id=target,
                        detail=f"from={origin_id}",
                    )
                self._fill(origin, machine, now)
                new_victims = self._move_to_pool(victim, target, now, origin=origin_id)
            elif decision.action is Action.MIGRATE:
                origin_id = victim.pool_id
                origin = self.pools[origin_id]
                machine = origin.detach_suspended(
                    victim, now, preserve_progress=True
                )
                self._fill(origin, machine, now)
                victim.dilate_remaining(self.config.migration_dilation)
                if self._emit_enabled:
                    self._emit(
                        now, "migrate", victim, pool_id=target,
                        detail=f"from={origin_id}",
                    )
                new_victims = self._move_to_pool(
                    victim,
                    target,
                    now,
                    overhead=self.config.migration_overhead,
                    origin=origin_id,
                )
            else:  # Action.DUPLICATE
                # At most one live duplicate per logical job, and never
                # a duplicate of a duplicate: a second suspension of a
                # job that already has a shadow degrades to STAY.
                if victim.is_shadow or victim.job_id in self._dup_partner:
                    continue
                shadow = self._make_shadow(victim)
                if self._emit_enabled:
                    self._emit(
                        now, "duplicate", victim, pool_id=target,
                        detail=f"shadow={shadow.job_id}",
                    )
                new_victims = self._move_to_pool(shadow, target, now)
            pending.extend(new_victims)

    def _grant_fraction(self, job: Job, share: float, now: float) -> None:
        """Let a suspended job keep running at ``share`` of its host's speed.

        The job stays SUSPENDED and resident (its preemptor holds the
        cores); it merely keeps accruing progress at
        ``share * speed_factor`` (see :meth:`Job._accrue_fractional`).
        The fractional completion is scheduled against the job's
        current epoch: a resume, restart or fault bumps the epoch and
        invalidates it, and the follow-up segment reschedules from the
        fractionally advanced progress.  Fault segment failures are not
        rolled for fractional segments — the attempt's fault exposure
        stays tied to its running segments, and a machine crash still
        kills the resident job through the eviction path.
        """
        job.fractional_share = share
        if self._emit_enabled:
            self._emit(
                now, "fraction", job, pool_id=job.pool_id,
                detail=f"share={share:g}",
            )
        speed = share * job.machine.spec.speed_factor
        self._events.push(
            now + job.remaining_minutes() / speed, EVENT_FINISH, (job, job.epoch)
        )

    def _move_to_pool(
        self, job: Job, target: str, now: float, overhead=None, origin=None
    ) -> Tuple[Job, ...]:
        """Send a PENDING job to ``target``, honouring move overhead.

        ``overhead`` defaults to the restart-overhead model; migrations
        pass the migration model instead.  Topology-aware overhead
        models (inter-site transfers) receive the origin pool via
        ``delay_between`` when they define it.  Returns any jobs
        suspended by the move (empty when the move is delayed by
        overhead; those victims surface when the arrival event fires).
        """
        if overhead is None:
            overhead = self.config.restart_overhead
        delay_between = getattr(overhead, "delay_between", None)
        if delay_between is not None and origin is not None:
            delay = delay_between(job.spec, origin, target)
        else:
            delay = overhead.delay_for(job.spec)
        if delay > 0:
            self._events.push(now + delay, EVENT_POOL_ARRIVAL, (job, target))
            return ()
        result = self.pools[target].submit(job, now)
        if result.outcome is SubmitOutcome.INELIGIBLE:
            raise SchedulingError(
                f"job {job.job_id} was rescheduled to pool {target} "
                f"where it is statically ineligible"
            )
        emit = self._emit_enabled
        if result.outcome is SubmitOutcome.QUEUED:
            if emit:
                self._emit(now, "queue", job, pool_id=target)
            self._arm_wait_timer(job, now)
        else:
            if emit:
                self._emit(now, "start", job, pool_id=target)
                if result.outcome is SubmitOutcome.PREEMPTED:
                    for new_victim in result.victims:
                        self._emit(
                            now, "suspend", new_victim,
                            pool_id=new_victim.pool_id,
                            detail=f"preempted-by={job.job_id}",
                        )
            self._schedule_finish(job, now)
        return result.victims

    def _validated_target(self, job: Job, decision: Decision) -> Optional[str]:
        """The decision's target pool, or ``None`` if the job should stay.

        A target is only honoured when it differs from the job's
        current pool and the job is statically eligible there; anything
        else degrades to STAY, so a misbehaving policy cannot corrupt
        the simulation.
        """
        if not decision.moves:
            return None
        target = decision.target_pool
        if target == job.pool_id:
            return None
        if target not in self.eligible_candidates(job.spec):
            return None
        if self._faults is not None and not self.pools[target].up:
            return None
        return target

    def _make_shadow(self, original: Job) -> Job:
        """Create the duplicate attempt for ``original`` and link the pair."""
        shadow_spec = replace(original.spec, job_id=next(self._shadow_ids))
        shadow = Job(shadow_spec, is_shadow=True)
        shadow.shadow_of = original.job_id
        # Shadows materialise mid-simulation: their accounting clock
        # starts now, not at the original submission.
        shadow.segment_start = self.now
        self._dup_partner[original.job_id] = shadow
        self._dup_partner[shadow.job_id] = original
        return shadow

    def _cancel_attempt(self, job: Job, now: float) -> None:
        """Tear down the losing attempt of a duplicate pair."""
        if job.state is JobState.PENDING:
            job.cancel(now)  # in transit; the arrival event will see FINISHED
            return
        pool = self.pools[job.pool_id]
        machine = pool.cancel_job(job, now)
        if machine is not None:
            self._fill(pool, machine, now)

    def _fill(self, pool: PhysicalPool, machine: Machine, now: float) -> None:
        """Refill freed capacity and schedule completions for placed jobs."""
        resumable_ids = set(machine.suspended) if self._emit_enabled else ()
        for placed in pool.fill_machine(machine, now):
            if self._emit_enabled:
                kind = "resume" if placed.job_id in resumable_ids else "start"
                self._emit(now, kind, placed, pool_id=pool.pool_id)
            self._schedule_finish(placed, now)

    # -- record building ---------------------------------------------------------------

    def _record_completion(self, winner: Job, partner: Optional[Job], now: float) -> None:
        """Emit the JobRecord for a finished logical job.

        For duplicate pairs the winner may be the shadow; the record is
        keyed by the original job's identity and merges both attempts'
        accounting.
        """
        if winner.is_shadow and partner is None:  # pragma: no cover - defensive
            raise SimulationError(
                f"shadow {winner.job_id} finished without a linked original"
            )
        if partner is None:
            # Overwhelmingly common case: a single attempt, no merging.
            spec = winner.spec
            record = JobRecord(
                job_id=winner.job_id,
                priority=winner.priority,
                submit_minute=spec.submit_minute,
                finish_minute=now,
                runtime_minutes=spec.runtime_minutes,
                cores=spec.cores,
                memory_gb=spec.memory_gb,
                wait_time=winner.total_wait,
                suspend_time=winner.total_suspend,
                wasted_restart_time=winner.wasted_restart,
                suspension_count=winner.suspension_count,
                restart_count=winner.restart_count,
                migration_count=winner.migration_count,
                waiting_move_count=winner.waiting_move_count,
                pools_visited=tuple(dict.fromkeys(winner.pools_visited)),
                rejected=False,
                task_id=spec.task_id,
                user=spec.user,
                machine_failures=winner.machine_failures,
                transient_failures=winner.transient_failures,
                failed=False,
            )
            self._add_record(record)
            self._outstanding -= 1
            return
        identity = partner if winner.is_shadow else winner
        attempts = [winner, partner]
        record = JobRecord(
            job_id=identity.job_id,
            priority=identity.priority,
            submit_minute=identity.spec.submit_minute,
            finish_minute=now,
            runtime_minutes=identity.spec.runtime_minutes,
            cores=identity.spec.cores,
            memory_gb=identity.spec.memory_gb,
            wait_time=sum(a.total_wait for a in attempts),
            suspend_time=sum(a.total_suspend for a in attempts),
            wasted_restart_time=sum(a.wasted_restart for a in attempts),
            suspension_count=sum(a.suspension_count for a in attempts),
            restart_count=sum(a.restart_count for a in attempts) + 1,
            migration_count=sum(a.migration_count for a in attempts),
            waiting_move_count=sum(a.waiting_move_count for a in attempts),
            pools_visited=tuple(
                dict.fromkeys(p for a in attempts for p in a.pools_visited)
            ),
            rejected=False,
            task_id=identity.spec.task_id,
            user=identity.spec.user,
            machine_failures=sum(a.machine_failures for a in attempts),
            transient_failures=sum(a.transient_failures for a in attempts),
            failed=False,
        )
        self._add_record(record)
        self._outstanding -= 1

    def _record_failure(self, job: Job, partner: Optional[Job], now: float) -> None:
        """Emit the JobRecord for a permanently failed logical job."""
        identity = job
        attempts = [job]
        if partner is not None:
            attempts.append(partner)
            if job.is_shadow:
                identity = partner
        self._add_record(
            JobRecord(
                job_id=identity.job_id,
                priority=identity.priority,
                submit_minute=identity.spec.submit_minute,
                finish_minute=None,
                runtime_minutes=identity.spec.runtime_minutes,
                cores=identity.spec.cores,
                memory_gb=identity.spec.memory_gb,
                wait_time=sum(a.total_wait for a in attempts),
                suspend_time=sum(a.total_suspend for a in attempts),
                wasted_restart_time=sum(a.wasted_restart for a in attempts),
                suspension_count=sum(a.suspension_count for a in attempts),
                restart_count=sum(a.restart_count for a in attempts),
                migration_count=sum(a.migration_count for a in attempts),
                waiting_move_count=sum(a.waiting_move_count for a in attempts),
                pools_visited=tuple(
                    dict.fromkeys(p for a in attempts for p in a.pools_visited)
                ),
                rejected=False,
                task_id=identity.spec.task_id,
                user=identity.spec.user,
                machine_failures=sum(a.machine_failures for a in attempts),
                transient_failures=sum(a.transient_failures for a in attempts),
                failed=True,
            )
        )
        self._outstanding -= 1
        self._faults.note_permanent_failure()

    def _record_rejection(self, job: Job) -> None:
        self._add_record(
            JobRecord(
                job_id=job.job_id,
                priority=job.priority,
                submit_minute=job.spec.submit_minute,
                finish_minute=None,
                runtime_minutes=job.spec.runtime_minutes,
                cores=job.spec.cores,
                memory_gb=job.spec.memory_gb,
                wait_time=0.0,
                suspend_time=0.0,
                wasted_restart_time=0.0,
                suspension_count=0,
                restart_count=0,
                migration_count=0,
                waiting_move_count=0,
                pools_visited=(),
                rejected=True,
                task_id=job.spec.task_id,
                user=job.spec.user,
            )
        )
        self._outstanding -= 1
