"""The virtual pool manager (VPM).

"NetBatch deploys a middleware layer called virtual pool managers at
each site ... A virtual pool manager accepts job submissions from users
at that site, and then distributes jobs to the connected physical pools
according to resource availability and NetBatch configurations"
(Section 2.1).

The VPM delegates pool *ordering* to the pluggable initial scheduler
and walks that order, skipping pools that would give the job back as
statically ineligible.  The engine pre-filters candidates to pools with
at least one eligible machine, so give-back almost never happens at the
pool; the pool-level check remains as a backstop.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.context import SystemView
from ..schedulers.initial import InitialScheduler
from .job import Job
from .pool import PhysicalPool, SubmitOutcome, SubmitResult

__all__ = ["VirtualPoolManager"]


class VirtualPoolManager:
    """One site-level submission endpoint."""

    def __init__(
        self,
        vpm_id: str,
        scheduler: InitialScheduler,
        pools: Dict[str, PhysicalPool],
    ) -> None:
        self.vpm_id = vpm_id
        self.scheduler = scheduler
        self._pools = pools

    def submit(
        self, job: Job, candidates: Sequence[str], view: SystemView, now: float
    ) -> Tuple[SubmitResult, Optional[str]]:
        """Place ``job`` at the first pool (in scheduler order) that takes it.

        Args:
            job: the job to place.
            candidates: pool ids the job may run in *and* that have at
                least one statically eligible machine (pre-filtered by
                the engine).
            view: live statistics handed to the initial scheduler.
            now: current simulated time.

        Returns:
            The accepting pool's :class:`SubmitResult` and its id, or
            an ``INELIGIBLE`` result and ``None`` when every candidate
            gave the job back.
        """
        if candidates:
            for pool_id in self.scheduler.order(candidates, view):
                result = self._pools[pool_id].submit(job, now)
                if result.outcome is not SubmitOutcome.INELIGIBLE:
                    return result, pool_id
        return SubmitResult(SubmitOutcome.INELIGIBLE), None

    def __repr__(self) -> str:
        return f"VirtualPoolManager({self.vpm_id}, scheduler={self.scheduler.name})"
