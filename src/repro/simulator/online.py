"""Streaming result accumulation: constant-memory simulation outputs.

The paper's evaluation replays a year of NetBatch traces — hundreds of
millions of jobs.  Materialising one :class:`JobRecord` per job (the
:class:`~repro.simulator.results.SimulationResult` contract) costs
memory linear in the trace, which caps replay size long before the
engine's throughput does.  :class:`OnlineResults` is the alternative: a
*sink* the engine folds each record into the moment the job completes,
keeping only O(1) aggregate state — the Table-1 statistics, wait and
suspension histograms, and the fault layer's goodput accounting.

Bit-exactness contract: :meth:`OnlineResults.summary` returns a
:class:`~repro.metrics.summary.PerformanceSummary` **bit-identical** to
``summarize(result)`` over the materialised result of the same run.
``summarize`` computes every mean as a left-to-right ``sum()`` over
records in completion order divided by a count; the sink accumulates
the same sums in the same order with the same float additions (adding
to a zero start is exact), so no reassociation ever occurs.
``tests/test_online_results.py`` pins this on a mid-size workload.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .results import JobRecord, StateSample

if False:  # pragma: no cover - import-time cycle breaker, typing only
    from ..metrics.summary import PerformanceSummary  # noqa: F401

__all__ = ["StreamingHistogram", "OnlineResults"]


class StreamingHistogram:
    """Fixed-bin histogram folded one value at a time in O(1) memory.

    Bin edges are supplied up front (minutes); values land in the bin
    whose upper edge is the first one strictly greater than the value,
    with a final unbounded overflow bin.  Tracks count, sum, min and
    max exactly; quantiles are bin-resolution estimates.
    """

    __slots__ = ("_edges", "_counts", "count", "total", "minimum", "maximum")

    #: Default edges for wait/suspension times (minutes): fine below an
    #: hour, coarser into the multi-day tail.
    DEFAULT_EDGES: Tuple[float, ...] = (
        1.0, 5.0, 10.0, 15.0, 30.0, 60.0, 120.0, 240.0, 480.0,
        960.0, 1440.0, 2880.0, 5760.0, 10080.0,
    )

    def __init__(self, edges: Optional[Sequence[float]] = None) -> None:
        chosen = tuple(edges) if edges is not None else self.DEFAULT_EDGES
        if not chosen or any(b <= a for a, b in zip(chosen, chosen[1:])):
            raise SimulationError("histogram edges must be strictly increasing")
        self._edges = chosen
        self._counts = [0] * (len(chosen) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        """Fold one observation in."""
        self._counts[bisect_right(self._edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def edges(self) -> Tuple[float, ...]:
        """The bin upper edges (the last bin is unbounded)."""
        return self._edges

    @property
    def counts(self) -> Tuple[int, ...]:
        """Per-bin counts; ``len(edges) + 1`` entries."""
        return tuple(self._counts)

    def mean(self) -> float:
        """Mean of all folded values (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bin-resolution estimate of the ``q``-quantile.

        Returns the upper edge of the bin holding the ``q``-th value
        (the exact maximum for the overflow bin), so the estimate never
        understates the true quantile by more than one bin width.
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * (self.count - 1)
        cumulative = 0
        for index, bucket in enumerate(self._counts):
            cumulative += bucket
            if cumulative > rank:
                if index < len(self._edges):
                    return self._edges[index]
                return self.maximum
        return self.maximum  # pragma: no cover - loop always covers count

    def render(self, label: str = "histogram") -> str:
        """Compact multi-line rendering for CLI reports."""
        lines = [
            f"{label}: n={self.count}, mean={self.mean():.1f} min, "
            f"p50~{self.quantile(0.5):.0f}, p99~{self.quantile(0.99):.0f}"
        ]
        lower = 0.0
        for index, bucket in enumerate(self._counts):
            if not bucket:
                lower = self._edges[index] if index < len(self._edges) else lower
                continue
            if index < len(self._edges):
                span = f"[{lower:g}, {self._edges[index]:g})"
                lower = self._edges[index]
            else:
                span = f"[{lower:g}, inf)"
            lines.append(f"  {span:>18}: {bucket}")
        return "\n".join(lines)


class OnlineResults:
    """A result sink folding per-job records into constant-size aggregates.

    Drop-in replacement for record materialisation in the engine: the
    engine calls :meth:`add_record` / :meth:`add_sample` where it would
    have appended, and :meth:`finalize` where it would have constructed
    a :class:`~repro.simulator.results.SimulationResult`.

    Attributes mirror what :func:`~repro.metrics.summary.summarize`
    derives from the materialised records; :meth:`summary` assembles the
    identical :class:`~repro.metrics.summary.PerformanceSummary`.
    """

    def __init__(self, keep_samples: bool = False) -> None:
        self.job_count = 0
        self.completed_count = 0
        self.suspended_count = 0
        self.failed_count = 0
        self.rejected_only_count = 0
        # Left-to-right sums in completion order, exactly as summarize()
        # computes them over the materialised records.
        self._ct_all_sum = 0.0
        self._ct_suspended_sum = 0.0
        self._st_suspended_sum = 0.0
        self._wait_sum = 0.0
        self._suspend_sum = 0.0
        self._resched_sum = 0.0
        self._restart_sum = 0
        self._waiting_move_sum = 0
        #: Completed reference-speed demand (FaultStats.goodput_minutes).
        self.goodput_minutes = 0.0
        self.wait_histogram = StreamingHistogram()
        self.suspension_histogram = StreamingHistogram()
        self._keep_samples = keep_samples
        self._samples: List[StateSample] = []
        self.sample_count = 0
        self.peak_waiting = 0
        self.peak_suspended = 0
        self._busy_core_minutes = 0.0
        self._core_minutes = 0.0
        self._last_sample_minute: Optional[float] = None
        # Filled by finalize().
        self.pool_ids: Tuple[str, ...] = ()
        self.policy_name = ""
        self.scheduler_name = ""
        self.total_cores = 0
        self.fault_stats = None
        self._finalized = False

    # -- engine-facing sink protocol ---------------------------------------------

    def add_record(self, record: JobRecord) -> None:
        """Fold one completed/rejected/failed job record in."""
        self.job_count += 1
        if record.rejected:
            self.rejected_only_count += 1
            return
        if record.finish_minute is None:
            if record.failed:
                self.failed_count += 1
            return
        self.completed_count += 1
        self._ct_all_sum += record.finish_minute - record.submit_minute
        self._wait_sum += record.wait_time
        self._suspend_sum += record.suspend_time
        self._resched_sum += record.wasted_restart_time
        self._restart_sum += record.restart_count
        self._waiting_move_sum += record.waiting_move_count
        self.goodput_minutes += record.runtime_minutes
        self.wait_histogram.add(record.wait_time)
        if record.suspension_count > 0:
            self.suspended_count += 1
            self._ct_suspended_sum += record.finish_minute - record.submit_minute
            self._st_suspended_sum += record.suspend_time
            self.suspension_histogram.add(record.suspend_time)

    def add_sample(self, sample: StateSample) -> None:
        """Fold one state sample in (kept whole only when requested)."""
        self.sample_count += 1
        if sample.waiting_jobs > self.peak_waiting:
            self.peak_waiting = sample.waiting_jobs
        if sample.suspended_jobs > self.peak_suspended:
            self.peak_suspended = sample.suspended_jobs
        if self._last_sample_minute is not None:
            dt = sample.minute - self._last_sample_minute
            self._busy_core_minutes += sample.busy_cores * dt
            self._core_minutes += sample.total_cores * dt
        self._last_sample_minute = sample.minute
        if self._keep_samples:
            self._samples.append(sample)

    def finalize(
        self,
        pool_ids: Sequence[str],
        policy_name: str,
        scheduler_name: str,
        total_cores: int,
        fault_stats=None,
    ) -> "OnlineResults":
        """Attach run metadata; called once by the engine at end of run."""
        if self._finalized:
            raise SimulationError("OnlineResults.finalize called twice")
        self._finalized = True
        self.pool_ids = tuple(pool_ids)
        self.policy_name = policy_name
        self.scheduler_name = scheduler_name
        self.total_cores = total_cores
        self.fault_stats = fault_stats
        return self

    # -- derived views -------------------------------------------------------------

    @property
    def samples(self) -> Tuple[StateSample, ...]:
        """Retained samples (empty unless built with ``keep_samples``)."""
        return tuple(self._samples)

    @property
    def rejected_count(self) -> int:
        """Jobs not completed — the same remainder ``summarize`` reports.

        ``summarize`` names its not-completed remainder
        ``rejected_count`` (it includes permanent fault failures); this
        mirrors that definition exactly so summaries stay bit-identical.
        """
        return self.job_count - self.completed_count

    def mean_utilization(self) -> float:
        """Time-weighted busy fraction over the sampled span (0 if unsampled)."""
        if self._core_minutes <= 0:
            return 0.0
        return self._busy_core_minutes / self._core_minutes

    def __len__(self) -> int:
        return self.job_count

    def __repr__(self) -> str:
        return (
            f"OnlineResults(policy={self.policy_name}, jobs={self.job_count}, "
            f"completed={self.completed_count}, suspended={self.suspended_count})"
        )

    def summary(self) -> "PerformanceSummary":
        """The run's :class:`PerformanceSummary`.

        Constructed from the streamed sums exactly as
        :func:`~repro.metrics.summary.summarize` constructs it from the
        materialised records — same addition order, same divisions —
        so the two are bit-identical.
        """
        # Imported here, not at module top: metrics.summary imports the
        # simulator package, so a top-level import would be circular.
        from ..metrics.summary import PerformanceSummary, WasteBreakdown

        completed = self.completed_count
        suspended = self.suspended_count

        def mean(total: float, count: int) -> float:
            return total / count if count else 0.0

        return PerformanceSummary(
            policy_name=self.policy_name,
            scheduler_name=self.scheduler_name,
            job_count=self.job_count,
            completed_count=completed,
            rejected_count=self.job_count - completed,
            suspend_rate=suspended / completed if completed else 0.0,
            avg_ct_suspended=(
                mean(self._ct_suspended_sum, suspended) if suspended else None
            ),
            avg_ct_all=mean(self._ct_all_sum, completed),
            avg_st=mean(self._st_suspended_sum, suspended) if suspended else None,
            waste=WasteBreakdown(
                wait_time=mean(self._wait_sum, completed),
                suspend_time=mean(self._suspend_sum, completed),
                resched_time=mean(self._resched_sum, completed),
            ),
            avg_restarts=mean(self._restart_sum, completed),
            avg_waiting_moves=mean(self._waiting_move_sum, completed),
        )
