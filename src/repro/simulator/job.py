"""Runtime job objects: the state machine and its time accounting.

A :class:`Job` wraps an immutable trace record with the mutable state
the engine manipulates.  Every transition takes the current simulated
time and updates the accounting fields from which the paper's metrics
are later computed:

* **wait time** — minutes spent in pool wait queues (component *c1* of
  wasted completion time);
* **suspend time** — minutes spent suspended on a host (*c2*);
* **wasted restart time** — progress thrown away when the job is
  restarted at another pool (*c3*, "wasted time by rescheduling").

State diagram (all transitions validated; illegal ones raise
:class:`~repro.errors.JobStateError`)::

    PENDING --start--> RUNNING --finish--> FINISHED
       |                |   ^
       |enqueue         |   |resume
       v                v   |
    WAITING <--.     SUSPENDED --abandon--> PENDING (restart elsewhere)
       |        \\
       '--dequeue (to PENDING, for waiting-job rescheduling)

Progress is measured in *reference-speed minutes*: a job with
``runtime_minutes = 60`` running on a ``speed_factor = 1.2`` machine
accumulates progress at 1.2 per minute and finishes after 50 minutes of
uninterrupted execution.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import JobStateError
from ..workload.trace import TraceJob

__all__ = ["Job", "JobState"]


class JobState(enum.Enum):
    """Lifecycle states of a job inside the simulator."""

    PENDING = "pending"  # submitted / between pools, not yet placed
    WAITING = "waiting"  # in a physical pool's wait queue
    RUNNING = "running"  # executing on a machine
    SUSPENDED = "suspended"  # preempted, resident on its machine
    FINISHED = "finished"  # completed
    REJECTED = "rejected"  # statically ineligible everywhere
    FAILED = "failed"  # exhausted its retry budget (fault injection)


class Job:
    """Mutable runtime state of one job.

    Attributes:
        spec: the immutable :class:`~repro.workload.trace.TraceJob`.
        state: current :class:`JobState`.
        pool_id: pool currently responsible for the job (waiting,
            running or suspended there), else ``None``.
        machine: the runtime machine the job occupies, else ``None``
            (typed loosely to avoid an import cycle with
            :mod:`repro.simulator.machine`).
        epoch: bumped on every start/suspend/resume/abandon; lets the
            engine ignore stale completion events.
        wait_episode: bumped each time the job enters a wait queue;
            lets the engine ignore stale wait-timeout events.
        progress: reference-speed minutes completed in the current
            attempt.
        is_shadow: True for duplicate attempts spawned by a
            duplication policy; shadows are not reported as jobs of
            their own.
    """

    __slots__ = (
        "spec",
        "state",
        "pool_id",
        "machine",
        "epoch",
        "wait_episode",
        "progress",
        "fractional_share",
        "total_wait",
        "total_suspend",
        "wasted_restart",
        "suspension_count",
        "restart_count",
        "migration_count",
        "waiting_move_count",
        "machine_failures",
        "transient_failures",
        "pools_visited",
        "first_start_minute",
        "finish_minute",
        "segment_start",
        "is_shadow",
        "shadow_of",
    )

    def __init__(self, spec: TraceJob, *, is_shadow: bool = False) -> None:
        self.spec = spec
        self.state = JobState.PENDING
        self.pool_id: Optional[str] = None
        self.machine = None
        self.epoch = 0
        self.wait_episode = 0
        self.progress = 0.0
        self.fractional_share = 0.0
        self.total_wait = 0.0
        self.total_suspend = 0.0
        self.wasted_restart = 0.0
        self.suspension_count = 0
        self.restart_count = 0
        self.migration_count = 0
        self.waiting_move_count = 0
        self.machine_failures = 0
        self.transient_failures = 0
        self.pools_visited: list = []
        self.first_start_minute: Optional[float] = None
        self.finish_minute: Optional[float] = None
        self.segment_start = spec.submit_minute
        self.is_shadow = is_shadow
        self.shadow_of: Optional[int] = None

    # -- derived quantities --------------------------------------------------

    @property
    def job_id(self) -> int:
        """The trace job id (shadows share their original's id)."""
        return self.spec.job_id

    @property
    def priority(self) -> int:
        """The job's priority level."""
        return self.spec.priority

    def remaining_minutes(self) -> float:
        """Reference-speed minutes of work left in the current attempt."""
        return max(0.0, self.spec.runtime_minutes - self.progress)

    def was_suspended(self) -> bool:
        """Whether the job was suspended at least once."""
        return self.suspension_count > 0

    def completion_time(self) -> Optional[float]:
        """Finish minus submit, or ``None`` if not finished."""
        if self.finish_minute is None:
            return None
        return self.finish_minute - self.spec.submit_minute

    def wasted_completion_time(self) -> float:
        """The paper's per-job waste: wait + suspend + restart waste."""
        return self.total_wait + self.total_suspend + self.wasted_restart

    # -- transitions -----------------------------------------------------------

    def _require(self, transition: str, *allowed: JobState) -> None:
        if self.state not in allowed:
            raise JobStateError(self.job_id, self.state.value, transition)

    def enqueue(self, pool_id: str, now: float) -> None:
        """Enter ``pool_id``'s wait queue."""
        self._require("enqueue", JobState.PENDING)
        self.state = JobState.WAITING
        self.pool_id = pool_id
        self.wait_episode += 1
        self.segment_start = now

    def dequeue(self, now: float) -> None:
        """Leave the wait queue without starting (waiting-job rescheduling)."""
        self._require("dequeue", JobState.WAITING)
        self.total_wait += now - self.segment_start
        self.state = JobState.PENDING
        self.pool_id = None
        self.wait_episode += 1
        self.waiting_move_count += 1
        self.segment_start = now

    def start(self, machine, pool_id: str, now: float) -> None:
        """Begin (or begin again, after a restart) executing on ``machine``."""
        self._require("start", JobState.PENDING, JobState.WAITING)
        if self.state is JobState.WAITING:
            self.total_wait += now - self.segment_start
            self.wait_episode += 1
        self.state = JobState.RUNNING
        self.machine = machine
        self.pool_id = pool_id
        self.epoch += 1
        if self.first_start_minute is None:
            self.first_start_minute = now
        if pool_id not in self.pools_visited:
            self.pools_visited.append(pool_id)
        self.segment_start = now

    def accrue_progress(self, now: float) -> None:
        """Fold the running segment ``[segment_start, now]`` into progress."""
        self._require("accrue_progress", JobState.RUNNING)
        self.progress += (now - self.segment_start) * self.machine.spec.speed_factor
        self.segment_start = now

    def suspend(self, now: float) -> None:
        """Be preempted: stop running but stay resident on the machine."""
        self._require("suspend", JobState.RUNNING)
        self.accrue_progress(now)
        self.state = JobState.SUSPENDED
        self.epoch += 1
        self.suspension_count += 1
        self.segment_start = now

    def _accrue_fractional(self, now: float) -> None:
        """Fold a fractional-share suspended segment into progress.

        No-op unless a fractional policy granted the suspended job a
        CPU share (see :data:`~repro.core.decisions.Action.FRACTION`),
        so the binary suspend/resume path is arithmetically untouched.
        """
        if self.fractional_share:
            self.progress += (
                (now - self.segment_start)
                * self.fractional_share
                * self.machine.spec.speed_factor
            )
            self.fractional_share = 0.0

    def resume(self, now: float) -> None:
        """Resume execution on the machine the job is resident on."""
        self._require("resume", JobState.SUSPENDED)
        self._accrue_fractional(now)
        self.total_suspend += now - self.segment_start
        self.state = JobState.RUNNING
        self.epoch += 1
        self.segment_start = now

    def abandon(self, now: float) -> None:
        """Give up the current attempt (to restart at another pool).

        All progress made so far becomes wasted-restart time; the job
        returns to PENDING, detached from machine and pool.
        """
        self._require("abandon", JobState.SUSPENDED, JobState.RUNNING)
        if self.state is JobState.RUNNING:
            self.accrue_progress(now)
        else:
            self._accrue_fractional(now)
            self.total_suspend += now - self.segment_start
        self.wasted_restart += self.progress
        self.progress = 0.0
        self.state = JobState.PENDING
        self.machine = None
        self.pool_id = None
        self.epoch += 1
        self.restart_count += 1
        self.segment_start = now

    def checkpoint_detach(self, now: float) -> None:
        """Leave the current attempt *preserving progress* (migration).

        The Condor-checkpoint / VM-migration alternative the paper
        discusses: unlike :meth:`abandon`, completed work survives the
        move, so nothing is added to the wasted-restart account here
        (migration overheads are applied separately by the engine).
        """
        self._require("checkpoint_detach", JobState.SUSPENDED)
        self._accrue_fractional(now)
        self.total_suspend += now - self.segment_start
        self.state = JobState.PENDING
        self.machine = None
        self.pool_id = None
        self.epoch += 1
        self.migration_count += 1
        self.segment_start = now

    def dilate_remaining(self, fraction: float) -> None:
        """Inflate remaining work by ``fraction`` (migration penalty).

        Models the 10-20% performance overhead the paper cites for
        virtualised execution/migration.  The extra work is accounted
        as rescheduling waste: it is time the job spends not advancing
        its original demand.
        """
        if fraction <= 0:
            return
        penalty = self.remaining_minutes() * fraction
        self.progress = max(0.0, self.progress - penalty)
        self.wasted_restart += penalty

    def fail_attempt(self, now: float, *, kind: str) -> float:
        """Lose the current attempt to a fault; returns the progress wasted.

        ``kind`` names the fault: ``"machine"`` (host death or pool
        outage killed a running/suspended attempt), ``"transient"``
        (the job's own execution segment died), or ``"drain"`` (a
        waiting job swept out of a blacked-out pool's queue — no
        progress existed to waste).  Like :meth:`abandon`, lost
        progress is accounted as wasted-restart time; the job returns
        to PENDING for requeue or retry.
        """
        self._require(
            "fail_attempt", JobState.RUNNING, JobState.SUSPENDED, JobState.WAITING
        )
        if self.state is JobState.RUNNING:
            self.accrue_progress(now)
        elif self.state is JobState.SUSPENDED:
            self._accrue_fractional(now)
            self.total_suspend += now - self.segment_start
        else:
            self.total_wait += now - self.segment_start
            self.wait_episode += 1
        wasted = self.progress
        self.wasted_restart += wasted
        self.progress = 0.0
        self.state = JobState.PENDING
        self.machine = None
        self.pool_id = None
        self.epoch += 1
        if kind == "machine":
            self.machine_failures += 1
        elif kind == "transient":
            self.transient_failures += 1
        self.segment_start = now
        return wasted

    def give_up(self, now: float) -> None:
        """Record the job as permanently failed (retry budget exhausted)."""
        self._require("give_up", JobState.PENDING)
        self.state = JobState.FAILED
        self.finish_minute = None
        self.epoch += 1
        self.segment_start = now

    def finish(self, now: float) -> None:
        """Complete successfully.

        Normally only RUNNING jobs finish; a SUSPENDED job may finish
        too when a fractional share let it run out its remaining work
        in place — that caps the suspension episode at the finish time.
        """
        if self.state is JobState.SUSPENDED and self.fractional_share:
            self.fractional_share = 0.0
            self.total_suspend += now - self.segment_start
        else:
            self._require("finish", JobState.RUNNING)
        self.progress = self.spec.runtime_minutes
        self.state = JobState.FINISHED
        self.finish_minute = now
        self.epoch += 1
        self.machine = None
        self.segment_start = now

    def reject(self, now: float) -> None:
        """Mark the job statically unschedulable."""
        self._require("reject", JobState.PENDING)
        self.state = JobState.REJECTED
        self.finish_minute = None
        self.segment_start = now

    def cancel(self, now: float) -> None:
        """Tear the job down wherever it is (duplication loser cleanup).

        Progress of the cancelled attempt becomes wasted-restart time,
        mirroring the accounting of restart-based rescheduling.
        """
        if self.state is JobState.RUNNING:
            self.accrue_progress(now)
        elif self.state is JobState.SUSPENDED:
            self._accrue_fractional(now)
            self.total_suspend += now - self.segment_start
        elif self.state is JobState.WAITING:
            self.total_wait += now - self.segment_start
        self.wasted_restart += self.progress
        self.progress = 0.0
        self.state = JobState.FINISHED
        self.machine = None
        self.epoch += 1
        self.segment_start = now

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id}, state={self.state.value}, pool={self.pool_id}, "
            f"progress={self.progress:.1f}/{self.spec.runtime_minutes:.1f})"
        )
