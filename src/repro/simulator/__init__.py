"""The NetBatch simulator (our from-scratch ASCA stand-in).

A hybrid discrete-event / per-minute-sampling simulator modelling
virtual pool managers, physical pools, heterogeneous machines,
priority preemption with host-level suspension, wait queues, and the
dynamic-rescheduling hook points the paper's strategies plug into.
"""

from .config import SimulationConfig
from .engine import LiveSystemView, SimulationEngine
from .events import EventQueue
from .job import Job, JobState
from .machine import Machine
from .observer import EventLog, EventObserver, JsonlEventWriter, SimEvent
from .online import OnlineResults, StreamingHistogram
from .pool import PhysicalPool, SubmitOutcome, SubmitResult
from .queues import PriorityWaitQueue
from .results import JobRecord, SimulationResult, StateSample
from .simulation import run_simulation, run_streaming
from .virtual_pool import VirtualPoolManager

__all__ = [
    "SimulationConfig",
    "LiveSystemView",
    "SimulationEngine",
    "EventQueue",
    "Job",
    "JobState",
    "Machine",
    "EventLog",
    "EventObserver",
    "JsonlEventWriter",
    "SimEvent",
    "PhysicalPool",
    "SubmitOutcome",
    "SubmitResult",
    "PriorityWaitQueue",
    "JobRecord",
    "OnlineResults",
    "StreamingHistogram",
    "SimulationResult",
    "StateSample",
    "run_simulation",
    "run_streaming",
    "VirtualPoolManager",
]
