"""Simulation outputs: per-job records and sampled state.

Mirrors ASCA's output design: the simulator "samples at each minute the
current states of all NetBatch components ... as well as the jobs'
resource usages, and outputs the results as logs for post-analysis".
Here the "logs" are :class:`JobRecord` and :class:`StateSample`
sequences wrapped in a :class:`SimulationResult`; the post-analysis
lives in :mod:`repro.metrics` and :mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["JobRecord", "StateSample", "SimulationResult"]


@dataclass(frozen=True)
class JobRecord:
    """Everything the metrics need to know about one completed job.

    Time quantities are minutes.  For jobs executed under a duplication
    policy the record merges the primary and shadow attempts (waits and
    waste add up; the finish time is the winner's).

    Attributes:
        job_id: trace job id.
        priority: trace priority level.
        submit_minute: submission time.
        finish_minute: completion time (``None`` for rejected jobs).
        runtime_minutes: reference-speed service demand.
        cores: cores the job occupies.
        memory_gb: memory footprint.
        wait_time: total minutes in wait queues (waste component c1).
        suspend_time: total minutes suspended (waste component c2).
        wasted_restart_time: progress discarded by restarts (c3).
        suspension_count: times the job was preempted.
        restart_count: times the job was restarted at another pool
            after a suspension.
        migration_count: times the job was migrated with its progress
            preserved (checkpoint/VM-migration extension).
        waiting_move_count: times the job was moved out of a wait queue
            by waiting-job rescheduling.
        pools_visited: distinct pools the job occupied, in order.
        rejected: True when the job was statically unschedulable.
        task_id: logical task the job belongs to, if any.
        user: submitting user/business group.
        machine_failures: attempts lost to host deaths or pool outages
            (fault injection; 0 without it).
        transient_failures: execution segments lost to transient job
            failures (fault injection; 0 without it).
        failed: True when the job exhausted its retry budget and was
            recorded as a permanent failure (``finish_minute`` is
            ``None``).
    """

    job_id: int
    priority: int
    submit_minute: float
    finish_minute: Optional[float]
    runtime_minutes: float
    cores: int
    memory_gb: float
    wait_time: float
    suspend_time: float
    wasted_restart_time: float
    suspension_count: int
    restart_count: int
    migration_count: int
    waiting_move_count: int
    pools_visited: Tuple[str, ...]
    rejected: bool
    task_id: Optional[int]
    user: str
    machine_failures: int = 0
    transient_failures: int = 0
    failed: bool = False

    @property
    def completion_time(self) -> Optional[float]:
        """Finish minus submit, or ``None`` for rejected jobs."""
        if self.finish_minute is None:
            return None
        return self.finish_minute - self.submit_minute

    @property
    def was_suspended(self) -> bool:
        """Whether the job was preempted at least once."""
        return self.suspension_count > 0

    @property
    def wasted_completion_time(self) -> float:
        """The paper's per-job waste: wait + suspend + restart waste."""
        return self.wait_time + self.suspend_time + self.wasted_restart_time


@dataclass(frozen=True)
class StateSample:
    """One tick of the per-minute state sampler.

    Attributes:
        minute: sample time.
        busy_cores: cores running jobs, summed over pools.
        total_cores: all cores in the cluster (constant, repeated for
            convenience of downstream aggregation).
        running_jobs: jobs executing.
        suspended_jobs: jobs suspended on hosts.
        waiting_jobs: jobs in pool wait queues.
        per_pool_busy: busy cores per pool (in the result's pool order).
        per_pool_waiting: waiting jobs per pool (empty when the run
            predates this field; consumers must handle both).
        per_pool_suspended: suspended jobs per pool (ditto).
    """

    minute: float
    busy_cores: int
    total_cores: int
    running_jobs: int
    suspended_jobs: int
    waiting_jobs: int
    per_pool_busy: Tuple[int, ...]
    per_pool_waiting: Tuple[int, ...] = ()
    per_pool_suspended: Tuple[int, ...] = ()

    @property
    def utilization(self) -> float:
        """Cluster-wide busy fraction, in ``[0, 1]``."""
        if self.total_cores == 0:
            return 0.0
        return self.busy_cores / self.total_cores


class SimulationResult:
    """The complete output of one simulation run."""

    # Class-level fallback so results unpickled from cache entries that
    # predate fault injection still expose the attribute.
    fault_stats = None

    def __init__(
        self,
        records: Sequence[JobRecord],
        samples: Sequence[StateSample],
        pool_ids: Sequence[str],
        policy_name: str,
        scheduler_name: str,
        total_cores: int,
        fault_stats=None,
    ) -> None:
        self._records = tuple(records)
        self._samples = tuple(samples)
        self.pool_ids = tuple(pool_ids)
        self.policy_name = policy_name
        self.scheduler_name = scheduler_name
        self.total_cores = total_cores
        #: The run's :class:`~repro.faults.FaultStats`, or ``None`` when
        #: fault injection was disabled.
        self.fault_stats = fault_stats

    @property
    def records(self) -> Tuple[JobRecord, ...]:
        """Per-job records, in completion order."""
        return self._records

    @property
    def samples(self) -> Tuple[StateSample, ...]:
        """State samples, in time order."""
        return self._samples

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"SimulationResult(policy={self.policy_name}, scheduler={self.scheduler_name}, "
            f"jobs={len(self._records)}, samples={len(self._samples)})"
        )

    # -- convenience accessors used throughout metrics/analysis ------------------

    def completed_records(self) -> Iterator[JobRecord]:
        """Records of jobs that actually finished."""
        return (
            r for r in self._records if not r.rejected and r.finish_minute is not None
        )

    def suspended_records(self) -> Iterator[JobRecord]:
        """Records of completed jobs that were suspended at least once."""
        return (r for r in self.completed_records() if r.was_suspended)

    def failed_records(self) -> Iterator[JobRecord]:
        """Records of jobs that permanently failed (fault injection)."""
        return (r for r in self._records if getattr(r, "failed", False))

    def failed_count(self) -> int:
        """Number of permanently failed jobs."""
        return sum(1 for _ in self.failed_records())

    def rejected_count(self) -> int:
        """Number of statically unschedulable jobs."""
        return sum(1 for r in self._records if r.rejected)

    def record_by_id(self, job_id: int) -> JobRecord:
        """Look up a record by job id (linear; for tests/debugging)."""
        for record in self._records:
            if record.job_id == job_id:
                return record
        raise KeyError(f"no record for job id {job_id}")

    def records_by_user(self) -> Dict[str, List[JobRecord]]:
        """Group completed records by submitting user."""
        grouped: Dict[str, List[JobRecord]] = {}
        for record in self.completed_records():
            grouped.setdefault(record.user, []).append(record)
        return grouped
