"""Engine performance trajectory: measure, record, compare.

The simulator's hot paths are rewritten over time (sharded wait
queues, calendar event scheduling, incremental pool accounting), and
"it felt faster" is not evidence.  This module gives the repo a
tracked performance trajectory:

* a fixed **workload matrix** (:data:`WORKLOADS`) every measurement
  runs against, so numbers stay comparable across commits;
* a :class:`BenchRecord` JSON schema, appended per PR to
  ``BENCH_engine.json`` by ``scripts/bench_record.py`` — one record
  per engine-touching change, oldest first;
* a **calibration score** (a fixed pure-Python spin measured on the
  same interpreter just before the workloads) so records taken on
  different machines can be compared as ratios rather than raw
  jobs/sec;
* a regression gate (:func:`check_regression`) CI runs against the
  last committed record, failing when calibration-normalised
  throughput drops by more than a threshold;
* a per-workload **result digest** over the simulation's job records,
  making every timing run double as a correctness tripwire — an
  optimisation that changes scheduling decisions shows up as a digest
  flip even when it is fast.

Timings use the best (minimum) wall-clock of N rounds: the minimum is
the least noisy location statistic for "how fast can this code go"
on a machine with background load.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .errors import ReproError
from .simulator.config import SimulationConfig

__all__ = [
    "SCHEMA_VERSION",
    "WorkloadSpec",
    "WorkloadResult",
    "BenchRecord",
    "WORKLOADS",
    "QUICK_WORKLOADS",
    "calibrate",
    "result_digest",
    "measure_workload",
    "measure_matrix",
    "measure_table1",
    "record_to_dict",
    "record_from_dict",
    "load_history",
    "write_record",
    "check_regression",
]

#: Bumped when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


class BenchFormatError(ReproError):
    """A BENCH_*.json file does not match the expected schema."""


@dataclass(frozen=True)
class WorkloadSpec:
    """One fixed cell of the throughput matrix.

    Attributes:
        name: stable identifier; comparisons join records on it.
        scenario: scenario factory name (``busy_week``,
            ``high_suspension`` or ``high_load``).
        scale: workload scale passed to the scenario factory.
        policy: paper strategy name (one of ``PAPER_POLICY_NAMES``),
            or ``none`` for the bare dispatcher.
        seed: simulation seed.
        faults: when True, run under exponential machine churn —
            exercises the eviction/requeue paths the fault-free cells
            never touch.
    """

    name: str
    scenario: str = "busy_week"
    scale: float = 0.08
    policy: str = "ResSusWaitUtil"
    seed: int = 0
    faults: bool = False


@dataclass(frozen=True)
class WorkloadResult:
    """Measured throughput of one workload cell."""

    spec: WorkloadSpec
    jobs: int
    rounds: int
    best_wall_seconds: float
    jobs_per_second: float
    result_digest: str


@dataclass(frozen=True)
class BenchRecord:
    """One point on the performance trajectory.

    Attributes:
        schema_version: layout version of this record.
        label: what was measured — normally the abbreviated git
            revision, set by ``scripts/bench_record.py``.
        recorded_at: ISO-8601 timestamp, or ``None`` in deterministic
            tests.
        calibration_score: iterations/second of the fixed calibration
            spin on the recording machine; divide ``jobs_per_second``
            by it to compare across machines.
        workloads: matrix measurements, in matrix order.
        table1_cold_seconds: wall-clock of the Table-1 campaign with a
            cold cache (``None`` when skipped).
        table1_warm_seconds: wall-clock of the cache-warm rerun
            (``None`` when skipped).
        notes: free-form context (host class, special conditions).
    """

    schema_version: int
    label: str
    recorded_at: Optional[str]
    calibration_score: float
    workloads: Tuple[WorkloadResult, ...]
    table1_cold_seconds: Optional[float] = None
    table1_warm_seconds: Optional[float] = None
    notes: str = ""


#: The tracked matrix.  Reduced-scale cells cover the policy spread
#: (bare dispatcher, the paper's heaviest policy, the suspension-heavy
#: scenario, fault churn); the full-scale cell is the headline number
#: quoted in docs/performance.md.
WORKLOADS: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec(name="busy_week_nores", policy="none"),
    WorkloadSpec(name="busy_week_wait_util"),
    WorkloadSpec(name="high_suspension_util", scenario="high_suspension",
                 scale=0.25, policy="ResSusUtil"),
    WorkloadSpec(name="busy_week_churn", faults=True),
    WorkloadSpec(name="busy_week_full", scale=1.0),
)

#: The cheap subset CI measures on every push (the full-scale cell
#: takes minutes on a loaded runner and adds nothing to the gate).
QUICK_WORKLOADS: Tuple[WorkloadSpec, ...] = tuple(
    spec for spec in WORKLOADS if spec.scale <= 0.25
)


def calibrate(iterations: int = 2_000_000, rounds: int = 3) -> float:
    """Score this interpreter/machine with a fixed pure-Python spin.

    Returns iterations per second, best of ``rounds``.  The spin mixes
    integer arithmetic, attribute-free name lookups and list appends —
    the same operation mix the simulator burns — so the ratio
    ``jobs_per_second / calibration_score`` is roughly
    machine-independent and is what the regression gate compares.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        sink: List[int] = []
        append = sink.append
        for i in range(iterations):
            acc += i & 7
            if not i & 1023:
                append(acc)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return iterations / best


def result_digest(result) -> str:
    """SHA-256 over a simulation's job records (order included)."""
    hasher = hashlib.sha256()
    for record in result.records:
        hasher.update(repr(record).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def _build_workload(spec: WorkloadSpec):
    """Resolve a spec to ``(trace, cluster, policy_factory, config)``."""
    from . import busy_week, high_load, high_suspension
    from .core.policies import policy_from_name

    scenarios = {
        "busy_week": busy_week,
        "high_suspension": high_suspension,
        "high_load": high_load,
    }
    try:
        factory = scenarios[spec.scenario]
    except KeyError:
        raise BenchFormatError(f"unknown scenario {spec.scenario!r}") from None
    scenario = factory(scale=spec.scale)
    policy = None if spec.policy == "none" else policy_from_name(spec.policy)
    faults = None
    if spec.faults:
        from .faults import FaultConfig, MachineChurn
        from .workload.distributions import Exponential

        faults = FaultConfig(
            machine_churn=MachineChurn(
                mtbf=Exponential(3000.0), mttr=Exponential(60.0)
            )
        )
    config = SimulationConfig(
        strict=False,
        seed=spec.seed,
        record_samples=False,
        **({"faults": faults} if faults is not None else {}),
    )
    return scenario, policy, config


def measure_workload(spec: WorkloadSpec, rounds: int = 3) -> WorkloadResult:
    """Run one cell ``rounds`` times; report the best round.

    Every round's record digest must agree with the first — a digest
    flip between same-seed rounds means the engine is nondeterministic,
    which is reported as an error rather than a timing.
    """
    from . import run_simulation

    scenario, policy, config = _build_workload(spec)
    best = float("inf")
    digest = None
    jobs = 0
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        result = run_simulation(
            scenario.trace, scenario.cluster, policy=policy, config=config
        )
        elapsed = time.perf_counter() - start
        round_digest = result_digest(result)
        if digest is None:
            digest = round_digest
            jobs = len(result.records)
        elif round_digest != digest:
            raise BenchFormatError(
                f"workload {spec.name}: same-seed rounds produced different "
                f"results ({digest[:12]} vs {round_digest[:12]})"
            )
        if elapsed < best:
            best = elapsed
    return WorkloadResult(
        spec=spec,
        jobs=jobs,
        rounds=max(1, rounds),
        best_wall_seconds=best,
        jobs_per_second=jobs / best if best > 0 else 0.0,
        result_digest=digest or "",
    )


def measure_matrix(
    specs: Sequence[WorkloadSpec] = WORKLOADS,
    rounds: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[WorkloadResult, ...]:
    """Measure every cell of ``specs`` (matrix order preserved)."""
    results = []
    for spec in specs:
        if progress is not None:
            progress(f"measuring {spec.name} (scale={spec.scale}, rounds={rounds})")
        results.append(measure_workload(spec, rounds=rounds))
    return tuple(results)


def measure_table1(scale: float = 0.08) -> Tuple[float, float]:
    """Time the Table-1 campaign cold, then cache-warm.

    Returns ``(cold_seconds, warm_seconds)``.  Uses a throwaway cache
    directory so the warm number measures the on-disk result cache,
    not a previous local run.
    """
    import shutil
    import tempfile

    from .experiments import tables

    cache_dir = tempfile.mkdtemp(prefix="benchtrack-table1-")
    try:
        start = time.perf_counter()
        tables.table1(scale=scale, workers=1, cache_dir=cache_dir, use_cache=True)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        tables.table1(scale=scale, workers=1, cache_dir=cache_dir, use_cache=True)
        warm = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return cold, warm


# -- JSON round-trip -----------------------------------------------------------------


def record_to_dict(record: BenchRecord) -> Dict:
    """Plain-JSON form of one record (inverse of :func:`record_from_dict`)."""
    return {
        "schema_version": record.schema_version,
        "label": record.label,
        "recorded_at": record.recorded_at,
        "calibration_score": record.calibration_score,
        "table1_cold_seconds": record.table1_cold_seconds,
        "table1_warm_seconds": record.table1_warm_seconds,
        "notes": record.notes,
        "workloads": [
            {
                "name": w.spec.name,
                "scenario": w.spec.scenario,
                "scale": w.spec.scale,
                "policy": w.spec.policy,
                "seed": w.spec.seed,
                "faults": w.spec.faults,
                "jobs": w.jobs,
                "rounds": w.rounds,
                "best_wall_seconds": w.best_wall_seconds,
                "jobs_per_second": w.jobs_per_second,
                "result_digest": w.result_digest,
            }
            for w in record.workloads
        ],
    }


def record_from_dict(data: Dict) -> BenchRecord:
    """Parse one record dict, validating the schema."""
    try:
        version = data["schema_version"]
        if version != SCHEMA_VERSION:
            raise BenchFormatError(f"unsupported bench schema version {version!r}")
        workloads = tuple(
            WorkloadResult(
                spec=WorkloadSpec(
                    name=w["name"],
                    scenario=w["scenario"],
                    scale=w["scale"],
                    policy=w["policy"],
                    seed=w["seed"],
                    faults=w["faults"],
                ),
                jobs=w["jobs"],
                rounds=w["rounds"],
                best_wall_seconds=w["best_wall_seconds"],
                jobs_per_second=w["jobs_per_second"],
                result_digest=w["result_digest"],
            )
            for w in data["workloads"]
        )
        return BenchRecord(
            schema_version=version,
            label=data["label"],
            recorded_at=data["recorded_at"],
            calibration_score=data["calibration_score"],
            workloads=workloads,
            table1_cold_seconds=data.get("table1_cold_seconds"),
            table1_warm_seconds=data.get("table1_warm_seconds"),
            notes=data.get("notes", ""),
        )
    except KeyError as exc:
        raise BenchFormatError(f"bench record is missing field {exc}") from None


def load_history(path: str) -> List[BenchRecord]:
    """All records in ``path``, oldest first; ``[]`` when absent."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "records" not in data:
        raise BenchFormatError(f"{path}: expected an object with a 'records' list")
    return [record_from_dict(entry) for entry in data["records"]]


def write_record(path: str, record: BenchRecord, append: bool = True) -> int:
    """Persist ``record``; returns the new history length.

    With ``append`` (the default) the record joins the existing
    trajectory; without it the file is rewritten to hold only this
    record — useful for starting a fresh trajectory after a schema or
    matrix change.
    """
    history = load_history(path) if append else []
    history.append(record)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "records": [record_to_dict(entry) for entry in history],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(history)


# -- regression gate -----------------------------------------------------------------


def _normalised(record: BenchRecord) -> Dict[str, float]:
    """Workload name -> jobs/sec divided by the calibration score."""
    if record.calibration_score <= 0:
        raise BenchFormatError("record has a non-positive calibration score")
    return {
        w.spec.name: w.jobs_per_second / record.calibration_score
        for w in record.workloads
    }


def check_regression(
    previous: BenchRecord,
    current: BenchRecord,
    threshold: float = 0.20,
) -> List[str]:
    """Compare two records; returns human-readable failures (empty = pass).

    A workload fails when its calibration-normalised throughput drops
    by more than ``threshold`` relative to ``previous``.  Workloads are
    joined by name and compared only when their spec (scenario, scale,
    policy, seed, faults) is unchanged; a renamed or re-scoped cell
    simply starts a new trajectory.  Speedups never fail.
    """
    failures: List[str] = []
    prev_norm = _normalised(previous)
    cur_norm = _normalised(current)
    prev_specs = {w.spec.name: w.spec for w in previous.workloads}
    cur_specs = {w.spec.name: w.spec for w in current.workloads}
    for name, cur in sorted(cur_norm.items()):
        if name not in prev_norm:
            continue
        if prev_specs[name] != cur_specs[name]:
            continue
        prev = prev_norm[name]
        if prev <= 0:
            continue
        drop = 1.0 - cur / prev
        if drop > threshold:
            failures.append(
                f"{name}: normalised throughput dropped {drop:.1%} "
                f"(limit {threshold:.0%}; {prev:.4f} -> {cur:.4f} jobs/sec "
                f"per calibration unit)"
            )
    return failures
