"""Engine performance trajectory: measure, record, compare.

The simulator's hot paths are rewritten over time (sharded wait
queues, calendar event scheduling, incremental pool accounting), and
"it felt faster" is not evidence.  This module gives the repo a
tracked performance trajectory:

* a fixed **workload matrix** (:data:`WORKLOADS`) every measurement
  runs against, so numbers stay comparable across commits;
* a :class:`BenchRecord` JSON schema, appended per PR to
  ``BENCH_engine.json`` by ``scripts/bench_record.py`` — one record
  per engine-touching change, oldest first;
* a **calibration score** (a fixed pure-Python spin measured on the
  same interpreter just before the workloads) so records taken on
  different machines can be compared as ratios rather than raw
  jobs/sec;
* a regression gate (:func:`check_regression`) CI runs against the
  last committed record, failing when calibration-normalised
  throughput drops by more than a threshold;
* a per-workload **result digest** over the simulation's job records,
  making every timing run double as a correctness tripwire — an
  optimisation that changes scheduling decisions shows up as a digest
  flip even when it is fast.

Timings use the best (minimum) wall-clock of N rounds: the minimum is
the least noisy location statistic for "how fast can this code go"
on a machine with background load.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .errors import ReproError
from .simulator.config import SimulationConfig

__all__ = [
    "SCHEMA_VERSION",
    "WorkloadSpec",
    "WorkloadResult",
    "BenchRecord",
    "WORKLOADS",
    "QUICK_WORKLOADS",
    "calibrate",
    "result_digest",
    "measure_workload",
    "measure_matrix",
    "measure_table1",
    "record_to_dict",
    "record_from_dict",
    "load_history",
    "write_record",
    "check_regression",
    "IngestSpec",
    "IngestResult",
    "IngestRecord",
    "INGEST_WORKLOADS",
    "measure_ingest",
    "measure_ingest_matrix",
    "ingest_record_to_dict",
    "ingest_record_from_dict",
    "load_ingest_history",
    "write_ingest_record",
    "check_ingest_regression",
    "GridSpec",
    "GridBackendTiming",
    "GridResult",
    "GridRecord",
    "GRID_WORKLOADS",
    "QUICK_GRID_WORKLOADS",
    "measure_grid",
    "measure_grid_matrix",
    "grid_record_to_dict",
    "grid_record_from_dict",
    "load_grid_history",
    "write_grid_record",
    "check_grid_regression",
    "ChaosSpec",
    "ChaosScenarioResult",
    "ChaosRecord",
    "CHAOS_SCENARIOS",
    "measure_chaos",
    "measure_chaos_matrix",
    "chaos_record_to_dict",
    "chaos_record_from_dict",
    "load_chaos_history",
    "write_chaos_record",
    "check_chaos_regression",
]

#: Bumped when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


class BenchFormatError(ReproError):
    """A BENCH_*.json file does not match the expected schema."""


@dataclass(frozen=True)
class WorkloadSpec:
    """One fixed cell of the throughput matrix.

    Attributes:
        name: stable identifier; comparisons join records on it.
        scenario: scenario factory name (``busy_week``,
            ``high_suspension`` or ``high_load``).
        scale: workload scale passed to the scenario factory.
        policy: paper strategy name (one of ``PAPER_POLICY_NAMES``),
            or ``none`` for the bare dispatcher.
        seed: simulation seed.
        faults: when True, run under exponential machine churn —
            exercises the eviction/requeue paths the fault-free cells
            never touch.
    """

    name: str
    scenario: str = "busy_week"
    scale: float = 0.08
    policy: str = "ResSusWaitUtil"
    seed: int = 0
    faults: bool = False


@dataclass(frozen=True)
class WorkloadResult:
    """Measured throughput of one workload cell."""

    spec: WorkloadSpec
    jobs: int
    rounds: int
    best_wall_seconds: float
    jobs_per_second: float
    result_digest: str


@dataclass(frozen=True)
class BenchRecord:
    """One point on the performance trajectory.

    Attributes:
        schema_version: layout version of this record.
        label: what was measured — normally the abbreviated git
            revision, set by ``scripts/bench_record.py``.
        recorded_at: ISO-8601 timestamp, or ``None`` in deterministic
            tests.
        calibration_score: iterations/second of the fixed calibration
            spin on the recording machine; divide ``jobs_per_second``
            by it to compare across machines.
        workloads: matrix measurements, in matrix order.
        table1_cold_seconds: wall-clock of the Table-1 campaign with a
            cold cache (``None`` when skipped).
        table1_warm_seconds: wall-clock of the cache-warm rerun
            (``None`` when skipped).
        notes: free-form context (host class, special conditions).
    """

    schema_version: int
    label: str
    recorded_at: Optional[str]
    calibration_score: float
    workloads: Tuple[WorkloadResult, ...]
    table1_cold_seconds: Optional[float] = None
    table1_warm_seconds: Optional[float] = None
    notes: str = ""


#: The tracked matrix.  Reduced-scale cells cover the policy spread
#: (bare dispatcher, the paper's heaviest policy, the suspension-heavy
#: scenario, fault churn); the full-scale cell is the headline number
#: quoted in docs/performance.md.
WORKLOADS: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec(name="busy_week_nores", policy="none"),
    WorkloadSpec(name="busy_week_wait_util"),
    WorkloadSpec(name="high_suspension_util", scenario="high_suspension",
                 scale=0.25, policy="ResSusUtil"),
    WorkloadSpec(name="busy_week_churn", faults=True),
    WorkloadSpec(name="busy_week_full", scale=1.0),
)

#: The cheap subset CI measures on every push (the full-scale cell
#: takes minutes on a loaded runner and adds nothing to the gate).
QUICK_WORKLOADS: Tuple[WorkloadSpec, ...] = tuple(
    spec for spec in WORKLOADS if spec.scale <= 0.25
)


def calibrate(iterations: int = 2_000_000, rounds: int = 3) -> float:
    """Score this interpreter/machine with a fixed pure-Python spin.

    Returns iterations per second, best of ``rounds``.  The spin mixes
    integer arithmetic, attribute-free name lookups and list appends —
    the same operation mix the simulator burns — so the ratio
    ``jobs_per_second / calibration_score`` is roughly
    machine-independent and is what the regression gate compares.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        sink: List[int] = []
        append = sink.append
        for i in range(iterations):
            acc += i & 7
            if not i & 1023:
                append(acc)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return iterations / best


def result_digest(result) -> str:
    """SHA-256 over a simulation's job records (order included)."""
    hasher = hashlib.sha256()
    for record in result.records:
        hasher.update(repr(record).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def _build_workload(spec: WorkloadSpec):
    """Resolve a spec to ``(trace, cluster, policy_factory, config)``."""
    from . import busy_week, high_load, high_suspension
    from .policies import policy_from_spec

    scenarios = {
        "busy_week": busy_week,
        "high_suspension": high_suspension,
        "high_load": high_load,
    }
    try:
        factory = scenarios[spec.scenario]
    except KeyError:
        raise BenchFormatError(f"unknown scenario {spec.scenario!r}") from None
    scenario = factory(scale=spec.scale)
    policy = None if spec.policy == "none" else policy_from_spec(spec.policy)
    faults = None
    if spec.faults:
        from .faults import FaultConfig, MachineChurn
        from .workload.distributions import Exponential

        faults = FaultConfig(
            machine_churn=MachineChurn(
                mtbf=Exponential(3000.0), mttr=Exponential(60.0)
            )
        )
    config = SimulationConfig(
        strict=False,
        seed=spec.seed,
        record_samples=False,
        **({"faults": faults} if faults is not None else {}),
    )
    return scenario, policy, config


def measure_workload(spec: WorkloadSpec, rounds: int = 3) -> WorkloadResult:
    """Run one cell ``rounds`` times; report the best round.

    Every round's record digest must agree with the first — a digest
    flip between same-seed rounds means the engine is nondeterministic,
    which is reported as an error rather than a timing.
    """
    from . import run_simulation

    scenario, policy, config = _build_workload(spec)
    best = float("inf")
    digest = None
    jobs = 0
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        result = run_simulation(
            scenario.trace, scenario.cluster, policy=policy, config=config
        )
        elapsed = time.perf_counter() - start
        round_digest = result_digest(result)
        if digest is None:
            digest = round_digest
            jobs = len(result.records)
        elif round_digest != digest:
            raise BenchFormatError(
                f"workload {spec.name}: same-seed rounds produced different "
                f"results ({digest[:12]} vs {round_digest[:12]})"
            )
        if elapsed < best:
            best = elapsed
    return WorkloadResult(
        spec=spec,
        jobs=jobs,
        rounds=max(1, rounds),
        best_wall_seconds=best,
        jobs_per_second=jobs / best if best > 0 else 0.0,
        result_digest=digest or "",
    )


def measure_matrix(
    specs: Sequence[WorkloadSpec] = WORKLOADS,
    rounds: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[WorkloadResult, ...]:
    """Measure every cell of ``specs`` (matrix order preserved)."""
    results = []
    for spec in specs:
        if progress is not None:
            progress(f"measuring {spec.name} (scale={spec.scale}, rounds={rounds})")
        results.append(measure_workload(spec, rounds=rounds))
    return tuple(results)


def measure_table1(scale: float = 0.08) -> Tuple[float, float]:
    """Time the Table-1 campaign cold, then cache-warm.

    Returns ``(cold_seconds, warm_seconds)``.  Uses a throwaway cache
    directory so the warm number measures the on-disk result cache,
    not a previous local run.
    """
    import shutil
    import tempfile

    from .experiments import tables

    cache_dir = tempfile.mkdtemp(prefix="benchtrack-table1-")
    try:
        start = time.perf_counter()
        tables.table1(scale=scale, workers=1, cache_dir=cache_dir, use_cache=True)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        tables.table1(scale=scale, workers=1, cache_dir=cache_dir, use_cache=True)
        warm = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return cold, warm


# -- JSON round-trip -----------------------------------------------------------------


def record_to_dict(record: BenchRecord) -> Dict:
    """Plain-JSON form of one record (inverse of :func:`record_from_dict`)."""
    return {
        "schema_version": record.schema_version,
        "label": record.label,
        "recorded_at": record.recorded_at,
        "calibration_score": record.calibration_score,
        "table1_cold_seconds": record.table1_cold_seconds,
        "table1_warm_seconds": record.table1_warm_seconds,
        "notes": record.notes,
        "workloads": [
            {
                "name": w.spec.name,
                "scenario": w.spec.scenario,
                "scale": w.spec.scale,
                "policy": w.spec.policy,
                "seed": w.spec.seed,
                "faults": w.spec.faults,
                "jobs": w.jobs,
                "rounds": w.rounds,
                "best_wall_seconds": w.best_wall_seconds,
                "jobs_per_second": w.jobs_per_second,
                "result_digest": w.result_digest,
            }
            for w in record.workloads
        ],
    }


def record_from_dict(data: Dict) -> BenchRecord:
    """Parse one record dict, validating the schema."""
    try:
        version = data["schema_version"]
        if version != SCHEMA_VERSION:
            raise BenchFormatError(f"unsupported bench schema version {version!r}")
        workloads = tuple(
            WorkloadResult(
                spec=WorkloadSpec(
                    name=w["name"],
                    scenario=w["scenario"],
                    scale=w["scale"],
                    policy=w["policy"],
                    seed=w["seed"],
                    faults=w["faults"],
                ),
                jobs=w["jobs"],
                rounds=w["rounds"],
                best_wall_seconds=w["best_wall_seconds"],
                jobs_per_second=w["jobs_per_second"],
                result_digest=w["result_digest"],
            )
            for w in data["workloads"]
        )
        return BenchRecord(
            schema_version=version,
            label=data["label"],
            recorded_at=data["recorded_at"],
            calibration_score=data["calibration_score"],
            workloads=workloads,
            table1_cold_seconds=data.get("table1_cold_seconds"),
            table1_warm_seconds=data.get("table1_warm_seconds"),
            notes=data.get("notes", ""),
        )
    except KeyError as exc:
        raise BenchFormatError(f"bench record is missing field {exc}") from None


def load_history(path: str) -> List[BenchRecord]:
    """All records in ``path``, oldest first; ``[]`` when absent."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "records" not in data:
        raise BenchFormatError(f"{path}: expected an object with a 'records' list")
    return [record_from_dict(entry) for entry in data["records"]]


def write_record(path: str, record: BenchRecord, append: bool = True) -> int:
    """Persist ``record``; returns the new history length.

    With ``append`` (the default) the record joins the existing
    trajectory; without it the file is rewritten to hold only this
    record — useful for starting a fresh trajectory after a schema or
    matrix change.
    """
    history = load_history(path) if append else []
    history.append(record)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "records": [record_to_dict(entry) for entry in history],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(history)


# -- streaming-ingestion trajectory (BENCH_ingest.json) -----------------------------
#
# The engine matrix above times in-process simulation of synthetic
# scenarios.  The ingestion trajectory tracks the *real-trace pipeline*
# end to end — fixture bytes on disk, streaming parse, replay mapping,
# engine, OnlineResults sink — and, crucially, its peak RSS, because
# the whole point of streaming ingestion is that memory stays constant
# in trace length.  Each cell is measured in a **fresh subprocess**
# (``python -m repro ingest … --json``): ``ru_maxrss`` is a
# process-lifetime high-water mark, so measuring in-process would
# report whatever the fixture generator or a previous cell peaked at.


@dataclass(frozen=True)
class IngestSpec:
    """One fixed cell of the ingestion matrix.

    Attributes:
        name: stable identifier; comparisons join records on it.
        fmt: fixture/trace format (``swf`` or ``google``).
        jobs: fixture size in jobs (tasks for ``google``).
        seed: fixture content seed.
        scale: cluster scale the replay runs against (fixture arrival
            rates are derived from the same cluster).
        utilization: fixture's offered load vs that cluster.
    """

    name: str
    fmt: str = "swf"
    jobs: int = 100_000
    seed: int = 1
    scale: float = 0.1
    utilization: float = 0.35


@dataclass(frozen=True)
class IngestResult:
    """Measured end-to-end replay of one ingestion cell."""

    spec: IngestSpec
    jobs: int
    wall_seconds: float
    jobs_per_second: float
    peak_rss_mb: float


@dataclass(frozen=True)
class IngestRecord:
    """One point on the ingestion-performance trajectory."""

    schema_version: int
    label: str
    recorded_at: Optional[str]
    calibration_score: float
    ingests: Tuple[IngestResult, ...]
    notes: str = ""


#: The tracked ingestion matrix: the headline SWF cell (the CI gate's
#: fixture size) plus a smaller Google-CSV cell covering the
#: watermark-reorder path.
INGEST_WORKLOADS: Tuple[IngestSpec, ...] = (
    IngestSpec(name="swf_100k"),
    IngestSpec(name="google_30k", fmt="google", jobs=30_000),
)


def measure_ingest(
    spec: IngestSpec, fixture_dir: Optional[str] = None, rounds: int = 3
) -> IngestResult:
    """Generate the cell's fixture and replay it in a fresh subprocess.

    The subprocess runs ``python -m repro ingest <fixture> --json`` and
    reports its own wall clock and ``ru_maxrss``, so the number is the
    full pipeline's footprint with no contamination from this process.
    The replay runs ``rounds`` times (same methodology as the engine
    matrix): the *best* throughput round is recorded — scheduler noise
    only ever slows a run down — along with the *worst* peak RSS, the
    conservative direction for the memory gate.
    """
    import subprocess
    import sys as sys_module
    import tempfile

    from .workload.traces import generate_google_fixture, generate_swf_fixture

    own_dir = None
    if fixture_dir is None:
        own_dir = tempfile.mkdtemp(prefix="benchtrack-ingest-")
        fixture_dir = own_dir
    try:
        suffix = ".swf" if spec.fmt == "swf" else ".csv"
        fixture = os.path.join(fixture_dir, f"{spec.name}{suffix}")
        generate = generate_swf_fixture if spec.fmt == "swf" else generate_google_fixture
        # Derive target cores exactly as `repro ingest --scale` will.
        from .workload.cluster import ClusterTemplate
        from .workload.distributions import RandomStreams

        cluster = ClusterTemplate(scale=spec.scale).build(RandomStreams(2010))
        generate(
            fixture,
            spec.jobs,
            seed=spec.seed,
            target_cores=cluster.total_cores,
            utilization=spec.utilization,
        )
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        best: Optional[Dict] = None
        worst_rss = 0.0
        for _ in range(max(1, rounds)):
            proc = subprocess.run(
                [
                    sys_module.executable,
                    "-m",
                    "repro",
                    "ingest",
                    fixture,
                    "--format",
                    spec.fmt,
                    "--scale",
                    str(spec.scale),
                    "--json",
                ],
                capture_output=True,
                text=True,
                env=env,
            )
            if proc.returncode != 0:
                raise BenchFormatError(
                    f"ingest cell {spec.name} failed "
                    f"(exit {proc.returncode}): {proc.stderr.strip()[:500]}"
                )
            try:
                payload = json.loads(proc.stdout)
            except json.JSONDecodeError as exc:
                raise BenchFormatError(
                    f"ingest cell {spec.name}: unparseable JSON output ({exc})"
                ) from None
            worst_rss = max(worst_rss, payload["peak_rss_mb"])
            if best is None or payload["jobs_per_second"] > best["jobs_per_second"]:
                best = payload
        return IngestResult(
            spec=spec,
            jobs=best["jobs"],
            wall_seconds=best["wall_seconds"],
            jobs_per_second=best["jobs_per_second"],
            peak_rss_mb=worst_rss,
        )
    finally:
        if own_dir is not None:
            import shutil

            shutil.rmtree(own_dir, ignore_errors=True)


def measure_ingest_matrix(
    specs: Sequence[IngestSpec] = INGEST_WORKLOADS,
    progress: Optional[Callable[[str], None]] = None,
    rounds: int = 3,
) -> Tuple[IngestResult, ...]:
    """Measure every ingestion cell (matrix order preserved)."""
    results = []
    for spec in specs:
        if progress is not None:
            progress(f"measuring ingest {spec.name} ({spec.fmt}, {spec.jobs} jobs)")
        results.append(measure_ingest(spec, rounds=rounds))
    return tuple(results)


def ingest_record_to_dict(record: IngestRecord) -> Dict:
    """Plain-JSON form (inverse of :func:`ingest_record_from_dict`)."""
    return {
        "schema_version": record.schema_version,
        "label": record.label,
        "recorded_at": record.recorded_at,
        "calibration_score": record.calibration_score,
        "notes": record.notes,
        "ingests": [
            {
                "name": r.spec.name,
                "fmt": r.spec.fmt,
                "fixture_jobs": r.spec.jobs,
                "seed": r.spec.seed,
                "scale": r.spec.scale,
                "utilization": r.spec.utilization,
                "jobs": r.jobs,
                "wall_seconds": r.wall_seconds,
                "jobs_per_second": r.jobs_per_second,
                "peak_rss_mb": r.peak_rss_mb,
            }
            for r in record.ingests
        ],
    }


def ingest_record_from_dict(data: Dict) -> IngestRecord:
    """Parse one ingestion record dict, validating the schema."""
    try:
        version = data["schema_version"]
        if version != SCHEMA_VERSION:
            raise BenchFormatError(f"unsupported bench schema version {version!r}")
        ingests = tuple(
            IngestResult(
                spec=IngestSpec(
                    name=r["name"],
                    fmt=r["fmt"],
                    jobs=r["fixture_jobs"],
                    seed=r["seed"],
                    scale=r["scale"],
                    utilization=r["utilization"],
                ),
                jobs=r["jobs"],
                wall_seconds=r["wall_seconds"],
                jobs_per_second=r["jobs_per_second"],
                peak_rss_mb=r["peak_rss_mb"],
            )
            for r in data["ingests"]
        )
        return IngestRecord(
            schema_version=version,
            label=data["label"],
            recorded_at=data["recorded_at"],
            calibration_score=data["calibration_score"],
            ingests=ingests,
            notes=data.get("notes", ""),
        )
    except KeyError as exc:
        raise BenchFormatError(f"ingest record is missing field {exc}") from None


def load_ingest_history(path: str) -> List[IngestRecord]:
    """All ingestion records in ``path``, oldest first; ``[]`` if absent."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "records" not in data:
        raise BenchFormatError(f"{path}: expected an object with a 'records' list")
    return [ingest_record_from_dict(entry) for entry in data["records"]]


def write_ingest_record(path: str, record: IngestRecord, append: bool = True) -> int:
    """Persist an ingestion record; returns the new history length."""
    history = load_ingest_history(path) if append else []
    history.append(record)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "records": [ingest_record_to_dict(entry) for entry in history],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(history)


def check_ingest_regression(
    previous: IngestRecord,
    current: IngestRecord,
    threshold: float = 0.20,
    rss_slack: float = 0.25,
) -> List[str]:
    """Compare two ingestion records; returns failures (empty = pass).

    Two gates per cell (joined by name, compared only when the spec is
    unchanged):

    * calibration-normalised jobs/sec may not drop more than
      ``threshold`` — same rule as the engine matrix;
    * peak RSS may not grow more than ``rss_slack`` (plus a 16 MB
      absolute allowance for interpreter noise) — RSS is already
      machine-comparable, and creeping memory is exactly the
      regression streaming ingestion exists to prevent.
    """
    failures: List[str] = []
    if previous.calibration_score <= 0 or current.calibration_score <= 0:
        raise BenchFormatError("ingest record has a non-positive calibration score")
    prev_cells = {r.spec.name: r for r in previous.ingests}
    for result in current.ingests:
        prev = prev_cells.get(result.spec.name)
        if prev is None or prev.spec != result.spec:
            continue
        prev_norm = prev.jobs_per_second / previous.calibration_score
        cur_norm = result.jobs_per_second / current.calibration_score
        if prev_norm > 0:
            drop = 1.0 - cur_norm / prev_norm
            if drop > threshold:
                failures.append(
                    f"{result.spec.name}: normalised ingest throughput dropped "
                    f"{drop:.1%} (limit {threshold:.0%}; {prev_norm:.4f} -> "
                    f"{cur_norm:.4f} jobs/sec per calibration unit)"
                )
        rss_limit = prev.peak_rss_mb * (1.0 + rss_slack) + 16.0
        if result.peak_rss_mb > rss_limit:
            failures.append(
                f"{result.spec.name}: peak RSS grew from {prev.peak_rss_mb:.0f} MB "
                f"to {result.peak_rss_mb:.0f} MB (limit {rss_limit:.0f} MB) — "
                f"streaming ingestion is leaking memory"
            )
    return failures


# -- regression gate -----------------------------------------------------------------


def _normalised(record: BenchRecord) -> Dict[str, float]:
    """Workload name -> jobs/sec divided by the calibration score."""
    if record.calibration_score <= 0:
        raise BenchFormatError("record has a non-positive calibration score")
    return {
        w.spec.name: w.jobs_per_second / record.calibration_score
        for w in record.workloads
    }


def check_regression(
    previous: BenchRecord,
    current: BenchRecord,
    threshold: float = 0.20,
) -> List[str]:
    """Compare two records; returns human-readable failures (empty = pass).

    A workload fails when its calibration-normalised throughput drops
    by more than ``threshold`` relative to ``previous``.  Workloads are
    joined by name and compared only when their spec (scenario, scale,
    policy, seed, faults) is unchanged; a renamed or re-scoped cell
    simply starts a new trajectory.  Speedups never fail.
    """
    failures: List[str] = []
    prev_norm = _normalised(previous)
    cur_norm = _normalised(current)
    prev_specs = {w.spec.name: w.spec for w in previous.workloads}
    cur_specs = {w.spec.name: w.spec for w in current.workloads}
    for name, cur in sorted(cur_norm.items()):
        if name not in prev_norm:
            continue
        if prev_specs[name] != cur_specs[name]:
            continue
        prev = prev_norm[name]
        if prev <= 0:
            continue
        drop = 1.0 - cur / prev
        if drop > threshold:
            failures.append(
                f"{name}: normalised throughput dropped {drop:.1%} "
                f"(limit {threshold:.0%}; {prev:.4f} -> {cur:.4f} jobs/sec "
                f"per calibration unit)"
            )
    return failures


# -- distributed-fabric grid trajectory (BENCH_grid.json) ----------------------------
#
# The engine matrix times one simulation; the grid trajectory times the
# *fabric* — a whole experiment grid executed through the distributed
# backends (serial baseline, then N subprocess workers racing cells via
# the lease protocol).  Each measurement records cells/sec per backend,
# the warm-cache rerun wall, and a digest over every cell's summary:
# a sharded run that is not bit-identical to the serial run is a
# correctness failure, never a timing.
#
# Two cells:
#
# * ``fault_sweep`` — the real CPU-bound grid.  Its speedup is honest
#   and therefore bounded by ``available_cores`` (recorded in every
#   record): on a 1-core CI box N workers time-slice one CPU and the
#   speedup is ~1x by construction.
# * ``smoke_padded`` — cheap cells padded to a fixed wall floor via
#   ``REPRO_FABRIC_CELL_FLOOR``, making the grid scheduling-bound
#   rather than CPU-bound.  This isolates the quantity the fabric
#   itself controls — claim/publish overlap — so the >= 3x @ 4 workers
#   gate holds even on single-core runners, and a fabric-layer
#   serialisation bug (workers accidentally convoying on a lock or a
#   lease) shows up as a speedup collapse no matter the host.


@dataclass(frozen=True)
class GridSpec:
    """One fixed cell of the fabric grid matrix.

    Attributes:
        name: stable identifier; comparisons join records on it.
        preset: fabric grid preset (``fault-sweep``, ``smoke``,
            ``table1``).
        scale: workload scale handed to the preset builder (``None``
            for the preset default).
        seed: base workload seed.
        cell_floor: seconds each computed cell is padded to via
            ``REPRO_FABRIC_CELL_FLOOR`` (0 = unpadded, CPU-bound).
        worker_counts: subprocess worker fleets to measure.
    """

    name: str
    preset: str
    scale: Optional[float] = None
    seed: int = 2010
    cell_floor: float = 0.0
    worker_counts: Tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class GridBackendTiming:
    """One backend's wall clock over one grid."""

    backend: str
    wall_seconds: float
    cells_per_second: float


@dataclass(frozen=True)
class GridResult:
    """Measured execution of one grid across its backends.

    ``digest`` hashes the ordered per-cell summary digests; every
    backend (and the serial baseline) must produce the same value.
    ``warm_seconds`` is a rerun against the already-populated cache.
    """

    spec: GridSpec
    cells: int
    digest: str
    timings: Tuple[GridBackendTiming, ...]
    warm_seconds: float

    def timing(self, backend: str) -> Optional[GridBackendTiming]:
        for entry in self.timings:
            if entry.backend == backend:
                return entry
        return None

    def speedup(self, workers: int) -> Optional[float]:
        """Cells/sec at ``workers`` subprocess workers vs one."""
        one = self.timing("subprocess:1")
        many = self.timing(f"subprocess:{workers}")
        if one is None or many is None or one.cells_per_second <= 0:
            return None
        return many.cells_per_second / one.cells_per_second


@dataclass(frozen=True)
class GridRecord:
    """One point on the fabric-performance trajectory."""

    schema_version: int
    label: str
    recorded_at: Optional[str]
    calibration_score: float
    available_cores: int
    grids: Tuple[GridResult, ...]
    notes: str = ""


#: Minimum subprocess:4 / subprocess:1 speedup for padded grids.
GRID_MIN_SPEEDUP = 3.0

#: The tracked fabric matrix (see the section comment above).
GRID_WORKLOADS: Tuple[GridSpec, ...] = (
    GridSpec(name="fault_sweep", preset="fault-sweep", scale=0.06, seed=2010),
    # The 3s floor is sized so the 12 padded cells dominate worker
    # startup (4 interpreters booting on one shared core costs ~1.6s
    # of wall): expected speedup ~(0.4 + 12*F) / (1.6 + 3*F) ≈ 3.4x
    # at F=3, comfortably above the 3x overlap gate.
    GridSpec(
        name="smoke_padded", preset="smoke", seed=2010, cell_floor=3.0,
        worker_counts=(1, 2, 4),
    ),
)

#: The cheap subset CI gates on every push: the padded grid is
#: sleep-bound, so it is fast, noise-tolerant and core-count-agnostic.
QUICK_GRID_WORKLOADS: Tuple[GridSpec, ...] = tuple(
    spec for spec in GRID_WORKLOADS if spec.cell_floor > 0
)


def _grid_digest(report) -> str:
    """Order-sensitive digest over every completed cell's summary."""
    from .experiments.cache import stable_hash

    hasher = hashlib.sha256()
    for outcome in report.completed:
        hasher.update(stable_hash(outcome.summary).encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def measure_grid(
    spec: GridSpec,
    progress: Optional[Callable[[str], None]] = None,
) -> GridResult:
    """Execute one grid serially and through each subprocess fleet.

    Every backend gets a fresh cache directory (cold run); the largest
    fleet's cache is reused for the warm-rerun measurement.  A digest
    mismatch between any two runs raises — the fabric's determinism
    contract is a precondition for the timings meaning anything.
    """
    import shutil
    import tempfile

    from .experiments.cache import ResultCache
    from .experiments.parallel import run_grid_parallel
    from .fabric import SubprocessWorkerBackend, build_grid, run_grid_fabric
    from .fabric.worker import CELL_FLOOR_ENV

    def build():
        return build_grid(spec.preset, scale=spec.scale, seed=spec.seed)

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    timings: List[GridBackendTiming] = []
    digest: Optional[str] = None
    cells = len(build())

    def note(report, backend: str, wall: float) -> None:
        nonlocal digest
        if not report.ok:
            raise BenchFormatError(
                f"grid {spec.name}: {len(report.failures)} cell(s) failed "
                f"under {backend}"
            )
        run_digest = _grid_digest(report)
        if digest is None:
            digest = run_digest
        elif run_digest != digest:
            raise BenchFormatError(
                f"grid {spec.name}: {backend} diverged from the serial "
                f"baseline ({digest[:12]} vs {run_digest[:12]}) — the "
                "fabric broke bit-identical sharding"
            )
        timings.append(
            GridBackendTiming(
                backend=backend,
                wall_seconds=wall,
                cells_per_second=cells / wall if wall > 0 else 0.0,
            )
        )

    old_floor = os.environ.get(CELL_FLOOR_ENV)
    warm_seconds = 0.0
    try:
        if spec.cell_floor > 0:
            os.environ[CELL_FLOOR_ENV] = str(spec.cell_floor)
        elif CELL_FLOOR_ENV in os.environ:
            del os.environ[CELL_FLOOR_ENV]

        if spec.cell_floor == 0:
            # CPU-bound grids get a pool-free serial baseline; padded
            # grids skip it (run_grid_parallel has no floor, so the
            # comparison would be meaningless) and use subprocess:1.
            say(f"grid {spec.name}: serial baseline ({cells} cells)")
            start = time.perf_counter()
            report = run_grid_parallel(build(), n_workers=1)
            note(report, "serial", time.perf_counter() - start)

        for workers in spec.worker_counts:
            backend = SubprocessWorkerBackend(workers, poll_interval=0.05)
            say(f"grid {spec.name}: {backend.name}")
            cache_dir = tempfile.mkdtemp(prefix=f"benchtrack-grid-{spec.name}-")
            try:
                start = time.perf_counter()
                report = run_grid_fabric(
                    build(), backend, ResultCache(cache_dir), poll_interval=0.05
                )
                note(report, backend.name, time.perf_counter() - start)
                if workers == max(spec.worker_counts):
                    start = time.perf_counter()
                    warm = run_grid_fabric(
                        build(), backend, ResultCache(cache_dir),
                        poll_interval=0.05,
                    )
                    warm_seconds = time.perf_counter() - start
                    counts = warm.provenance_counts()
                    if counts.get("cache_hit", 0) != cells:
                        raise BenchFormatError(
                            f"grid {spec.name}: warm rerun recomputed cells "
                            f"(provenance {counts!r}) — the cache key broke"
                        )
                    if _grid_digest(warm) != digest:
                        raise BenchFormatError(
                            f"grid {spec.name}: warm rerun diverged from "
                            "the cold digest"
                        )
            finally:
                shutil.rmtree(cache_dir, ignore_errors=True)
    finally:
        if old_floor is None:
            os.environ.pop(CELL_FLOOR_ENV, None)
        else:
            os.environ[CELL_FLOOR_ENV] = old_floor

    return GridResult(
        spec=spec,
        cells=cells,
        digest=digest or "",
        timings=tuple(timings),
        warm_seconds=warm_seconds,
    )


def measure_grid_matrix(
    specs: Sequence[GridSpec] = GRID_WORKLOADS,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[GridResult, ...]:
    """Measure every grid cell (matrix order preserved)."""
    return tuple(measure_grid(spec, progress=progress) for spec in specs)


def grid_record_to_dict(record: GridRecord) -> Dict:
    """Plain-JSON form (inverse of :func:`grid_record_from_dict`)."""
    return {
        "schema_version": record.schema_version,
        "label": record.label,
        "recorded_at": record.recorded_at,
        "calibration_score": record.calibration_score,
        "available_cores": record.available_cores,
        "notes": record.notes,
        "grids": [
            {
                "name": g.spec.name,
                "preset": g.spec.preset,
                "scale": g.spec.scale,
                "seed": g.spec.seed,
                "cell_floor": g.spec.cell_floor,
                "worker_counts": list(g.spec.worker_counts),
                "cells": g.cells,
                "digest": g.digest,
                "warm_seconds": g.warm_seconds,
                "timings": [
                    {
                        "backend": t.backend,
                        "wall_seconds": t.wall_seconds,
                        "cells_per_second": t.cells_per_second,
                    }
                    for t in g.timings
                ],
            }
            for g in record.grids
        ],
    }


def grid_record_from_dict(data: Dict) -> GridRecord:
    """Parse one grid record dict, validating the schema."""
    try:
        version = data["schema_version"]
        if version != SCHEMA_VERSION:
            raise BenchFormatError(f"unsupported bench schema version {version!r}")
        grids = tuple(
            GridResult(
                spec=GridSpec(
                    name=g["name"],
                    preset=g["preset"],
                    scale=g["scale"],
                    seed=g["seed"],
                    cell_floor=g["cell_floor"],
                    worker_counts=tuple(g["worker_counts"]),
                ),
                cells=g["cells"],
                digest=g["digest"],
                timings=tuple(
                    GridBackendTiming(
                        backend=t["backend"],
                        wall_seconds=t["wall_seconds"],
                        cells_per_second=t["cells_per_second"],
                    )
                    for t in g["timings"]
                ),
                warm_seconds=g["warm_seconds"],
            )
            for g in data["grids"]
        )
        return GridRecord(
            schema_version=version,
            label=data["label"],
            recorded_at=data["recorded_at"],
            calibration_score=data["calibration_score"],
            available_cores=data["available_cores"],
            grids=grids,
            notes=data.get("notes", ""),
        )
    except KeyError as exc:
        raise BenchFormatError(f"grid record is missing field {exc}") from None


def load_grid_history(path: str) -> List[GridRecord]:
    """All grid records in ``path``, oldest first; ``[]`` when absent."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "records" not in data:
        raise BenchFormatError(f"{path}: expected an object with a 'records' list")
    return [grid_record_from_dict(entry) for entry in data["records"]]


def write_grid_record(path: str, record: GridRecord, append: bool = True) -> int:
    """Persist a grid record; returns the new history length."""
    history = load_grid_history(path) if append else []
    history.append(record)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "records": [grid_record_to_dict(entry) for entry in history],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(history)


def check_grid_regression(
    previous: GridRecord,
    current: GridRecord,
    threshold: float = 0.20,
    min_speedup: float = GRID_MIN_SPEEDUP,
) -> List[str]:
    """Compare two grid records; returns failures (empty = pass).

    Three gates, per grid joined by name (skipped when the spec
    changed):

    * **digest** — the per-cell summary digest must match the
      committed record exactly; the fabric's entire value proposition
      is bit-identical sharding, so a flip is a hard failure whatever
      the timings say.
    * **throughput** — per backend joined by name, cells/sec may not
      drop more than ``threshold``.  CPU-bound grids
      (``cell_floor == 0``) are calibration-normalised like the engine
      matrix; padded grids compare raw cells/sec, which is already
      machine-comparable because the cells are wall-clock-bound.
    * **overlap** — padded grids must keep their 4-vs-1-worker speedup
      at or above ``min_speedup``; a collapse means the fabric started
      serialising its workers.
    """
    failures: List[str] = []
    if previous.calibration_score <= 0 or current.calibration_score <= 0:
        raise BenchFormatError("grid record has a non-positive calibration score")
    prev_grids = {g.spec.name: g for g in previous.grids}
    for grid in current.grids:
        prev = prev_grids.get(grid.spec.name)
        if prev is None or prev.spec != grid.spec:
            continue
        if prev.digest and grid.digest and prev.digest != grid.digest:
            failures.append(
                f"{grid.spec.name}: per-cell digest flipped "
                f"({prev.digest[:12]} -> {grid.digest[:12]}) — sharded "
                "results no longer reproduce the committed grid"
            )
        normalise = grid.spec.cell_floor == 0
        prev_timings = {t.backend: t for t in prev.timings}
        for timing in grid.timings:
            before = prev_timings.get(timing.backend)
            if before is None or before.cells_per_second <= 0:
                continue
            if normalise:
                prev_rate = before.cells_per_second / previous.calibration_score
                cur_rate = timing.cells_per_second / current.calibration_score
            else:
                prev_rate = before.cells_per_second
                cur_rate = timing.cells_per_second
            drop = 1.0 - cur_rate / prev_rate
            if drop > threshold:
                unit = "normalised " if normalise else ""
                failures.append(
                    f"{grid.spec.name}/{timing.backend}: {unit}cells/sec "
                    f"dropped {drop:.1%} (limit {threshold:.0%}; "
                    f"{prev_rate:.4f} -> {cur_rate:.4f})"
                )
        if grid.spec.cell_floor > 0:
            speedup = grid.speedup(4)
            if speedup is not None and speedup < min_speedup:
                failures.append(
                    f"{grid.spec.name}: subprocess:4 speedup fell to "
                    f"{speedup:.2f}x (floor {min_speedup:.1f}x) — fabric "
                    "workers are serialising"
                )
    return failures


# -- chaos-recovery trajectory (BENCH_chaos.json) ------------------------------------
#
# The grid trajectory measures how fast the fabric runs when nothing
# goes wrong; the chaos trajectory measures how fast it *recovers*
# when everything does.  Each record replays the seeded fault
# scenarios from :mod:`repro.chaos` against a live supervised fleet
# and captures the recovery clock (first worker failure -> every cell
# published) plus the audit's counters.  Two gates follow:
#
# * **invariants** — any audit violation in the current record is a
#   hard failure regardless of history; a chaos run that loses a cell
#   or diverges from the serial digests is broken, not slow.
# * **recovery time** — per scenario joined by (name, seed, workers),
#   recovery may not regress more than the threshold (default 25%)
#   over the committed record, with a small absolute epsilon so
#   sub-second baselines are not gated on scheduler jitter.
#
# Recovery is dominated by deliberately-injected waits (lease TTL,
# restart backoff), so it is wall-clock-bound and machine-comparable
# without calibration normalisation — same reasoning as the padded
# grids above.


@dataclass(frozen=True)
class ChaosSpec:
    """One tracked chaos scenario configuration."""

    name: str
    seed: int = 2010
    workers: int = 4


@dataclass(frozen=True)
class ChaosScenarioResult:
    """One scenario's measured recovery, audit counters included."""

    spec: ChaosSpec
    cells: int
    wall_seconds: float
    recovery_seconds: float
    restarts: int
    quarantined: int
    cells_recovered: int
    takeovers: int
    swept_leases: int
    violations: Tuple[str, ...]


@dataclass(frozen=True)
class ChaosRecord:
    """One point on the chaos-recovery trajectory."""

    schema_version: int
    label: str
    recorded_at: Optional[str]
    calibration_score: float
    available_cores: int
    scenarios: Tuple[ChaosScenarioResult, ...]
    notes: str = ""


#: Recovery-time regressions beyond this fraction fail the gate.
CHAOS_THRESHOLD = 0.25

#: Absolute slack added to every recovery gate: scenario recovery is
#: seconds-scale and quantised by poll intervals and backoff steps, so
#: a purely relative gate would flap on sub-second baselines.
CHAOS_EPSILON_SECONDS = 0.75

#: The tracked scenario matrix (the ``straggler`` control injects no
#: faults, so its recovery clock never starts — nothing to track).
CHAOS_SCENARIOS: Tuple[ChaosSpec, ...] = (
    ChaosSpec(name="kill-storm", seed=2010, workers=4),
    ChaosSpec(name="heartbeat-freeze", seed=2010, workers=4),
    ChaosSpec(name="corruption", seed=2010, workers=4),
)


def measure_chaos(
    spec: ChaosSpec,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosScenarioResult:
    """Run one chaos scenario and distil its report into a result.

    Violations are *recorded*, not raised — the regression gate turns
    them into failures so a bad run still lands in the operator's
    hands as a diffable record.
    """
    from .chaos import run_scenario

    if progress is not None:
        progress(f"chaos {spec.name}: seed {spec.seed}, {spec.workers} workers")
    report = run_scenario(spec.name, seed=spec.seed, workers=spec.workers)
    return ChaosScenarioResult(
        spec=spec,
        cells=report.cells,
        wall_seconds=report.wall_seconds,
        recovery_seconds=report.recovery_seconds,
        restarts=report.restarts,
        quarantined=report.quarantined,
        cells_recovered=report.cells_recovered,
        takeovers=report.takeovers,
        swept_leases=report.swept_leases,
        violations=report.violations,
    )


def measure_chaos_matrix(
    specs: Sequence[ChaosSpec] = CHAOS_SCENARIOS,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[ChaosScenarioResult, ...]:
    """Measure every tracked scenario (matrix order preserved)."""
    return tuple(measure_chaos(spec, progress=progress) for spec in specs)


def chaos_record_to_dict(record: ChaosRecord) -> Dict:
    """Plain-JSON form (inverse of :func:`chaos_record_from_dict`)."""
    return {
        "schema_version": record.schema_version,
        "label": record.label,
        "recorded_at": record.recorded_at,
        "calibration_score": record.calibration_score,
        "available_cores": record.available_cores,
        "notes": record.notes,
        "scenarios": [
            {
                "name": s.spec.name,
                "seed": s.spec.seed,
                "workers": s.spec.workers,
                "cells": s.cells,
                "wall_seconds": s.wall_seconds,
                "recovery_seconds": s.recovery_seconds,
                "restarts": s.restarts,
                "quarantined": s.quarantined,
                "cells_recovered": s.cells_recovered,
                "takeovers": s.takeovers,
                "swept_leases": s.swept_leases,
                "violations": list(s.violations),
            }
            for s in record.scenarios
        ],
    }


def chaos_record_from_dict(data: Dict) -> ChaosRecord:
    """Parse one chaos record dict, validating the schema."""
    try:
        version = data["schema_version"]
        if version != SCHEMA_VERSION:
            raise BenchFormatError(f"unsupported bench schema version {version!r}")
        scenarios = tuple(
            ChaosScenarioResult(
                spec=ChaosSpec(
                    name=s["name"], seed=s["seed"], workers=s["workers"]
                ),
                cells=s["cells"],
                wall_seconds=s["wall_seconds"],
                recovery_seconds=s["recovery_seconds"],
                restarts=s["restarts"],
                quarantined=s["quarantined"],
                cells_recovered=s["cells_recovered"],
                takeovers=s["takeovers"],
                swept_leases=s["swept_leases"],
                violations=tuple(s["violations"]),
            )
            for s in data["scenarios"]
        )
        return ChaosRecord(
            schema_version=version,
            label=data["label"],
            recorded_at=data["recorded_at"],
            calibration_score=data["calibration_score"],
            available_cores=data["available_cores"],
            scenarios=scenarios,
            notes=data.get("notes", ""),
        )
    except KeyError as exc:
        raise BenchFormatError(f"chaos record is missing field {exc}") from None


def load_chaos_history(path: str) -> List[ChaosRecord]:
    """All chaos records in ``path``, oldest first; ``[]`` when absent."""
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "records" not in data:
        raise BenchFormatError(f"{path}: expected an object with a 'records' list")
    return [chaos_record_from_dict(entry) for entry in data["records"]]


def write_chaos_record(path: str, record: ChaosRecord, append: bool = True) -> int:
    """Persist a chaos record; returns the new history length."""
    history = load_chaos_history(path) if append else []
    history.append(record)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "records": [chaos_record_to_dict(entry) for entry in history],
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(history)


def check_chaos_regression(
    previous: ChaosRecord,
    current: ChaosRecord,
    threshold: float = CHAOS_THRESHOLD,
    epsilon_seconds: float = CHAOS_EPSILON_SECONDS,
) -> List[str]:
    """Compare two chaos records; returns failures (empty = pass).

    Invariant violations in the *current* record always fail; the
    recovery clock is gated per scenario joined on (name, seed,
    workers) at ``previous * (1 + threshold) + epsilon_seconds``.
    """
    failures: List[str] = []
    for scenario in current.scenarios:
        for violation in scenario.violations:
            failures.append(
                f"{scenario.spec.name}: invariant violated — {violation}"
            )
    prev_scenarios = {s.spec: s for s in previous.scenarios}
    for scenario in current.scenarios:
        if scenario.violations:
            continue
        prev = prev_scenarios.get(scenario.spec)
        if prev is None or prev.violations:
            continue
        allowed = prev.recovery_seconds * (1.0 + threshold) + epsilon_seconds
        if scenario.recovery_seconds > allowed:
            failures.append(
                f"{scenario.spec.name}: recovery took "
                f"{scenario.recovery_seconds:.2f}s, over the "
                f"{allowed:.2f}s limit ({prev.recovery_seconds:.2f}s "
                f"baseline + {threshold:.0%} + {epsilon_seconds:.2f}s slack)"
            )
    return failures
