"""The stable top-level facade.

Two functions cover the two things users do with this package — run
one simulation, run a grid of them — with scenario-first signatures
and optional typed instrumentation::

    import repro
    from repro.telemetry import Instrumentation, MetricsRegistry

    scenario = repro.busy_week(scale=0.1)
    registry = MetricsRegistry()
    result = repro.simulate(
        scenario,
        "ResSusUtil",
        instrumentation=Instrumentation(metrics=registry),
    )

Both are re-exported from :mod:`repro`; the lower-level
:func:`~repro.simulator.simulation.run_simulation` (trace + cluster
signature) and :class:`~repro.experiments.runner.ExperimentRunner`
remain available for callers that need the extra control.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence, Union

from .core.policy import ReschedulingPolicy
from .errors import ConfigurationError
from .experiments.runner import ExperimentCell, ExperimentRunner
from .policies import canonical_spec, policy_from_spec
from .schedulers.initial import InitialScheduler, initial_scheduler_from_name
from .simulator.config import SimulationConfig
from .simulator.engine import SimulationEngine
from .simulator.results import SimulationResult
from .telemetry.instrumentation import Instrumentation
from .workload.scenarios import Scenario

__all__ = ["simulate", "run_experiment"]


def _resolve_policy(
    policy: Union[ReschedulingPolicy, str, None], scenario: Scenario
) -> Optional[ReschedulingPolicy]:
    if isinstance(policy, str):
        return policy_from_spec(
            policy, defaults={"wait_threshold": scenario.wait_threshold}
        )
    return policy


def _resolve_scheduler(
    scheduler: Union[InitialScheduler, str, None],
) -> Optional[InitialScheduler]:
    if isinstance(scheduler, str):
        return initial_scheduler_from_name(scheduler)
    return scheduler


def simulate(
    scenario: Scenario,
    policy: Union[ReschedulingPolicy, str, None] = None,
    *,
    initial_scheduler: Union[InitialScheduler, str, None] = None,
    config: Optional[SimulationConfig] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> SimulationResult:
    """Simulate one scenario under one policy.

    Args:
        scenario: a :class:`~repro.workload.scenarios.Scenario` (e.g.
            from :func:`repro.busy_week` or :func:`repro.smoke`).
        policy: a rescheduling policy instance, one of the paper's
            policy names (e.g. ``"ResSusUtil"`` — string thresholds
            use the scenario's ``wait_threshold``), or ``None`` for the
            *NoRes* baseline.
        initial_scheduler: VPM initial scheduler instance or CLI name;
            defaults to NetBatch's round-robin.
        config: engine knobs; defaults to
            ``SimulationConfig(strict=False)`` (rejections recorded,
            not raised), the setting every experiment in this
            repository uses.
        instrumentation: optional typed
            :class:`~repro.telemetry.Instrumentation`.  When given it
            *replaces* the config's instrumentation (the common case is
            a default config).  Telemetry is strictly read-only — the
            returned result is bit-identical with or without it.

    Returns:
        The :class:`~repro.simulator.results.SimulationResult`.
    """
    config = config or SimulationConfig(strict=False)
    if instrumentation is not None:
        if config.instrumentation.enabled:
            raise ConfigurationError(
                "pass instrumentation either via the config or via the "
                "instrumentation keyword, not both"
            )
        config = replace(config, instrumentation=instrumentation)
    engine = SimulationEngine(
        scenario.trace,
        scenario.cluster,
        policy=_resolve_policy(policy, scenario),
        initial_scheduler=_resolve_scheduler(initial_scheduler),
        config=config,
    )
    return engine.run()


def run_experiment(
    scenarios: Union[Scenario, Sequence[Scenario]],
    policies: Sequence[Union[Callable[[], ReschedulingPolicy], str]],
    *,
    scheduler_factories: Optional[Sequence[Callable[[], InitialScheduler]]] = None,
    config: Optional[SimulationConfig] = None,
    n_workers: int = 1,
    cache_dir: Optional[object] = None,
    use_cache: Optional[bool] = None,
    keep_results: bool = False,
    progress: Optional[Callable] = None,
) -> List[ExperimentCell]:
    """Run a (scenario x policy x scheduler) grid and return its cells.

    A convenience wrapper over
    :class:`~repro.experiments.runner.ExperimentRunner` that also
    accepts policy *names*: each string entry becomes a factory built
    with the first scenario's ``wait_threshold``.

    Args:
        scenarios: one scenario or a sequence of them.
        policies: policy factories (zero-arg callables) and/or paper
            policy names.
        scheduler_factories: initial-scheduler factories; defaults to
            round-robin only.
        config: simulation config shared by every cell.
        n_workers: worker processes; 1 runs serially (results are
            bit-identical either way).
        cache_dir: on-disk result cache directory (``$REPRO_CACHE_DIR``
            when unset); ``None`` with no override disables caching.
        use_cache: force caching on/off regardless of ``cache_dir``.
        keep_results: retain each cell's full simulation result.
        progress: optional callable invoked with each completed
            :class:`~repro.experiments.parallel.CellOutcome` (e.g. a
            :class:`~repro.telemetry.ProgressReporter`).

    Returns:
        One :class:`~repro.experiments.runner.ExperimentCell` per run.
    """
    if isinstance(scenarios, Scenario):
        scenarios = [scenarios]
    if not scenarios:
        raise ConfigurationError("run_experiment needs at least one scenario")
    wait_threshold = scenarios[0].wait_threshold

    def _named_factory(name: str) -> Callable[[], ReschedulingPolicy]:
        def factory() -> ReschedulingPolicy:
            return policy_from_spec(name, defaults={"wait_threshold": wait_threshold})

        factory.__name__ = canonical_spec(name)
        return factory

    policy_factories = [
        _named_factory(entry) if isinstance(entry, str) else entry
        for entry in policies
    ]
    runner = ExperimentRunner(
        config=config,
        keep_results=keep_results,
        n_workers=n_workers,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
    )
    return runner.run(
        scenarios, policy_factories, scheduler_factories=scheduler_factories
    )
