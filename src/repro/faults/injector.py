"""The engine-side fault machinery: seeded draws and fault accounting.

:class:`FaultInjector` is created by the engine only when the run's
:class:`~repro.faults.config.FaultConfig` is enabled.  It owns

* the *named child streams* every fault draw comes from — one stream
  per machine (``faults/machine/<pool>/<id>``) for the crash/recover
  renewal process, one for transient job failures, one for retry
  jitter — so fault randomness never perturbs the decision stream the
  policies use, and a zero-fault run draws exactly what it drew before
  this subsystem existed;
* the fault counters (crashes, kills, retries, lost work) that become
  the run's :class:`FaultStats` and, when telemetry is enabled, the
  ``repro_fault_*`` metric families.

The injector never mutates simulator state itself; the engine calls it
for draws and accounting and performs the state transitions, keeping
the orchestration in one place (see ``engine.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import UnknownPoolError
from ..workload.distributions import RandomStreams
from .config import FaultConfig

__all__ = ["FaultInjector", "FaultStats"]


@dataclass(frozen=True)
class FaultStats:
    """What the fault layer did to one run (all counters zero-fault = 0).

    Attributes:
        machine_crashes: machine-down events fired.
        machine_recoveries: machine-up events fired.
        pool_outages: pool blackout windows that started.
        attempts_killed: running/suspended attempts lost to a host death
            or a pool outage (each is requeued, not permanently failed).
        waiting_drained: waiting jobs drained out of a blacked-out
            pool's queue (requeued elsewhere).
        requeues_deferred: resubmissions postponed because every
            candidate pool was dark at that moment.
        transient_failures: job execution segments killed by the
            transient-failure roll.
        retries_scheduled: retries scheduled after transient failures.
        permanent_failures: jobs that exhausted their retry budget.
        lost_work_minutes: reference-speed minutes of completed progress
            thrown away by fault kills and transient failures.
        goodput_minutes: reference-speed minutes of demand actually
            completed (sum of finished jobs' runtimes).
    """

    machine_crashes: int = 0
    machine_recoveries: int = 0
    pool_outages: int = 0
    attempts_killed: int = 0
    waiting_drained: int = 0
    requeues_deferred: int = 0
    transient_failures: int = 0
    retries_scheduled: int = 0
    permanent_failures: int = 0
    lost_work_minutes: float = 0.0
    goodput_minutes: float = 0.0

    @property
    def wall_work_minutes(self) -> float:
        """Total machine work spent: completed demand plus lost work."""
        return self.goodput_minutes + self.lost_work_minutes

    @property
    def goodput_fraction(self) -> float:
        """Fraction of spent work that became completed demand."""
        total = self.wall_work_minutes
        return self.goodput_minutes / total if total else 1.0

    def render(self) -> str:
        """One-paragraph human rendering for the CLI."""
        return (
            f"faults: {self.machine_crashes} machine crash(es), "
            f"{self.pool_outages} pool outage(s), "
            f"{self.attempts_killed} attempt(s) killed, "
            f"{self.transient_failures} transient failure(s), "
            f"{self.retries_scheduled} retr(ies), "
            f"{self.permanent_failures} permanent failure(s); "
            f"lost work {self.lost_work_minutes:.1f} min, "
            f"goodput {self.goodput_minutes:.1f} min "
            f"({100.0 * self.goodput_fraction:.1f}% of wall work)"
        )


class FaultInjector:
    """Seeded fault draws and counters for one engine run."""

    def __init__(
        self,
        config: FaultConfig,
        streams: RandomStreams,
        telemetry=None,
    ) -> None:
        self.config = config
        self._streams = streams
        self._jobs_rng: random.Random = streams.stream("faults/jobs")
        self._retry_rng: random.Random = streams.stream("faults/retry")
        self.machine_crashes = 0
        self.machine_recoveries = 0
        self.pool_outages = 0
        self.attempts_killed = 0
        self.waiting_drained = 0
        self.requeues_deferred = 0
        self.transient_failures = 0
        self.retries_scheduled = 0
        self.permanent_failures = 0
        self.lost_work_minutes = 0.0
        self._metrics = None
        if telemetry is not None:
            registry = telemetry.registry
            self._metrics = {
                "crashes": registry.counter(
                    "repro_fault_machine_crashes_total", "Machine-down events"
                ),
                "recoveries": registry.counter(
                    "repro_fault_machine_recoveries_total", "Machine-up events"
                ),
                "outages": registry.counter(
                    "repro_fault_pool_outages_total",
                    "Pool blackout windows started",
                    labelnames=("pool",),
                ),
                "kills": registry.counter(
                    "repro_fault_attempt_kills_total",
                    "Job attempts killed by faults",
                    labelnames=("cause",),
                ),
                "transient": registry.counter(
                    "repro_fault_transient_failures_total",
                    "Execution segments killed by transient failures",
                ),
                "retries": registry.counter(
                    "repro_fault_retries_total", "Retries scheduled"
                ),
                "permanent": registry.counter(
                    "repro_fault_permanent_failures_total",
                    "Jobs that exhausted their retry budget",
                ),
                "lost": registry.counter(
                    "repro_fault_lost_work_minutes_total",
                    "Reference-speed minutes of progress lost to faults",
                ),
            }

    # -- scheduling -----------------------------------------------------------------

    def schedule_initial(self, events, pool_order: Sequence[str], pools) -> None:
        """Push the first crash per machine and every outage window.

        Must run after the trace is bulk-loaded (bulk load requires an
        empty queue).  Raises :class:`UnknownPoolError` for an outage
        naming a pool the cluster does not have.
        """
        from ..simulator.events import EVENT_MACHINE_CRASH, EVENT_POOL_DOWN, EVENT_POOL_UP

        if self.config.machine_churn is not None:
            for pool_id in pool_order:
                for machine in pools[pool_id].machines:
                    events.push(
                        self.draw_ttf(pool_id, machine.machine_id),
                        EVENT_MACHINE_CRASH,
                        (pool_id, machine),
                    )
        for outage in self.config.pool_outages:
            if outage.pool_id not in pools:
                raise UnknownPoolError(outage.pool_id)
            events.push(outage.start_minute, EVENT_POOL_DOWN, outage.pool_id)
            events.push(outage.end_minute, EVENT_POOL_UP, outage.pool_id)

    # -- draws ----------------------------------------------------------------------

    def _machine_rng(self, pool_id: str, machine_id: str) -> random.Random:
        return self._streams.stream(f"faults/machine/{pool_id}/{machine_id}")

    def draw_ttf(self, pool_id: str, machine_id: str) -> float:
        """Minutes until this machine's next crash."""
        return self.config.machine_churn.mtbf.sample(
            self._machine_rng(pool_id, machine_id)
        )

    def draw_ttr(self, pool_id: str, machine_id: str) -> float:
        """Minutes this machine stays down."""
        return self.config.machine_churn.mttr.sample(
            self._machine_rng(pool_id, machine_id)
        )

    def roll_segment_failure(self, duration: float) -> Optional[float]:
        """Whether (and when) this execution segment dies.

        Returns the failure offset into the segment, or ``None`` for a
        clean run to completion.  The roll costs one draw on the
        job-failure stream (two when it fails), independent of the
        decision stream.
        """
        p = self.config.job_failure_probability
        if p <= 0.0 or duration <= 0.0:
            return None
        if self._jobs_rng.random() >= p:
            return None
        return self._jobs_rng.random() * duration

    def retry_delay(self, failure_count: int) -> float:
        """Backoff (with deterministic jitter) after failure ``failure_count``."""
        return self.config.retry.delay_for(failure_count, self._retry_rng)

    # -- accounting ------------------------------------------------------------------

    def note_machine_crash(self) -> None:
        self.machine_crashes += 1
        if self._metrics is not None:
            self._metrics["crashes"].inc()

    def note_machine_recovery(self) -> None:
        self.machine_recoveries += 1
        if self._metrics is not None:
            self._metrics["recoveries"].inc()

    def note_pool_down(self, pool_id: str) -> None:
        self.pool_outages += 1
        if self._metrics is not None:
            self._metrics["outages"].labels(pool_id).inc()

    def note_kill(self, cause: str, lost_minutes: float) -> None:
        """One running/suspended attempt killed by ``cause`` (machine|outage)."""
        self.attempts_killed += 1
        self.lost_work_minutes += lost_minutes
        if self._metrics is not None:
            self._metrics["kills"].labels(cause).inc()
            self._metrics["lost"].inc(lost_minutes)

    def note_drained(self) -> None:
        """One waiting job drained out of a blacked-out pool."""
        self.waiting_drained += 1

    def note_deferred(self) -> None:
        """One resubmission postponed because every candidate pool was dark."""
        self.requeues_deferred += 1

    def note_transient_failure(self, lost_minutes: float) -> None:
        self.transient_failures += 1
        self.lost_work_minutes += lost_minutes
        if self._metrics is not None:
            self._metrics["transient"].inc()
            self._metrics["lost"].inc(lost_minutes)

    def note_retry(self) -> None:
        self.retries_scheduled += 1
        if self._metrics is not None:
            self._metrics["retries"].inc()

    def note_permanent_failure(self) -> None:
        self.permanent_failures += 1
        if self._metrics is not None:
            self._metrics["permanent"].inc()

    # -- end of run ------------------------------------------------------------------

    def finalize(self, records) -> FaultStats:
        """Freeze the counters into the run's :class:`FaultStats`."""
        goodput = sum(
            r.runtime_minutes
            for r in records
            if not r.rejected and r.finish_minute is not None
        )
        return self.finalize_with_goodput(goodput)

    def finalize_with_goodput(self, goodput: float) -> FaultStats:
        """Freeze the counters around an externally accumulated goodput.

        The streaming-results path (:class:`~repro.simulator.online.OnlineResults`)
        accumulates completed demand record-by-record instead of keeping
        the records, and hands the finished sum in here.  Both paths add
        the same values in the same (completion) order, so the stats are
        bit-identical.
        """
        return FaultStats(
            machine_crashes=self.machine_crashes,
            machine_recoveries=self.machine_recoveries,
            pool_outages=self.pool_outages,
            attempts_killed=self.attempts_killed,
            waiting_drained=self.waiting_drained,
            requeues_deferred=self.requeues_deferred,
            transient_failures=self.transient_failures,
            retries_scheduled=self.retries_scheduled,
            permanent_failures=self.permanent_failures,
            lost_work_minutes=self.lost_work_minutes,
            goodput_minutes=goodput,
        )
