"""Fault-model configuration, validated like every other config object.

All dataclasses here are frozen and built from plain values plus
:class:`~repro.workload.distributions.Sampler` instances, so an enabled
fault model fingerprints cleanly into the experiment result cache and
pickles into pool workers unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..workload.distributions import Exponential, Sampler

__all__ = [
    "RetryPolicy",
    "MachineChurn",
    "PoolOutage",
    "FaultConfig",
    "NO_FAULTS",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How transient job failures are retried before giving up.

    Attributes:
        max_attempts: failed attempts a job may accumulate before it is
            recorded as a permanent failure (the first failure is
            attempt 1; ``max_attempts=3`` allows three failed attempts).
        backoff_minutes: delay before the first retry.
        backoff_multiplier: growth factor per subsequent retry
            (exponential backoff).
        max_backoff_minutes: ceiling on any single retry delay.
        jitter_fraction: symmetric multiplicative jitter applied to each
            delay, drawn deterministically from the engine's seeded
            retry stream: a delay ``d`` becomes uniform in
            ``[d*(1-j), d*(1+j)]``.  0 disables jitter.
    """

    max_attempts: int = 3
    backoff_minutes: float = 5.0
    backoff_multiplier: float = 2.0
    max_backoff_minutes: float = 240.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_minutes <= 0:
            raise ConfigurationError(
                f"retry backoff_minutes must be > 0, got {self.backoff_minutes}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"retry backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.max_backoff_minutes < self.backoff_minutes:
            raise ConfigurationError(
                f"retry max_backoff_minutes ({self.max_backoff_minutes}) must be "
                f">= backoff_minutes ({self.backoff_minutes})"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError(
                f"retry jitter_fraction must be in [0, 1), got {self.jitter_fraction}"
            )

    def delay_for(self, failure_count: int, rng: random.Random) -> float:
        """Minutes to wait before the retry after failure ``failure_count``."""
        if failure_count < 1:
            raise ConfigurationError(
                f"delay_for needs failure_count >= 1, got {failure_count}"
            )
        delay = min(
            self.backoff_minutes * self.backoff_multiplier ** (failure_count - 1),
            self.max_backoff_minutes,
        )
        if self.jitter_fraction:
            delay *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return delay


@dataclass(frozen=True)
class MachineChurn:
    """Per-machine crash/recover renewal process.

    Every machine alternates up/down phases: time-to-failure drawn from
    ``mtbf``, time-to-repair from ``mttr``, each machine on its own
    named child stream so churn is independent of every other random
    decision in the run.
    """

    mtbf: Sampler
    mttr: Sampler

    def __post_init__(self) -> None:
        for name, sampler in (("mtbf", self.mtbf), ("mttr", self.mttr)):
            if not isinstance(sampler, Sampler):
                raise ConfigurationError(
                    f"machine churn {name} must be a Sampler, "
                    f"got {type(sampler).__name__}"
                )
            if sampler.mean() <= 0:
                raise ConfigurationError(
                    f"machine churn {name} must have a positive mean"
                )


@dataclass(frozen=True)
class PoolOutage:
    """One scheduled whole-pool blackout window.

    During ``[start_minute, start_minute + duration_minutes)`` the pool
    accepts no work: running and suspended jobs are killed, waiting jobs
    are drained, and the virtual pool managers route around the pool.
    """

    pool_id: str
    start_minute: float
    duration_minutes: float

    def __post_init__(self) -> None:
        if not self.pool_id:
            raise ConfigurationError("pool outage needs a pool_id")
        if self.start_minute < 0:
            raise ConfigurationError(
                f"pool outage start_minute must be >= 0, got {self.start_minute}"
            )
        if self.duration_minutes <= 0:
            raise ConfigurationError(
                f"pool outage duration_minutes must be > 0, got {self.duration_minutes}"
            )

    @property
    def end_minute(self) -> float:
        """First minute the pool is back up."""
        return self.start_minute + self.duration_minutes


@dataclass(frozen=True)
class FaultConfig:
    """The complete fault model for one simulation run.

    The default instance (every field at its default) is the disabled
    model :data:`NO_FAULTS`; the engine then takes the exact pre-fault
    code paths and the config is excluded from cache keys, keeping
    zero-fault outputs bit-identical to a build without this subsystem.

    Attributes:
        machine_churn: optional crash/recover process applied to every
            machine in the cluster.
        pool_outages: scheduled whole-pool blackout windows (may
            overlap; a pool is down while any window covers it).
        job_failure_probability: probability that one *execution
            segment* (a start or resume, up to its natural finish) dies
            to a transient fault; rolled once per segment.
        retry: what happens after a transient failure.
        requeue_delay_minutes: how long an orphaned job waits before
            re-submitting when every candidate pool is dark.
    """

    machine_churn: Optional[MachineChurn] = None
    pool_outages: Tuple[PoolOutage, ...] = ()
    job_failure_probability: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    requeue_delay_minutes: float = 1.0

    def __post_init__(self) -> None:
        if self.machine_churn is not None and not isinstance(
            self.machine_churn, MachineChurn
        ):
            raise ConfigurationError(
                "machine_churn must be a MachineChurn instance, "
                f"got {type(self.machine_churn).__name__}"
            )
        object.__setattr__(self, "pool_outages", tuple(self.pool_outages))
        for outage in self.pool_outages:
            if not isinstance(outage, PoolOutage):
                raise ConfigurationError(
                    f"pool_outages entries must be PoolOutage, got {type(outage).__name__}"
                )
        if not 0.0 <= self.job_failure_probability <= 1.0:
            raise ConfigurationError(
                "job_failure_probability must be in [0, 1], "
                f"got {self.job_failure_probability}"
            )
        if not isinstance(self.retry, RetryPolicy):
            raise ConfigurationError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        if self.requeue_delay_minutes <= 0:
            raise ConfigurationError(
                f"requeue_delay_minutes must be > 0, got {self.requeue_delay_minutes}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault source is active."""
        return (
            self.machine_churn is not None
            or bool(self.pool_outages)
            or self.job_failure_probability > 0.0
        )

    @classmethod
    def with_exponential_churn(
        cls,
        mtbf_minutes: float,
        mttr_minutes: float,
        **kwargs,
    ) -> "FaultConfig":
        """Convenience constructor: exponential MTBF/MTTR machine churn."""
        return cls(
            machine_churn=MachineChurn(
                mtbf=Exponential(mtbf_minutes), mttr=Exponential(mttr_minutes)
            ),
            **kwargs,
        )


#: The disabled fault model — the default for every simulation.
NO_FAULTS = FaultConfig()
