"""Deterministic fault injection for the NetBatch simulator.

The paper studies rescheduling on a platform where the hosts holding
suspended jobs are exactly the resource at risk, yet the baseline
simulator models a world without failures.  This package adds that
missing dimension as an opt-in, seed-reproducible layer:

* **machine churn** — per-machine crash/recover renewal processes with
  configurable MTBF/MTTR distributions (:class:`MachineChurn`);
* **pool outages** — whole-pool blackout windows the virtual pool
  managers must route around (:class:`PoolOutage`);
* **transient job failures** — per-execution-segment failure rolls with
  a retry policy (max attempts, exponential backoff, deterministic
  jitter) and permanent give-up (:class:`RetryPolicy`).

Faults default **off** (:data:`NO_FAULTS`): a config without faults
runs the exact pre-fault code paths and produces bit-identical results,
cache keys and telemetry.  With faults enabled, every failure time is
drawn from named child streams of the engine's seeded
:class:`~repro.workload.distributions.RandomStreams`, so the same seed
produces the same crashes, the same kills and the same retries — on
one worker or many.  See ``docs/robustness.md``.
"""

from .config import (
    NO_FAULTS,
    FaultConfig,
    MachineChurn,
    PoolOutage,
    RetryPolicy,
)
from .injector import FaultInjector, FaultStats

__all__ = [
    "NO_FAULTS",
    "FaultConfig",
    "MachineChurn",
    "PoolOutage",
    "RetryPolicy",
    "FaultInjector",
    "FaultStats",
]
