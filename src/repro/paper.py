"""The paper's published numbers, as structured reference data.

Machine-readable copies of every value the paper reports in its tables
and prose, so comparisons (EXPERIMENTS.md, the validation module, user
notebooks) can cite the original without transcribing it again.  All
times are minutes; rates are fractions.

Source: Zhang et al., "On the Feasibility of Dynamic Rescheduling on
the Intel Distributed Computing Platform", Middleware 2010 industrial
track, Tables 1-5 and Sections 2.2/3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = [
    "PaperRow",
    "PAPER_TABLES",
    "PAPER_FIGURE2",
    "PAPER_EVALUATION_SETUP",
    "paper_row",
]


@dataclass(frozen=True)
class PaperRow:
    """One strategy row from one of the paper's tables.

    Attributes mirror the table columns: suspend rate (fraction),
    average completion time over suspended jobs and over all jobs,
    average suspend time, average wasted completion time.
    """

    suspend_rate: float
    avg_ct_suspended: float
    avg_ct_all: float
    avg_st: float
    avg_wct: float


#: table number -> strategy name -> the paper's row.
PAPER_TABLES: Dict[int, Mapping[str, PaperRow]] = {
    1: {
        "NoRes": PaperRow(0.0114, 2498.7, 569.8, 1189.1, 31.0),
        "ResSusUtil": PaperRow(0.0156, 1265.4, 560.0, 82.2, 20.8),
        "ResSusRand": PaperRow(0.0152, 7580.7, 638.7, 80.7, 91.9),
    },
    2: {
        "NoRes": PaperRow(0.0126, 5846.1, 988.7, 4402.4, 450.1),
        "ResSusUtil": PaperRow(0.0183, 1475.1, 962.2, 86.2, 423.9),
        "ResSusRand": PaperRow(0.0160, 6485.0, 1180.0, 73.2, 636.3),
    },
    3: {
        "NoRes": PaperRow(0.0150, 5936.0, 994.2, 4916.0, 456.6),
        "ResSusUtil": PaperRow(0.0172, 1466.9, 946.2, 84.5, 407.6),
        "ResSusRand": PaperRow(0.0162, 7979.9, 1229.9, 72.3, 686.8),
    },
    4: {
        "NoRes": PaperRow(0.0126, 5846.1, 988.7, 4402.4, 450.1),
        "ResSusWaitUtil": PaperRow(0.0146, 1224.3, 951.4, 72.7, 414.2),
        "ResSusWaitRand": PaperRow(0.0150, 1417.0, 954.7, 62.3, 417.6),
    },
    5: {
        "NoRes": PaperRow(0.0150, 5936.0, 994.2, 4916.0, 456.6),
        "ResSusWaitUtil": PaperRow(0.0174, 1467.2, 937.9, 84.5, 402.0),
        "ResSusWaitRand": PaperRow(0.0171, 1603.1, 935.7, 100.6, 399.7),
    },
}

#: Figure 2's quoted statistics of the suspension-time distribution.
PAPER_FIGURE2: Dict[str, float] = {
    "median_minutes": 437.0,
    "mean_minutes": 905.0,
    # "20% of all jobs are suspended for more than 1100 minutes"
    "p80_minutes": 1100.0,
}

#: Evaluation setup constants from Section 3.
PAPER_EVALUATION_SETUP: Dict[str, float] = {
    "pools": 20,
    "busy_week_jobs": 248_000,
    "busy_week_start_minute": 76_000,
    "busy_week_end_minute": 86_080,
    "wait_threshold_minutes": 30.0,
    "trace_span_minutes": 500_000,
    "mean_utilization_fraction": 0.40,
    "high_suspension_rate": 0.14,
}


def paper_row(table: int, strategy: str) -> Optional[PaperRow]:
    """The paper's row for (table, strategy), or ``None`` if absent."""
    return PAPER_TABLES.get(table, {}).get(strategy)
