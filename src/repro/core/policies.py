"""The paper's rescheduling strategies, plus extensions.

The five strategies the paper evaluates map onto two composable policy
classes parameterised by a :class:`~repro.core.selectors.PoolSelector`:

========================  ==============================================
Paper name                Construction
========================  ==============================================
``NoRes``                 :class:`NoRescheduling`
``ResSusUtil``            :class:`RescheduleSuspended` + lowest-utilization
``ResSusRand``            :class:`RescheduleSuspended` + random
``ResSusWaitUtil``        :class:`RescheduleSuspendedAndWaiting` + lowest-utilization
``ResSusWaitRand``        :class:`RescheduleSuspendedAndWaiting` + random
========================  ==============================================

The experiment runner and the CLI address these (and every other
registered family) through spec strings via
:mod:`repro.policies`; :func:`policy_from_name` remains as a
deprecated shim over the five paper names.  Two extensions go beyond
the paper: :class:`DuplicateSuspended` (the future-work
job-duplication technique) and :class:`RescheduleWaitingOnly` (an
ablation isolating the waiting-job mechanism).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError, UnknownPolicyError
from .context import SystemView
from .decisions import STAY, Decision, duplicate, migrate, restart
from .policy import ReschedulingPolicy
from .selectors import LowestUtilizationSelector, PoolSelector, RandomSelector

__all__ = [
    "NoRescheduling",
    "RescheduleSuspended",
    "RescheduleSuspendedAndWaiting",
    "RescheduleWaitingOnly",
    "DuplicateSuspended",
    "MigrateSuspended",
    "no_res",
    "res_sus_util",
    "res_sus_rand",
    "res_sus_wait_util",
    "res_sus_wait_rand",
    "policy_from_name",
    "PAPER_POLICY_NAMES",
    "DEFAULT_WAIT_THRESHOLD",
]

#: The paper's waiting threshold: 30 minutes, "about twice the expected
#: average waiting time in the original system" (Section 3.3).
DEFAULT_WAIT_THRESHOLD = 30.0


class NoRescheduling(ReschedulingPolicy):
    """The baseline: suspended jobs wait on their host, queues are FIFO."""

    name = "NoRes"


class RescheduleSuspended(ReschedulingPolicy):
    """Restart suspended jobs at an alternate pool (Section 3.2).

    "Whenever a currently running job on a machine is suspended by a
    newly arrived job with higher priority, it could be restarted (from
    the beginning) at a different pool."  The alternate pool comes from
    the selector; if the selector returns ``None`` (e.g. the guarded
    utilization selector found nothing less loaded) the job stays
    suspended in place.
    """

    def __init__(self, selector: PoolSelector, name: Optional[str] = None) -> None:
        self._selector = selector
        if name:
            self.name = name
        else:
            self.name = f"ResSus[{type(selector).__name__}]"

    @property
    def selector(self) -> PoolSelector:
        """The alternate-pool selector in use."""
        return self._selector

    def on_suspend(self, job, view: SystemView) -> Decision:
        target = self._selector.select(view.candidate_pools(job), job.pool_id, view)
        if target is None:
            return STAY
        return restart(target)


class RescheduleSuspendedAndWaiting(RescheduleSuspended):
    """Additionally restart jobs stalled in wait queues (Section 3.3).

    "We apply the rescheduling approaches to reschedule not only
    suspended jobs but also jobs waiting in a queue for longer than a
    specific threshold."  A job that moves and stalls again gets another
    chance each time the threshold elapses — the mechanism behind the
    paper's observation that even random selection works well here.
    """

    def __init__(
        self,
        selector: PoolSelector,
        wait_threshold: float = DEFAULT_WAIT_THRESHOLD,
        name: Optional[str] = None,
    ) -> None:
        if wait_threshold <= 0:
            raise ConfigurationError(
                f"wait_threshold must be > 0, got {wait_threshold}"
            )
        super().__init__(selector, name or f"ResSusWait[{type(selector).__name__}]")
        self._wait_threshold = wait_threshold

    @property
    def wait_threshold(self) -> Optional[float]:
        return self._wait_threshold

    def on_wait_timeout(self, job, view: SystemView) -> Decision:
        target = self._selector.select(view.candidate_pools(job), job.pool_id, view)
        if target is None:
            return STAY
        return restart(target)


class RescheduleWaitingOnly(ReschedulingPolicy):
    """Ablation: move stalled waiting jobs but leave suspended jobs alone.

    Not evaluated in the paper; isolates how much of the combined
    scheme's benefit comes from the waiting-job mechanism.
    """

    def __init__(
        self, selector: PoolSelector, wait_threshold: float = DEFAULT_WAIT_THRESHOLD
    ) -> None:
        if wait_threshold <= 0:
            raise ConfigurationError(f"wait_threshold must be > 0, got {wait_threshold}")
        self._selector = selector
        self._wait_threshold = wait_threshold
        self.name = f"ResWaitOnly[{type(selector).__name__}]"

    @property
    def wait_threshold(self) -> Optional[float]:
        return self._wait_threshold

    def on_wait_timeout(self, job, view: SystemView) -> Decision:
        target = self._selector.select(view.candidate_pools(job), job.pool_id, view)
        if target is None:
            return STAY
        return restart(target)


class MigrateSuspended(ReschedulingPolicy):
    """Comparator: checkpoint-migrate suspended jobs instead of restarting.

    Section 2.3 asks why migration (as in Condor) or VM migration (as
    in VMware) is not used by NetBatch and answers with the 10-20%
    virtualisation overhead.  This policy makes that comparison
    measurable: a suspended job moves to the selector's pool *keeping
    its progress*, paying the migration delay/dilation configured on
    the simulation (:class:`~repro.simulator.config.SimulationConfig`).
    """

    def __init__(self, selector: PoolSelector, name: Optional[str] = None) -> None:
        self._selector = selector
        self.name = name or f"MigSus[{type(selector).__name__}]"

    @property
    def selector(self) -> PoolSelector:
        """The alternate-pool selector in use."""
        return self._selector

    def on_suspend(self, job, view: SystemView) -> Decision:
        target = self._selector.select(view.candidate_pools(job), job.pool_id, view)
        if target is None:
            return STAY
        return migrate(target)


class DuplicateSuspended(ReschedulingPolicy):
    """Future-work extension: duplicate suspended jobs instead of moving.

    The paper's conclusion mentions "more sophisticated rescheduling
    strategies that combine job duplication techniques and inter-site
    rescheduling".  Here a suspended job keeps its (possibly resuming)
    original attempt *and* launches a second attempt at the selected
    pool; whichever finishes first wins and the loser's progress counts
    as rescheduling waste.  Compared with restart-based rescheduling,
    duplication can never extend a job's completion time — at the price
    of extra resource consumption.
    """

    def __init__(self, selector: PoolSelector, name: Optional[str] = None) -> None:
        self._selector = selector
        self.name = name or f"DupSus[{type(selector).__name__}]"

    def on_suspend(self, job, view: SystemView) -> Decision:
        target = self._selector.select(view.candidate_pools(job), job.pool_id, view)
        if target is None:
            return STAY
        return duplicate(target)


# -- paper-name factories ----------------------------------------------------


def no_res() -> NoRescheduling:
    """The paper's *NoRes* baseline."""
    return NoRescheduling()


def res_sus_util() -> RescheduleSuspended:
    """The paper's *ResSusUtil*: restart suspended jobs at the least-utilized pool."""
    return RescheduleSuspended(LowestUtilizationSelector(), name="ResSusUtil")


def res_sus_rand() -> RescheduleSuspended:
    """The paper's *ResSusRand*: restart suspended jobs at a random pool."""
    return RescheduleSuspended(RandomSelector(), name="ResSusRand")


def res_sus_wait_util(
    wait_threshold: float = DEFAULT_WAIT_THRESHOLD,
) -> RescheduleSuspendedAndWaiting:
    """The paper's *ResSusWaitUtil*: also move jobs waiting past the threshold."""
    return RescheduleSuspendedAndWaiting(
        LowestUtilizationSelector(), wait_threshold, name="ResSusWaitUtil"
    )


def res_sus_wait_rand(
    wait_threshold: float = DEFAULT_WAIT_THRESHOLD,
) -> RescheduleSuspendedAndWaiting:
    """The paper's *ResSusWaitRand*: random selection for both hooks."""
    return RescheduleSuspendedAndWaiting(
        RandomSelector(), wait_threshold, name="ResSusWaitRand"
    )


_FACTORIES: Dict[str, Callable[..., ReschedulingPolicy]] = {
    "NoRes": lambda threshold: no_res(),
    "ResSusUtil": lambda threshold: res_sus_util(),
    "ResSusRand": lambda threshold: res_sus_rand(),
    "ResSusWaitUtil": lambda threshold: res_sus_wait_util(threshold),
    "ResSusWaitRand": lambda threshold: res_sus_wait_rand(threshold),
}

#: The strategy names used throughout the paper's tables.
PAPER_POLICY_NAMES: Tuple[str, ...] = tuple(_FACTORIES)


def policy_from_name(
    name: str, wait_threshold: float = DEFAULT_WAIT_THRESHOLD
) -> ReschedulingPolicy:
    """Build one of the paper's strategies by its table name.

    .. deprecated::
        Use :func:`repro.policies.policy_from_spec`, which accepts the
        same five names plus every registered policy family and spec
        parameters (``"dfrs:share=0.5"``).

    Args:
        name: one of :data:`PAPER_POLICY_NAMES` (case-sensitive).
        wait_threshold: threshold for the ``...Wait...`` strategies;
            ignored by the others.
    """
    import warnings

    warnings.warn(
        "policy_from_name is deprecated; use repro.policy_from_spec "
        "(same paper names, plus registered families and parameters)",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownPolicyError(name, known=PAPER_POLICY_NAMES) from None
    return factory(wait_threshold)
