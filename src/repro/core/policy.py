"""The rescheduling-policy interface.

A :class:`ReschedulingPolicy` is consulted by the simulation engine at
exactly two moments in a job's life:

* :meth:`~ReschedulingPolicy.on_suspend` — the job has just been
  preempted by a higher-priority job (it is now suspended on its host);
* :meth:`~ReschedulingPolicy.on_wait_timeout` — the job has been
  sitting in a pool's wait queue for ``wait_threshold`` minutes.

Both hooks return a :class:`~repro.core.decisions.Decision`.  Policies
are stateless with respect to individual jobs (all job state lives in
the engine), which keeps them trivially composable and testable.
"""

from __future__ import annotations

from typing import Optional

from .context import SystemView
from .decisions import STAY, Decision

__all__ = ["ReschedulingPolicy"]


class ReschedulingPolicy:
    """Base class: the do-nothing policy (the paper's *NoRes*).

    Subclasses override one or both hooks.  A policy advertises
    interest in waiting jobs by returning a number from
    :attr:`wait_threshold`; when it returns ``None`` the engine never
    schedules wait-timeout checks, so NoRes and suspension-only
    policies pay no overhead for the mechanism.
    """

    #: Human-readable name used in reports; subclasses override.
    name: str = "NoRes"

    @property
    def wait_threshold(self) -> Optional[float]:
        """Queue-waiting minutes after which :meth:`on_wait_timeout` fires.

        ``None`` disables waiting-job rescheduling entirely.
        """
        return None

    def on_suspend(self, job, view: SystemView) -> Decision:
        """Decide what to do with a just-suspended job.

        Args:
            job: the suspended job (see
                :class:`~repro.core.context.JobView` for the attributes
                available).
            view: live system statistics.

        Returns:
            A decision; the base class always returns :data:`STAY`.
        """
        return STAY

    def on_wait_timeout(self, job, view: SystemView) -> Decision:
        """Decide what to do with a job stuck in a wait queue.

        Only called when :attr:`wait_threshold` is not ``None`` and the
        job has waited that long in one pool's queue.  Returning
        :data:`STAY` leaves the job queued; the engine will check again
        after another threshold period.
        """
        return STAY

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
