"""Alternate-pool selectors.

A selector answers one question: *given that this job should move, which
pool should it move to?*  The paper evaluates two answers — lowest
utilization and uniform random — and sketches richer ones as future
work ("the use of multiple metrics (e.g., utilization, queue lengths,
prediction of job completion times within a pool) in combination").
All of those are implemented here behind one interface, so policies
compose with any selector.

Selectors must return either a pool id different from the job's current
pool, or ``None`` meaning "no better pool; stay put".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .context import PoolSnapshot, SystemView

__all__ = [
    "PoolSelector",
    "LowestUtilizationSelector",
    "RandomSelector",
    "ShortestQueueSelector",
    "WeightedSelector",
    "PredictedWaitSelector",
]


class PoolSelector:
    """Interface for alternate-pool selection strategies."""

    def select(
        self, candidates: Sequence[str], current_pool: Optional[str], view: SystemView
    ) -> Optional[str]:
        """Pick an alternate pool for a job.

        Args:
            candidates: pools the job is allowed to run in, in canonical
                order (already filtered by the job's whitelist).
            current_pool: the pool the job currently sits in, or ``None``
                if it has not been placed yet.
            view: live system statistics.

        Returns:
            A pool id different from ``current_pool``, or ``None`` to
            keep the job where it is.
        """
        raise NotImplementedError

    @staticmethod
    def _others(
        candidates: Sequence[str], current_pool: Optional[str]
    ) -> Tuple[str, ...]:
        """Candidates excluding the current pool."""
        return tuple(p for p in candidates if p != current_pool)


@dataclass(frozen=True)
class LowestUtilizationSelector(PoolSelector):
    """Pick the least-utilized candidate pool (paper: *Util* schemes).

    With ``guard=True`` (the default, matching the paper) the move is
    suppressed unless the best alternate pool is strictly less utilized
    than the job's current pool: "if all alternate pools are even more
    utilized than the current pool, ResSusUtil will simply retain the
    suspended job in its current pool, ensuring that rescheduling will
    not negatively impact system performance" (Section 3.2.1).
    """

    guard: bool = True

    def select(
        self, candidates: Sequence[str], current_pool: Optional[str], view: SystemView
    ) -> Optional[str]:
        others = self._others(candidates, current_pool)
        if not others:
            return None
        best = min(others, key=lambda pid: (view.pool(pid).utilization, pid))
        if self.guard and current_pool is not None:
            if view.pool(best).utilization >= view.pool(current_pool).utilization:
                return None
        return best


@dataclass(frozen=True)
class RandomSelector(PoolSelector):
    """Pick a uniformly random other candidate pool (paper: *Rand*).

    Deliberately load-oblivious: the paper uses it to show both that
    naive random restarts of suspended jobs can backfire (Table 1) and
    that, combined with waiting-job rescheduling, randomness performs
    nearly as well as utilization-awareness (Tables 4-5) because a job
    that lands badly simply moves again after the wait threshold.
    """

    def select(
        self, candidates: Sequence[str], current_pool: Optional[str], view: SystemView
    ) -> Optional[str]:
        others = self._others(candidates, current_pool)
        if not others:
            return None
        return view.rng.choice(others)


@dataclass(frozen=True)
class ShortestQueueSelector(PoolSelector):
    """Pick the candidate pool with the fewest waiting jobs.

    One of the paper's future-work metrics.  ``guard=True`` suppresses
    moves to pools whose queue is no shorter than the current pool's.
    """

    guard: bool = True

    def select(
        self, candidates: Sequence[str], current_pool: Optional[str], view: SystemView
    ) -> Optional[str]:
        others = self._others(candidates, current_pool)
        if not others:
            return None
        best = min(others, key=lambda pid: (view.pool(pid).waiting_jobs, pid))
        if self.guard and current_pool is not None:
            if view.pool(best).waiting_jobs >= view.pool(current_pool).waiting_jobs:
                return None
        return best


@dataclass(frozen=True)
class WeightedSelector(PoolSelector):
    """Score pools by a weighted combination of load signals.

    Implements the paper's future-work idea of "the use of multiple
    metrics ... in combination for making rescheduling decisions".  The
    score (lower is better) for a pool ``p`` is::

        utilization_weight * utilization(p)
        + queue_weight * waiting(p) / max(total_cores(p), 1)
        + suspension_weight * suspended(p) / max(total_cores(p), 1)

    Queue and suspension pressure are normalised by pool size so big and
    small pools are comparable.
    """

    utilization_weight: float = 1.0
    queue_weight: float = 1.0
    suspension_weight: float = 0.5
    guard: bool = True

    def __post_init__(self) -> None:
        if min(self.utilization_weight, self.queue_weight, self.suspension_weight) < 0:
            raise ConfigurationError("WeightedSelector weights must be non-negative")
        if self.utilization_weight + self.queue_weight + self.suspension_weight == 0:
            raise ConfigurationError("WeightedSelector needs at least one positive weight")

    def score(self, snapshot: PoolSnapshot) -> float:
        """The pool's combined load score (lower is better)."""
        size = max(snapshot.total_cores, 1)
        return (
            self.utilization_weight * snapshot.utilization
            + self.queue_weight * snapshot.waiting_jobs / size
            + self.suspension_weight * snapshot.suspended_jobs / size
        )

    def select(
        self, candidates: Sequence[str], current_pool: Optional[str], view: SystemView
    ) -> Optional[str]:
        others = self._others(candidates, current_pool)
        if not others:
            return None
        best = min(others, key=lambda pid: (self.score(view.pool(pid)), pid))
        if self.guard and current_pool is not None:
            if self.score(view.pool(best)) >= self.score(view.pool(current_pool)):
                return None
        return best


@dataclass(frozen=True)
class PredictedWaitSelector(PoolSelector):
    """Pick the pool with the lowest predicted time-to-start.

    A lightweight realisation of the paper's "prediction of job
    completion times within a pool": the predicted wait for a pool is
    zero if it has free cores, otherwise the queue backlog divided by
    the pool's service capacity, using ``mean_runtime`` as the
    per-job service-time estimate.
    """

    mean_runtime: float = 120.0
    guard: bool = True

    def __post_init__(self) -> None:
        if self.mean_runtime <= 0:
            raise ConfigurationError(
                f"PredictedWaitSelector: mean_runtime must be > 0, got {self.mean_runtime}"
            )

    def predicted_wait(self, snapshot: PoolSnapshot) -> float:
        """Estimated minutes until a newly arriving job could start.

        The queue backlog net of currently free cores, served at the
        pool's aggregate rate; suspended residents count toward the
        backlog since they reclaim their hosts before queued work.
        """
        net_backlog = (
            snapshot.waiting_jobs + snapshot.suspended_jobs - snapshot.free_cores
        )
        if net_backlog <= 0:
            return 0.0
        return net_backlog * self.mean_runtime / max(snapshot.total_cores, 1)

    def select(
        self, candidates: Sequence[str], current_pool: Optional[str], view: SystemView
    ) -> Optional[str]:
        others = self._others(candidates, current_pool)
        if not others:
            return None
        best = min(others, key=lambda pid: (self.predicted_wait(view.pool(pid)), pid))
        if self.guard and current_pool is not None:
            if self.predicted_wait(view.pool(best)) >= self.predicted_wait(
                view.pool(current_pool)
            ):
                return None
        return best
