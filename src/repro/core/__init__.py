"""The paper's primary contribution: dynamic rescheduling policies.

This package contains the policy framework (decision hooks, pool
selectors, restart-overhead models) and the five strategies the paper
evaluates, plus the future-work extensions it sketches (job
duplication, checkpoint migration, multi-metric selection).
"""

from .context import JobView, PoolSnapshot, StaticSystemView, SystemView
from .decisions import STAY, Action, Decision, duplicate, fractional, migrate, restart
from .overheads import NO_OVERHEAD, RestartOverhead
from .policies import (
    DEFAULT_WAIT_THRESHOLD,
    PAPER_POLICY_NAMES,
    DuplicateSuspended,
    MigrateSuspended,
    NoRescheduling,
    RescheduleSuspended,
    RescheduleSuspendedAndWaiting,
    RescheduleWaitingOnly,
    no_res,
    policy_from_name,
    res_sus_rand,
    res_sus_util,
    res_sus_wait_rand,
    res_sus_wait_util,
)
from .policy import ReschedulingPolicy
from .selectors import (
    LowestUtilizationSelector,
    PoolSelector,
    PredictedWaitSelector,
    RandomSelector,
    ShortestQueueSelector,
    WeightedSelector,
)

__all__ = [
    "JobView",
    "PoolSnapshot",
    "StaticSystemView",
    "SystemView",
    "STAY",
    "Action",
    "Decision",
    "duplicate",
    "fractional",
    "migrate",
    "restart",
    "NO_OVERHEAD",
    "RestartOverhead",
    "DEFAULT_WAIT_THRESHOLD",
    "PAPER_POLICY_NAMES",
    "DuplicateSuspended",
    "MigrateSuspended",
    "NoRescheduling",
    "RescheduleSuspended",
    "RescheduleSuspendedAndWaiting",
    "RescheduleWaitingOnly",
    "no_res",
    "policy_from_name",
    "res_sus_rand",
    "res_sus_util",
    "res_sus_wait_rand",
    "res_sus_wait_util",
    "ReschedulingPolicy",
    "LowestUtilizationSelector",
    "PoolSelector",
    "PredictedWaitSelector",
    "RandomSelector",
    "ShortestQueueSelector",
    "WeightedSelector",
]
