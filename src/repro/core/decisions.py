"""Decision values returned by rescheduling policies.

A policy hook returns a :class:`Decision` telling the engine what to do
with the job in question:

* :data:`STAY` — leave the job where it is (suspended on its host, or
  waiting in its queue).
* ``restart(pool_id)`` — abandon the current attempt and restart the
  job from scratch at ``pool_id`` (the paper's rescheduling action; any
  progress made becomes *wasted time by rescheduling*).
* ``duplicate(pool_id)`` — keep the suspended attempt *and* launch a
  second attempt at ``pool_id``; the first to finish wins (the "job
  duplication techniques" the paper lists as future work).
* ``migrate(pool_id)`` — move the job to ``pool_id`` *preserving its
  progress*, Condor-checkpoint / VM-migration style (the alternative
  the paper discusses in Section 2.3 and rejects for NetBatch on
  overhead grounds; implemented here so the trade-off is measurable).
* ``fractional(share)`` — keep the job suspended in place but let it
  progress at ``share`` of its machine's speed instead of stopping
  entirely (Dynamic Fractional Resource Scheduling, arXiv:1106.4985).
  Only meaningful from ``on_suspend``; the engine ignores it from
  ``on_wait_timeout`` (a waiting job has no machine to share).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError

__all__ = [
    "Action",
    "Decision",
    "STAY",
    "restart",
    "duplicate",
    "migrate",
    "fractional",
]


class Action(enum.Enum):
    """What the engine should do with the job."""

    STAY = "stay"
    RESTART = "restart"
    DUPLICATE = "duplicate"
    MIGRATE = "migrate"
    FRACTION = "fraction"


@dataclass(frozen=True)
class Decision:
    """An action plus, for move actions, the target pool.

    FRACTION decisions carry a ``share`` in ``(0, 1]`` instead of a
    target pool: the job stays put and runs at that fraction of its
    host's speed.
    """

    action: Action
    target_pool: Optional[str] = None
    share: Optional[float] = None

    def __post_init__(self) -> None:
        if self.action is Action.FRACTION:
            if self.target_pool is not None:
                raise ConfigurationError(
                    "FRACTION decisions must not carry a target pool"
                )
            if self.share is None or not (0.0 < self.share <= 1.0):
                raise ConfigurationError(
                    f"FRACTION decisions need a share in (0, 1], got {self.share!r}"
                )
            return
        if self.share is not None:
            raise ConfigurationError(
                f"{self.action.value} decisions must not carry a share"
            )
        if self.action is Action.STAY and self.target_pool is not None:
            raise ConfigurationError("STAY decisions must not carry a target pool")
        if self.action is not Action.STAY and not self.target_pool:
            raise ConfigurationError(f"{self.action.value} decisions require a target pool")

    @property
    def moves(self) -> bool:
        """Whether this decision relocates (or clones) the job."""
        return self.action is not Action.STAY and self.action is not Action.FRACTION


#: The do-nothing decision.
STAY = Decision(Action.STAY)


def restart(pool_id: str) -> Decision:
    """Restart-from-scratch at ``pool_id``."""
    return Decision(Action.RESTART, pool_id)


def duplicate(pool_id: str) -> Decision:
    """Launch a duplicate attempt at ``pool_id``, keeping the original."""
    return Decision(Action.DUPLICATE, pool_id)


def migrate(pool_id: str) -> Decision:
    """Move to ``pool_id`` preserving progress (checkpoint/VM migration)."""
    return Decision(Action.MIGRATE, pool_id)


def fractional(share: float) -> Decision:
    """Keep running in place at ``share`` of the host's speed while suspended."""
    return Decision(Action.FRACTION, share=share)
