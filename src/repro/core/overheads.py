"""Restart overhead models.

The paper notes that each restart "may include time consuming
operations like transferring large amount of data and job binaries to
the alternate pool" and lists "network delays and other rescheduling
associated overheads" as planned simulator improvements.  This module
implements that improvement: a :class:`RestartOverhead` maps a job and
its move to a delay (minutes) that the engine inserts between the job
leaving its old pool and arriving at the new one.

The paper's own evaluation uses no transfer delay, so the default is
:data:`NO_OVERHEAD`; the ablation benchmarks sweep the cost to show
where rescheduling stops paying off.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["RestartOverhead", "NO_OVERHEAD"]


@dataclass(frozen=True)
class RestartOverhead:
    """Affine restart-delay model.

    ``delay = fixed_minutes + per_gb_minutes * job.memory_gb`` — a fixed
    resubmission cost plus a data-transfer term proportional to the
    job's footprint (memory is our stand-in for input-data size, which
    the trace format does not carry separately).

    Attributes:
        fixed_minutes: constant cost of every restart.
        per_gb_minutes: transfer cost per GB of job footprint.
    """

    fixed_minutes: float = 0.0
    per_gb_minutes: float = 0.0

    def __post_init__(self) -> None:
        if self.fixed_minutes < 0 or self.per_gb_minutes < 0:
            raise ConfigurationError("restart overhead terms must be non-negative")

    def delay_for(self, job_spec) -> float:
        """Delay (minutes) for moving a job with ``job_spec`` requirements."""
        return self.fixed_minutes + self.per_gb_minutes * job_spec.memory_gb

    @property
    def is_free(self) -> bool:
        """True when the model never introduces any delay."""
        return self.fixed_minutes == 0.0 and self.per_gb_minutes == 0.0


#: The paper's setting: restarts are instantaneous.
NO_OVERHEAD = RestartOverhead()
