"""Read-only views of system state exposed to scheduling decisions.

Rescheduling policies and initial schedulers never touch simulator
internals; they see the system through the small interfaces defined
here.  The simulator implements :class:`SystemView` over its live
state; tests (and any alternative backend, e.g. a real cluster agent)
can implement it with :class:`StaticSystemView`.

The paper's closing observation motivates this separation: the random
waiting-job strategy "can be implemented without any coordination or
changes to the system's scheduler ... the rescheduling decision [can]
be made solely by the waiting job".  A policy that only consumes this
narrow view is exactly such a component.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..errors import UnknownPoolError

__all__ = ["PoolSnapshot", "SystemView", "StaticSystemView", "JobView"]


@dataclass(frozen=True)
class PoolSnapshot:
    """Point-in-time statistics of one physical pool.

    Attributes:
        pool_id: the pool's identifier.
        total_cores: all cores in the pool.
        busy_cores: cores currently running jobs.
        waiting_jobs: jobs in the pool's wait queue.
        suspended_jobs: jobs suspended on the pool's machines.
    """

    pool_id: str
    total_cores: int
    busy_cores: int
    waiting_jobs: int
    suspended_jobs: int

    @property
    def free_cores(self) -> int:
        """Cores not running any job right now."""
        return self.total_cores - self.busy_cores

    @property
    def utilization(self) -> float:
        """Busy fraction of the pool's cores, in ``[0, 1]``."""
        if self.total_cores == 0:
            return 0.0
        return self.busy_cores / self.total_cores


class JobView:
    """The attributes of a job that decisions may depend on.

    This is a structural contract: the simulator passes its runtime Job
    objects, which provide these attributes; tests may pass any object
    with the same shape.

    Attributes (all read-only from a policy's perspective):
        spec: the :class:`~repro.workload.trace.TraceJob` record.
        pool_id: id of the pool the job currently sits in (or ``None``).
    """

    spec = None
    pool_id: Optional[str] = None


class SystemView:
    """Abstract interface policies use to observe the system.

    Implementations must be cheap to query; policies may call
    :meth:`pool` once per candidate pool per decision.
    """

    @property
    def now(self) -> float:
        """Current simulated time in minutes."""
        raise NotImplementedError

    @property
    def pool_ids(self) -> Tuple[str, ...]:
        """All pool ids, in the site's canonical (round-robin) order."""
        raise NotImplementedError

    def pool(self, pool_id: str) -> PoolSnapshot:
        """Snapshot of one pool; raises :class:`UnknownPoolError`."""
        raise NotImplementedError

    @property
    def rng(self) -> random.Random:
        """Seeded random stream for stochastic decisions.

        All policies share one decision stream per simulation, so a
        simulation is reproducible end-to-end from its seed.
        """
        raise NotImplementedError

    def candidate_pools(self, job) -> Tuple[str, ...]:
        """Pools ``job`` may run in, in canonical order."""
        allowed = getattr(job.spec, "candidate_pools", None)
        if allowed is None:
            return self.pool_ids
        return tuple(p for p in self.pool_ids if p in set(allowed))


class StaticSystemView(SystemView):
    """A fixed, in-memory :class:`SystemView` for tests and offline use.

    Example:
        >>> view = StaticSystemView(
        ...     now=0.0,
        ...     snapshots=[
        ...         PoolSnapshot("a", 10, 9, 4, 0),
        ...         PoolSnapshot("b", 10, 2, 0, 0),
        ...     ],
        ...     seed=1,
        ... )
        >>> view.pool("b").utilization
        0.2
    """

    def __init__(
        self, now: float, snapshots: Sequence[PoolSnapshot], seed: int = 0
    ) -> None:
        self._now = now
        self._snapshots: Dict[str, PoolSnapshot] = {s.pool_id: s for s in snapshots}
        self._order = tuple(s.pool_id for s in snapshots)
        self._rng = random.Random(seed)

    @property
    def now(self) -> float:
        return self._now

    @property
    def pool_ids(self) -> Tuple[str, ...]:
        return self._order

    def pool(self, pool_id: str) -> PoolSnapshot:
        try:
            return self._snapshots[pool_id]
        except KeyError:
            raise UnknownPoolError(pool_id) from None

    @property
    def rng(self) -> random.Random:
        return self._rng
