"""Initial (first-placement) schedulers and eligibility rules."""

from .eligibility import machine_eligible, pool_has_eligible_machine
from .initial import (
    INITIAL_SCHEDULER_NAMES,
    InitialScheduler,
    LeastWaitingScheduler,
    RandomInitialScheduler,
    RoundRobinScheduler,
    UtilizationBasedScheduler,
    initial_scheduler_from_name,
)

__all__ = [
    "machine_eligible",
    "pool_has_eligible_machine",
    "INITIAL_SCHEDULER_NAMES",
    "InitialScheduler",
    "LeastWaitingScheduler",
    "RandomInitialScheduler",
    "RoundRobinScheduler",
    "UtilizationBasedScheduler",
    "initial_scheduler_from_name",
]
