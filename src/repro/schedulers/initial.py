"""Initial schedulers: how the virtual pool manager picks a pool.

"To disambiguate from rescheduling schemes, we call the scheduler at
each virtual pool manager *initial scheduler*" (Section 3.2.1).  The
paper evaluates two and we add two more for ablations:

* :class:`RoundRobinScheduler` — NetBatch's default: "distributes jobs
  across candidate pools in a sequential order".
* :class:`UtilizationBasedScheduler` — "each job entering a virtual
  pool manager is scheduled to the physical pool that currently has the
  lowest utilization" (Section 3.2.2).  The paper notes this is hard to
  implement exactly in a geo-distributed deployment; the simulator
  grants it perfect information.
* :class:`RandomInitialScheduler` — load-oblivious random placement
  (ablation baseline).
* :class:`LeastWaitingScheduler` — shortest-wait-queue placement
  (ablation; a cheap proxy for utilization).

An initial scheduler returns the *order* in which the VPM should try
the job's candidate pools; the VPM walks the order and places the job
at the first pool that does not give it back as statically ineligible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.context import SystemView

__all__ = [
    "InitialScheduler",
    "RoundRobinScheduler",
    "UtilizationBasedScheduler",
    "RandomInitialScheduler",
    "LeastWaitingScheduler",
    "initial_scheduler_from_name",
    "INITIAL_SCHEDULER_NAMES",
]


class InitialScheduler:
    """Interface: rank a job's candidate pools for first placement."""

    #: Human-readable name used in reports; subclasses override.
    name: str = "InitialScheduler"

    def order(self, candidates: Sequence[str], view: SystemView) -> List[str]:
        """Return ``candidates`` in the order the VPM should try them.

        Args:
            candidates: pools the job may run in, in the site's
                canonical order (already filtered by the job's
                whitelist).
            view: live system statistics.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop any per-run state.

        The engine calls this when it takes ownership of a scheduler
        instance, so reusing one object across simulations (a grid
        sharing a scheduler between cells) cannot leak placement state
        from one run into the next — every run must be a pure function
        of its inputs for the cache/fabric bit-identical contract to
        hold.  Stateless schedulers inherit this no-op.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RoundRobinScheduler(InitialScheduler):
    """NetBatch's default: cycle through pools in canonical order.

    The cursor is keyed by the candidate tuple so that restricted jobs
    (whose candidate set is a subset of all pools) get their own fair
    cycle rather than skewing the global one.
    """

    name = "RoundRobin"

    def __init__(self) -> None:
        self._cursors: Dict[Tuple[str, ...], int] = {}

    def reset(self) -> None:
        self._cursors.clear()

    def order(self, candidates: Sequence[str], view: SystemView) -> List[str]:
        key = tuple(candidates)
        if not key:
            return []
        cursor = self._cursors.get(key, 0) % len(key)
        self._cursors[key] = cursor + 1
        return list(key[cursor:]) + list(key[:cursor])


class UtilizationBasedScheduler(InitialScheduler):
    """Send each job to the currently least-utilized candidate pool."""

    name = "UtilizationBased"

    def order(self, candidates: Sequence[str], view: SystemView) -> List[str]:
        return sorted(candidates, key=lambda pid: (view.pool(pid).utilization, pid))


class RandomInitialScheduler(InitialScheduler):
    """Try candidate pools in uniformly random order (ablation)."""

    name = "RandomInitial"

    def order(self, candidates: Sequence[str], view: SystemView) -> List[str]:
        shuffled = list(candidates)
        view.rng.shuffle(shuffled)
        return shuffled


class LeastWaitingScheduler(InitialScheduler):
    """Try candidate pools in increasing wait-queue-length order (ablation)."""

    name = "LeastWaiting"

    def order(self, candidates: Sequence[str], view: SystemView) -> List[str]:
        return sorted(candidates, key=lambda pid: (view.pool(pid).waiting_jobs, pid))


_SCHEDULERS = {
    "round-robin": RoundRobinScheduler,
    "utilization": UtilizationBasedScheduler,
    "random": RandomInitialScheduler,
    "least-waiting": LeastWaitingScheduler,
}

#: Names accepted by :func:`initial_scheduler_from_name`.
INITIAL_SCHEDULER_NAMES: Tuple[str, ...] = tuple(_SCHEDULERS)


def initial_scheduler_from_name(name: str) -> InitialScheduler:
    """Build an initial scheduler from its CLI name."""
    try:
        scheduler_class = _SCHEDULERS[name]
    except KeyError:
        known = ", ".join(sorted(_SCHEDULERS))
        raise ValueError(f"unknown initial scheduler {name!r} (known: {known})") from None
    return scheduler_class()
