"""Static job-to-machine eligibility.

NetBatch's physical pool manager dispatches "based on the job
requirements (e.g., OS and memory)" (Section 2.1).  *Eligibility* is the
static half of that check: could this machine ever run this job,
regardless of current load?  A machine is eligible when its OS family
matches and its **total** cores and memory cover the job's requirements.
Whether the machine can take the job *right now* (free cores/memory) is
a separate, dynamic question answered by the runtime
:class:`~repro.simulator.machine.Machine`.

Eligibility drives the virtual pool manager's give-back rule: a pool
with no eligible machine at all returns the job so the VPM tries the
next pool.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["machine_eligible", "pool_has_eligible_machine"]


def machine_eligible(machine_spec, job_spec) -> bool:
    """Whether ``machine_spec`` could ever run ``job_spec``.

    Args:
        machine_spec: a :class:`~repro.workload.cluster.MachineSpec`.
        job_spec: a :class:`~repro.workload.trace.TraceJob`.
    """
    return (
        machine_spec.os_family == job_spec.os_family
        and machine_spec.cores >= job_spec.cores
        and machine_spec.memory_gb >= job_spec.memory_gb
    )


def pool_has_eligible_machine(machine_specs: Iterable, job_spec) -> bool:
    """Whether any machine in ``machine_specs`` is eligible for the job."""
    return any(machine_eligible(m, job_spec) for m in machine_specs)
