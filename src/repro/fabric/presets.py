"""Named grid builders for the fabric CLI and benchmarks.

A fabric run needs a grid of
:class:`~repro.experiments.parallel.CellTask` — fully specified,
picklable, content-addressed cells.  This module builds the three
grids the CLI (``repro run-grid --preset``), the CI smoke leg and the
committed benchmark all share, so "the fault-sweep grid" means the
same cells everywhere a digest is compared.

Every builder is deterministic in its arguments: same preset + scale
+ seed → same cell ids, same cache keys, same derived per-cell seeds,
whichever host builds it.  That property is what lets a coordinator
and its workers (or two static shards) construct the grid
independently and still agree on every cell.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.policies import (
    no_res,
    res_sus_rand,
    res_sus_util,
    res_sus_wait_rand,
    res_sus_wait_util,
)
from ..errors import ConfigurationError
from ..experiments import presets as exp_presets
from ..experiments.fault_sweep import FAULT_POLICY_FAMILY
from ..experiments.parallel import CellTask, make_cell_task
from ..faults import FaultConfig
from ..schedulers.initial import RoundRobinScheduler
from ..simulator.config import SimulationConfig
from ..workload.scenarios import busy_week, high_load, smoke

__all__ = ["GRID_PRESETS", "build_grid", "fault_sweep_grid", "smoke_grid", "table_grid"]


def fault_sweep_grid(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    mtbf_minutes: Optional[Sequence[float]] = None,
    mttr_minutes: Optional[float] = None,
) -> List[CellTask]:
    """The (MTBF x policy) churn grid of ``repro faults``, as cells.

    One scenario, the three-policy fault family, and one cell per rung
    of the MTBF ladder.  The MTBF lives in the *config* (the fault
    model), not the scenario/policy/scheduler triple, so each rung is
    distinguished through the cell-id ``variant`` — distinct seeds,
    distinct cache keys, distinct checkpoint entries.
    """
    mtbfs = tuple(
        mtbf_minutes if mtbf_minutes is not None else exp_presets.fault_mtbfs()
    )
    mttr = mttr_minutes if mttr_minutes is not None else exp_presets.fault_mttr()
    scenario = high_load(
        scale or exp_presets.table_scale(), seed or exp_presets.seed()
    )
    tasks: List[CellTask] = []
    for mtbf in mtbfs:
        config = SimulationConfig(
            strict=False,
            faults=FaultConfig.with_exponential_churn(mtbf, mttr),
        )
        for policy in FAULT_POLICY_FAMILY():
            tasks.append(
                make_cell_task(
                    index=len(tasks),
                    scenario=scenario,
                    policy=policy,
                    scheduler=RoundRobinScheduler(),
                    config=config,
                    variant=f"mtbf={mtbf:g}",
                )
            )
    return tasks


def table_grid(
    scale: Optional[float] = None, seed: Optional[int] = None
) -> List[CellTask]:
    """The paper's five policies under normal load (the Table 1/4 axis)."""
    scenario = busy_week(
        scale or exp_presets.table_scale(), seed or exp_presets.seed()
    )
    config = SimulationConfig(strict=False)
    tasks: List[CellTask] = []
    for factory in (
        no_res,
        res_sus_util,
        res_sus_rand,
        res_sus_wait_util,
        res_sus_wait_rand,
    ):
        tasks.append(
            make_cell_task(
                index=len(tasks),
                scenario=scenario,
                policy=factory(),
                scheduler=RoundRobinScheduler(),
                config=config,
            )
        )
    return tasks


def smoke_grid(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    n_seeds: int = 4,
) -> List[CellTask]:
    """Many cheap cells: the smoke scenario across seeds x 3 policies.

    Millisecond-scale cells (``scale`` is accepted for signature
    uniformity but the smoke scenario is fixed-size), sized for CI
    smoke runs and for the scheduling-bound fabric benchmark where
    per-cell cost is padded via ``REPRO_FABRIC_CELL_FLOOR``.
    """
    base_seed = seed or exp_presets.seed()
    config = SimulationConfig(strict=False)
    tasks: List[CellTask] = []
    for i in range(n_seeds):
        scenario = smoke(seed=base_seed + i)
        for factory in (no_res, res_sus_util, res_sus_wait_util):
            tasks.append(
                make_cell_task(
                    index=len(tasks),
                    scenario=scenario,
                    policy=factory(),
                    scheduler=RoundRobinScheduler(),
                    config=config,
                )
            )
    return tasks


#: Preset name -> grid builder (scale, seed) -> tasks.
GRID_PRESETS: Dict[str, Callable[..., List[CellTask]]] = {
    "fault-sweep": fault_sweep_grid,
    "table1": table_grid,
    "smoke": smoke_grid,
}


def build_grid(
    preset: str, scale: Optional[float] = None, seed: Optional[int] = None
) -> List[CellTask]:
    """Build a named grid, raising on unknown names."""
    try:
        builder = GRID_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown grid preset {preset!r} "
            f"(available: {', '.join(sorted(GRID_PRESETS))})"
        ) from None
    return builder(scale=scale, seed=seed)
