"""Named grid builders for the fabric CLI and benchmarks.

A fabric run needs a grid of
:class:`~repro.experiments.parallel.CellTask` — fully specified,
picklable, content-addressed cells.  This module builds the three
grids the CLI (``repro run-grid --preset``), the CI smoke leg and the
committed benchmark all share, so "the fault-sweep grid" means the
same cells everywhere a digest is compared.

Every builder is deterministic in its arguments: same preset + scale
+ seed → same cell ids, same cache keys, same derived per-cell seeds,
whichever host builds it.  That property is what lets a coordinator
and its workers (or two static shards) construct the grid
independently and still agree on every cell.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..experiments import presets as exp_presets
from ..experiments.parallel import CellTask, make_cell_task
from ..faults import FaultConfig
from ..policies import policy_from_spec
from ..schedulers.initial import RoundRobinScheduler
from ..simulator.config import SimulationConfig
from ..workload.scenarios import busy_week, high_load, smoke

__all__ = ["GRID_PRESETS", "build_grid", "fault_sweep_grid", "smoke_grid", "table_grid"]

#: Default policy families per preset, as registry spec strings.  Going
#: through the registry keeps the instances bit-identical to direct
#: construction (the builtins delegate to the same factories) while
#: stamping each cell with its ``policy_spec`` for telemetry/provenance.
_FAULT_POLICY_SPECS = ("NoRes", "ResSusUtil", "ResSusWaitUtil")
_TABLE_POLICY_SPECS = (
    "NoRes", "ResSusUtil", "ResSusRand", "ResSusWaitUtil", "ResSusWaitRand"
)
_SMOKE_POLICY_SPECS = ("NoRes", "ResSusUtil", "ResSusWaitUtil")


def _build_policies(specs: Sequence[str], scenario) -> List[object]:
    """Fresh policy instances for one scenario, from registry specs."""
    return [
        policy_from_spec(spec, defaults={"wait_threshold": scenario.wait_threshold})
        for spec in specs
    ]


def fault_sweep_grid(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    mtbf_minutes: Optional[Sequence[float]] = None,
    mttr_minutes: Optional[float] = None,
    policies: Optional[Sequence[str]] = None,
) -> List[CellTask]:
    """The (MTBF x policy) churn grid of ``repro faults``, as cells.

    One scenario, the three-policy fault family (override with
    ``policies``, a sequence of registry spec strings), and one cell per
    rung of the MTBF ladder.  The MTBF lives in the *config* (the fault
    model), not the scenario/policy/scheduler triple, so each rung is
    distinguished through the cell-id ``variant`` — distinct seeds,
    distinct cache keys, distinct checkpoint entries.
    """
    mtbfs = tuple(
        mtbf_minutes if mtbf_minutes is not None else exp_presets.fault_mtbfs()
    )
    mttr = mttr_minutes if mttr_minutes is not None else exp_presets.fault_mttr()
    scenario = high_load(
        scale or exp_presets.table_scale(), seed or exp_presets.seed()
    )
    specs = tuple(policies) if policies else _FAULT_POLICY_SPECS
    tasks: List[CellTask] = []
    for mtbf in mtbfs:
        config = SimulationConfig(
            strict=False,
            faults=FaultConfig.with_exponential_churn(mtbf, mttr),
        )
        for policy in _build_policies(specs, scenario):
            tasks.append(
                make_cell_task(
                    index=len(tasks),
                    scenario=scenario,
                    policy=policy,
                    scheduler=RoundRobinScheduler(),
                    config=config,
                    variant=f"mtbf={mtbf:g}",
                )
            )
    return tasks


def table_grid(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    policies: Optional[Sequence[str]] = None,
) -> List[CellTask]:
    """The paper's five policies under normal load (the Table 1/4 axis)."""
    scenario = busy_week(
        scale or exp_presets.table_scale(), seed or exp_presets.seed()
    )
    config = SimulationConfig(strict=False)
    tasks: List[CellTask] = []
    for policy in _build_policies(policies or _TABLE_POLICY_SPECS, scenario):
        tasks.append(
            make_cell_task(
                index=len(tasks),
                scenario=scenario,
                policy=policy,
                scheduler=RoundRobinScheduler(),
                config=config,
            )
        )
    return tasks


def smoke_grid(
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    n_seeds: int = 4,
    policies: Optional[Sequence[str]] = None,
) -> List[CellTask]:
    """Many cheap cells: the smoke scenario across seeds x 3 policies.

    Millisecond-scale cells (``scale`` is accepted for signature
    uniformity but the smoke scenario is fixed-size), sized for CI
    smoke runs and for the scheduling-bound fabric benchmark where
    per-cell cost is padded via ``REPRO_FABRIC_CELL_FLOOR``.
    """
    base_seed = seed or exp_presets.seed()
    config = SimulationConfig(strict=False)
    specs = tuple(policies) if policies else _SMOKE_POLICY_SPECS
    tasks: List[CellTask] = []
    for i in range(n_seeds):
        scenario = smoke(seed=base_seed + i)
        for policy in _build_policies(specs, scenario):
            tasks.append(
                make_cell_task(
                    index=len(tasks),
                    scenario=scenario,
                    policy=policy,
                    scheduler=RoundRobinScheduler(),
                    config=config,
                )
            )
    return tasks


#: Preset name -> grid builder (scale, seed) -> tasks.
GRID_PRESETS: Dict[str, Callable[..., List[CellTask]]] = {
    "fault-sweep": fault_sweep_grid,
    "table1": table_grid,
    "smoke": smoke_grid,
}


def build_grid(
    preset: str,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    policies: Optional[Sequence[str]] = None,
) -> List[CellTask]:
    """Build a named grid, raising on unknown names.

    ``policies`` (registry spec strings, e.g. ``["NoRes",
    "dfrs:share=0.5"]``) replaces the preset's default policy family.
    """
    try:
        builder = GRID_PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown grid preset {preset!r} "
            f"(available: {', '.join(sorted(GRID_PRESETS))})"
        ) from None
    return builder(scale=scale, seed=seed, policies=policies)
