"""Self-healing fleet supervision: restart, backoff, quarantine, elasticity.

The lease protocol makes worker deaths *survivable* — a dead worker
costs one cell for one TTL — but survivable is not the same as
recovered: a fleet of N workers that loses k of them finishes the grid
at N-k speed forever.  :class:`FleetSupervisor` closes that gap, in
the spirit of the paper's own platform (owners reclaim machines at
will; the scheduler's job is to keep the work moving anyway):

* **restart** — a worker that dies is respawned, with exponential
  backoff between attempts so a sick host is not hammered;
* **deterministic jitter** — each backoff is skewed by a hash of
  (run, slot, incarnation), so simultaneous deaths do not respawn in
  lockstep yet every run replays identically;
* **quarantine** — a slot that crash-loops past its restart budget is
  benched instead of burning spawns forever (recovery actions are
  priced and bounded, not ad hoc);
* **elastic grow/shrink** — the fleet tracks the remaining work:
  capacity lost to quarantine is replaced while the grid is deep, and
  slots whose capacity is no longer needed are retired by attrition
  (never killed mid-cell) as the grid drains.  This closes the ROADMAP
  item "elastic worker fleets that grow/shrink mid-grid" — the lease
  protocol already tolerated joins and deaths, only the backend-side
  fleet management was missing;
* **graceful drain** — :meth:`FleetSupervisor.request_drain` (wired to
  SIGTERM by ``repro run-grid --supervise``) terminates the fleet
  cleanly and reports what was left unpublished.

Everything timing-related goes through injectable clocks, so the unit
tests drive the whole state machine with fake time and fake process
handles; the chaos harness (:mod:`repro.chaos`) exercises the same
code against real SIGKILLed subprocess fleets.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from ..experiments.cache import ResultCache
from ..experiments.parallel import CellTask
from .backends import (
    BackendError,
    SubprocessWorkerBackend,
    stderr_tail,
    write_manifest,
)
from .lease import CLAIMED, DEFAULT_TTL_SECONDS, LeaseStore
from .worker import run_worker

__all__ = [
    "FleetSupervisor",
    "SupervisedWorkerBackend",
    "SupervisorConfig",
    "SupervisorStats",
    "deterministic_jitter",
    "sweep_settled_leases",
    "sweep_tmp_droppings",
]


@dataclasses.dataclass(frozen=True)
class SupervisorConfig:
    """The supervisor's explicit recovery budget.

    Attributes:
        backoff_base_seconds: delay before the first restart of a slot.
        backoff_factor: multiplier per consecutive crash of that slot.
        backoff_max_seconds: backoff ceiling.
        jitter_fraction: each delay is skewed by up to this fraction,
            deterministically (hash of run/slot/incarnation).
        restart_budget: consecutive fast crashes a slot may burn before
            it is quarantined.
        healthy_uptime_seconds: a worker that stays alive this long
            resets its slot's crash streak — it was working, not
            crash-looping.
        rescan_budget: clean worker exits with cells still unpublished
            (a corrupted entry discovered after the fleet moved on)
            trigger at most this many fresh re-scan workers.
        spawn_budget_factor: hard ceiling on total spawns, as a
            multiple of ``max_workers`` — the bound that makes every
            recovery loop terminate.
        drain_timeout_seconds: how long a terminated worker gets to
            exit before it is killed.
    """

    backoff_base_seconds: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 10.0
    jitter_fraction: float = 0.25
    restart_budget: int = 3
    healthy_uptime_seconds: float = 5.0
    rescan_budget: int = 1
    spawn_budget_factor: int = 6
    drain_timeout_seconds: float = 5.0


@dataclasses.dataclass
class SupervisorStats:
    """What one supervised run cost in recovery actions."""

    restarts: int = 0
    quarantined: int = 0
    grown: int = 0
    shrunk: int = 0
    spawned: int = 0
    drained: bool = False
    #: Monotonic instants bounding the recovery window (None = no
    #: failure observed / run never completed).
    first_failure_at: Optional[float] = None
    completed_at: Optional[float] = None

    def recovery_seconds(self) -> float:
        """Wall time from the first observed worker death to grid
        completion (0 when nothing died)."""
        if self.first_failure_at is None or self.completed_at is None:
            return 0.0
        return max(0.0, self.completed_at - self.first_failure_at)

    def to_dict(self) -> dict:
        return {
            "restarts": self.restarts,
            "quarantined": self.quarantined,
            "grown": self.grown,
            "shrunk": self.shrunk,
            "spawned": self.spawned,
            "drained": self.drained,
            "recovery_seconds": round(self.recovery_seconds(), 6),
        }


def deterministic_jitter(token: str, fraction: float) -> float:
    """A stable pseudo-random skew in ``[-fraction, +fraction]``.

    Hash-derived rather than ``random``-derived so two runs of the
    same grid schedule identical restart instants — chaos scenarios
    must replay exactly from their seed.
    """
    if fraction <= 0:
        return 0.0
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / float(2**64)
    return (2.0 * unit - 1.0) * fraction


class _Slot:
    """One worker slot: a lineage of process incarnations."""

    __slots__ = (
        "index", "handle", "incarnation", "started_at", "streak",
        "restart_at", "quarantined", "retired", "rescans",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.handle = None
        self.incarnation = -1
        self.started_at = 0.0
        self.streak = 0
        self.restart_at: Optional[float] = None
        self.quarantined = False
        self.retired = False
        self.rescans = 0

    @property
    def active(self) -> bool:
        """Counted as fleet capacity: running, or booked to restart."""
        return not (self.quarantined or self.retired) and (
            self.handle is not None or self.restart_at is not None
        )


class FleetSupervisor:
    """Monitor a worker fleet; restart, quarantine, grow and shrink it.

    Args:
        spawn: ``spawn(slot_index, incarnation) -> handle`` starting
            one worker process.  A handle needs ``poll()``,
            ``terminate()``, ``kill()`` and ``pid``; a ``stderr_path``
            attribute (as set by
            :meth:`SubprocessWorkerBackend.spawn_worker`) makes death
            reports quote the worker's last words.
        initial_workers: fleet size at start.
        min_workers / max_workers: elastic bounds; the fleet tracks
            ``clamp(remaining_cells, min, max)``.
        config: the recovery budget.
        name: token salting the deterministic jitter (the run id).
        clock: monotonic clock, injectable for tests.
        sleep: sleep function, injectable for tests.
        on_event: ``on_event(kind, message)`` observer; defaults to a
            ``[supervisor]``-prefixed stderr line per action.
    """

    def __init__(
        self,
        spawn: Callable[[int, int], object],
        initial_workers: int = 2,
        min_workers: int = 1,
        max_workers: int = 4,
        config: Optional[SupervisorConfig] = None,
        name: str = "fleet",
        clock=time.monotonic,
        sleep=time.sleep,
        on_event: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if not 1 <= min_workers <= max_workers:
            raise BackendError(
                f"supervisor needs 1 <= min <= max workers, got "
                f"{min_workers}..{max_workers}"
            )
        self._spawn_fn = spawn
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.initial_workers = max(min_workers, min(max_workers, initial_workers))
        self.config = config or SupervisorConfig()
        self.name = name
        self._clock = clock
        self._sleep = sleep
        self._on_event = on_event
        self._slots: List[_Slot] = []
        self._drain_requested = False
        self.stats = SupervisorStats()

    # -- observability -------------------------------------------------

    def _event(self, kind: str, message: str) -> None:
        if self._on_event is not None:
            self._on_event(kind, message)
        else:
            print(f"[supervisor] {message}", file=sys.stderr)

    def _tail_of(self, handle) -> str:
        return stderr_tail(getattr(handle, "stderr_path", None))

    # -- lifecycle -----------------------------------------------------

    def request_drain(self) -> None:
        """Ask the run loop to terminate the fleet and return (the
        SIGTERM hook).  Safe from any thread or signal handler."""
        self._drain_requested = True

    def _spawn_budget(self) -> int:
        return self.config.spawn_budget_factor * self.max_workers

    def _start_slot(self, slot: _Slot, now: float) -> bool:
        """Spawn the slot's next incarnation; False when out of budget."""
        if self.stats.spawned >= self._spawn_budget():
            self._event(
                "budget",
                f"spawn budget ({self._spawn_budget()}) exhausted; "
                f"slot w{slot.index} stays down",
            )
            slot.retired = True
            slot.restart_at = None
            return False
        slot.incarnation += 1
        slot.handle = self._spawn_fn(slot.index, slot.incarnation)
        slot.started_at = now
        slot.restart_at = None
        self.stats.spawned += 1
        return True

    def _backoff(self, slot: _Slot) -> float:
        cfg = self.config
        base = min(
            cfg.backoff_max_seconds,
            cfg.backoff_base_seconds * cfg.backoff_factor ** max(0, slot.streak - 1),
        )
        skew = deterministic_jitter(
            f"{self.name}|{slot.index}|{slot.incarnation}", cfg.jitter_fraction
        )
        return base * (1.0 + skew)

    def _active_count(self) -> int:
        return sum(1 for s in self._slots if s.active)

    def live_handles(self) -> List[tuple]:
        """``(slot_index, handle)`` for every currently-running worker
        (the chaos harness aims its out-of-band faults with this)."""
        return [
            (s.index, s.handle)
            for s in self._slots
            if s.handle is not None and s.handle.poll() is None
        ]

    def _pending_restart(self) -> bool:
        return any(s.restart_at is not None for s in self._slots)

    def _reap(self, now: float, desired: int) -> None:
        """Process deaths: restart, quarantine, or retire each one."""
        cfg = self.config
        for slot in self._slots:
            if slot.handle is None or slot.quarantined or slot.retired:
                continue
            returncode = slot.handle.poll()
            if returncode is None:
                continue
            uptime = now - slot.started_at
            tail = self._tail_of(slot.handle)
            slot.handle = None
            if returncode == 0:
                # A clean exit while cells remain unpublished means the
                # worker's view of the grid went stale (e.g. an entry
                # was corrupted after it moved on).  One fresh re-scan
                # worker heals that; the rest of the fleet retires.
                if slot.rescans < cfg.rescan_budget and not self._pending_restart():
                    slot.rescans += 1
                    slot.restart_at = now
                    self._event(
                        "rescan",
                        f"w{slot.index} exited clean with work remaining; "
                        "re-scanning the grid",
                    )
                else:
                    slot.retired = True
                    self.stats.shrunk += 1
                    self._event(
                        "shrink", f"w{slot.index} retired (grid almost drained)"
                    )
                continue
            if self.stats.first_failure_at is None:
                self.stats.first_failure_at = now
            slot.streak = (
                1 if uptime >= cfg.healthy_uptime_seconds else slot.streak + 1
            )
            detail = f"exit {returncode} after {uptime:.2f}s"
            if tail:
                detail += f"; last stderr:\n{tail}"
            if slot.streak > cfg.restart_budget:
                slot.quarantined = True
                slot.restart_at = None
                self.stats.quarantined += 1
                self._event(
                    "quarantine",
                    f"w{slot.index} quarantined after {slot.streak} "
                    f"consecutive crashes ({detail})",
                )
            elif slot.streak == 1 and self._active_count() >= desired:
                # Attrition shrink applies only to a first, isolated
                # death: a slot already mid-crash-loop must keep
                # burning its restart budget toward quarantine, or a
                # draining grid would mask a persistent crasher.
                slot.retired = True
                self.stats.shrunk += 1
                self._event(
                    "shrink",
                    f"w{slot.index} retired instead of restarted "
                    f"(fleet of {self._active_count()} covers "
                    f"{desired} remaining cell(s))",
                )
            else:
                delay = self._backoff(slot)
                slot.restart_at = now + delay
                self._event(
                    "backoff",
                    f"w{slot.index} died ({detail}); restart "
                    f"#{slot.streak} in {delay:.2f}s",
                )

    def _restart_due(self, now: float) -> None:
        for slot in self._slots:
            if slot.restart_at is None or slot.restart_at > now:
                continue
            if slot.quarantined or slot.retired:
                slot.restart_at = None
                continue
            if self._start_slot(slot, now):
                self.stats.restarts += 1
                self._event(
                    "restart",
                    f"w{slot.index} restarted (incarnation {slot.incarnation})",
                )

    def _resize(self, desired: int, now: float) -> None:
        """Grow toward the demand-clamped fleet size (shrink happens by
        attrition in :meth:`_reap`, never by killing a busy worker)."""
        while self._active_count() < desired:
            if self.stats.spawned >= self._spawn_budget():
                return
            slot = _Slot(len(self._slots))
            self._slots.append(slot)
            if not self._start_slot(slot, now):
                return
            self.stats.grown += 1
            self._event(
                "grow",
                f"w{slot.index} added (fleet {self._active_count()}/{desired})",
            )

    def grow(self, count: int = 1) -> int:
        """Explicitly add workers (clamped to ``max_workers``); returns
        how many were actually added."""
        now = self._clock()
        added = 0
        for _ in range(count):
            if self._active_count() >= self.max_workers:
                break
            slot = _Slot(len(self._slots))
            self._slots.append(slot)
            if not self._start_slot(slot, now):
                break
            self.stats.grown += 1
            added += 1
        return added

    def shrink(self, count: int = 1) -> int:
        """Explicitly retire workers (gracefully, highest slot first),
        keeping at least ``min_workers``; returns how many retired."""
        removed = 0
        for slot in sorted(self._slots, key=lambda s: -s.index):
            if removed >= count or self._active_count() <= self.min_workers:
                break
            if not slot.active:
                continue
            if slot.handle is not None and slot.handle.poll() is None:
                slot.handle.terminate()
            slot.retired = True
            slot.restart_at = None
            self.stats.shrunk += 1
            removed += 1
            self._event("shrink", f"w{slot.index} retired on request")
        return removed

    def _drain(self) -> None:
        """Terminate every live worker; escalate to kill on timeout."""
        live = [
            s for s in self._slots
            if s.handle is not None and s.handle.poll() is None
        ]
        for slot in live:
            try:
                slot.handle.terminate()
            except OSError:
                pass
        deadline = self._clock() + self.config.drain_timeout_seconds
        while live and self._clock() < deadline:
            live = [s for s in live if s.handle.poll() is None]
            if live:
                self._sleep(0.05)
        for slot in live:
            try:
                slot.handle.kill()
            except OSError:
                pass

    def run(
        self,
        status: Callable[[], int],
        poll_interval: float = 0.1,
    ) -> SupervisorStats:
        """Supervise until ``status()`` reports zero remaining cells.

        ``status`` is the fleet's ground truth (for the fabric: how
        many cells have no published cache entry).  Returns when the
        grid is complete, a drain was requested, or every slot is
        quarantined/retired — the caller owns the fallback for the
        latter two.
        """
        now = self._clock()
        for _ in range(self.initial_workers):
            slot = _Slot(len(self._slots))
            self._slots.append(slot)
            self._start_slot(slot, now)
        while True:
            remaining = int(status())
            if remaining <= 0:
                self.stats.completed_at = self._clock()
                # Grid complete: let workers notice and exit on their
                # own (they release their last leases cleanly) before
                # terminating stragglers.
                deadline = self._clock() + 2.0
                while self._clock() < deadline and any(
                    s.handle is not None and s.handle.poll() is None
                    for s in self._slots
                ):
                    self._sleep(0.05)
                self._drain()
                return self.stats
            if self._drain_requested:
                self._drain()
                self.stats.drained = True
                self._event("drain", "fleet drained on request")
                return self.stats
            now = self._clock()
            desired = max(self.min_workers, min(self.max_workers, remaining))
            self._reap(now, desired)
            self._restart_due(now)
            self._resize(desired, now)
            if self._active_count() == 0:
                self._event(
                    "exhausted",
                    f"no active workers left ({remaining} cell(s) "
                    "unpublished); handing back to the coordinator",
                )
                return self.stats
            self._sleep(poll_interval)


def sweep_settled_leases(
    cache: ResultCache,
    keys: Sequence[str],
    ttl: float = DEFAULT_TTL_SECONDS,
    sleep=time.sleep,
    clock=time.time,
) -> int:
    """Remove claimed leases whose cell is already published.

    A worker killed between ``cache.put`` and ``release_done`` leaves
    a CLAIMED lease journaling a cell that is in fact published — a
    settled orphan.  After the grid completes, those leases are
    provably dead once their file has not been rewritten (no
    heartbeat) for a TTL; anything fresher might be a still-live
    duplicate holder (a frozen-then-resumed worker racing to publish
    identical bytes), which is left alone to finish and release
    itself.  Returns the number of orphans removed.
    """
    grace = max(0.25, float(ttl))
    candidates = {key: cache.leases_dir / f"{key}.lease" for key in keys}
    store = LeaseStore(cache.root, run_id="sweep", worker_id="sweep")
    deadline = clock() + 2.0 * grace + 2.0
    removed = 0
    while candidates and clock() < deadline:
        for key, path in list(candidates.items()):
            lease = store.read(key)
            if lease is None or lease.status != CLAIMED:
                candidates.pop(key)
                continue
            if cache.peek(key) is None:
                # Unpublished claim: not ours to judge — the lease
                # protocol's TTL owns it.
                candidates.pop(key)
                continue
            try:
                age = clock() - path.stat().st_mtime
            except OSError:
                candidates.pop(key)
                continue
            if age > grace:
                try:
                    path.unlink(missing_ok=True)
                    removed += 1
                except OSError:
                    pass
                candidates.pop(key)
        if candidates:
            sleep(min(0.1, grace / 4.0))
    return removed


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OSError, PermissionError):
        return True
    return True


def sweep_tmp_droppings(cache: ResultCache) -> int:
    """Remove tmp files abandoned by killed writers.

    Atomic writes go ``<name>.tmp.<writer>.<pid>`` then rename; a process
    SIGKILLed between the two leaves the tmp behind (a heartbeat or
    publish caught mid-write).  Once the writing pid is gone the file
    is provably garbage — nothing will ever rename it — so it is
    unlinked.  Tmp files of still-live pids are someone's in-flight
    write and are left alone.  Returns the number removed.
    """
    removed = 0
    for path in cache.root.rglob("*.tmp.*"):
        suffix = path.name.rsplit(".", 1)[-1]
        if not suffix.isdigit() or _pid_alive(int(suffix)):
            continue
        try:
            path.unlink(missing_ok=True)
            removed += 1
        except OSError:
            pass
    return removed


class SupervisedWorkerBackend(SubprocessWorkerBackend):
    """A subprocess fleet kept healthy by a :class:`FleetSupervisor`.

    Same worker binary, same lease protocol, same cache coordination
    as :class:`SubprocessWorkerBackend` — plus restart/backoff/
    quarantine/elasticity on top.  Worker ids carry their incarnation
    (``<run>-w2r1`` is slot 2's first restart) so every incarnation
    writes its own stats and stderr files.

    After the grid completes, settled orphan leases (publisher killed
    pre-release) are swept so a chaos-audited run ends with a clean
    journal; ``last_supervisor_stats`` / ``last_swept_leases`` expose
    what recovery cost, and the coordinator exports them as
    ``repro_fabric_restarts`` telemetry.
    """

    def __init__(
        self,
        min_workers: int = 1,
        max_workers: int = 4,
        poll_interval: float = 0.2,
        config: Optional[SupervisorConfig] = None,
    ) -> None:
        super().__init__(n_workers=max_workers, poll_interval=poll_interval)
        if not 1 <= min_workers <= max_workers:
            raise BackendError(
                f"supervised backend needs 1 <= min <= max, got "
                f"{min_workers}..{max_workers}"
            )
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.config = config or SupervisorConfig()
        self.name = f"supervised:{min_workers}-{max_workers}"
        self.current_supervisor: Optional[FleetSupervisor] = None
        self.last_supervisor_stats: Optional[SupervisorStats] = None
        self.last_swept_leases = 0
        self.last_swept_tmp = 0

    def request_drain(self) -> None:
        """Forward a drain request (SIGTERM) to the live supervisor."""
        supervisor = self.current_supervisor
        if supervisor is not None:
            supervisor.request_drain()

    def run(
        self,
        tasks: Sequence[CellTask],
        cache_dir: Path,
        run_id: str,
        lease_ttl: float = DEFAULT_TTL_SECONDS,
    ) -> None:
        cache_dir = Path(cache_dir)
        manifest = write_manifest(
            tasks, cache_dir / "manifests" / f"{run_id}.manifest"
        )
        cache = ResultCache(cache_dir)
        keys = [t.cache_key for t in tasks if t.cache_key]

        def status() -> int:
            return sum(1 for k in keys if cache.peek(k) is None)

        def spawn(slot: int, incarnation: int):
            # Incarnations are first-class: slot 2's original process
            # is w2r0 and its first restart w2r1, so chaos selectors
            # can target exactly one incarnation and every process
            # writes distinct stats/stderr files.
            worker_id = f"{run_id}-w{slot}r{incarnation}"
            return self.spawn_worker(
                manifest, cache_dir, run_id, lease_ttl, worker_id
            )

        supervisor = FleetSupervisor(
            spawn,
            initial_workers=min(self.max_workers, max(self.min_workers, len(keys))),
            min_workers=self.min_workers,
            max_workers=self.max_workers,
            config=self.config,
            name=run_id,
        )
        self.current_supervisor = supervisor
        try:
            stats = supervisor.run(status, poll_interval=self.poll_interval)
        finally:
            self.last_supervisor_stats = supervisor.stats
            self.current_supervisor = None
        if stats.drained:
            raise BackendError(
                f"supervised fleet drained on request with {status()} "
                "cell(s) unpublished"
            )
        unpublished = [k for k in keys if cache.peek(k) is None]
        if unpublished:
            print(
                f"[fabric] supervised fleet stopped with "
                f"{len(unpublished)} cell(s) unpublished; computing "
                "them in-process",
                file=sys.stderr,
            )
            leases = LeaseStore(
                cache_dir,
                run_id=run_id,
                worker_id=f"{run_id}-recovery",
                ttl_seconds=lease_ttl,
            )
            todo = [t for t in tasks if t.cache_key in set(unpublished)]
            run_worker(todo, cache, leases)
        self.last_swept_leases = sweep_settled_leases(
            cache, keys, ttl=lease_ttl
        )
        self.last_swept_tmp = sweep_tmp_droppings(cache)
