"""Pluggable execution backends behind one protocol.

A :class:`Backend` answers exactly one question: *given a grid
manifest and the shared cache directory, make every cell's result
appear in the cache*.  How — in-process pool, local worker processes,
remote hosts — is the backend's business; the coordinator
(:mod:`.coordinator`) only ever polls the cache for published results,
so every backend gets streaming aggregation, provenance and telemetry
for free.

* :class:`LocalPoolBackend` — delegate to the battle-tested
  :func:`~repro.experiments.parallel.run_grid_parallel` process pool.
  No leases: single coordinating process, nothing to coordinate.
* :class:`SubprocessWorkerBackend` — spawn N independent
  ``python -m repro.fabric.worker`` processes that coordinate purely
  through the lease protocol.  This is the single-host version of the
  multi-host fabric: the workers share nothing but the cache
  directory, so the same binary scales to any transport that can
  mount one.
* :class:`SSHBackend` — the multi-host stub: :meth:`SSHBackend.plan`
  emits the exact per-host command lines (same worker module, same
  flags), :meth:`SSHBackend.run` refuses with a pointer to the plan.
  Kept a stub deliberately — this repository's CI has one host — but
  it shares the full :class:`Backend` interface so swapping it in is
  a one-line change.

Every spawned worker's stderr is captured to a per-worker log file
under ``<cache>/manifests/``; when a worker dies, the last
:data:`STDERR_TAIL_LINES` lines are surfaced in the coordinator's
failure message (and in the supervisor's restart log), so chaos kills
and real crashes alike are diagnosable from the coordinating process.

:func:`backend_from_spec` parses the CLI's ``--backend`` strings:
``local``, ``local:4``, ``subprocess:2``, ``supervised:1-4``,
``ssh:host1,host2``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import uuid
from pathlib import Path
from typing import List, Optional, Protocol, Sequence

from ..errors import ReproError
from ..experiments.cache import ResultCache
from ..experiments.parallel import CellTask, run_grid_parallel
from .lease import DEFAULT_TTL_SECONDS, LeaseStore
from .worker import run_worker, write_manifest

__all__ = [
    "Backend",
    "BackendError",
    "LocalPoolBackend",
    "SSHBackend",
    "STDERR_TAIL_LINES",
    "SubprocessWorkerBackend",
    "backend_from_spec",
    "new_run_id",
    "stderr_tail",
]

#: How many trailing stderr lines of a dead worker are surfaced.
STDERR_TAIL_LINES = 20


def stderr_tail(path, limit: int = STDERR_TAIL_LINES) -> str:
    """The last ``limit`` lines of a worker's captured stderr log.

    Returns ``""`` when the log is missing or empty — a dead worker
    that never wrote is reported as silent, not as an error about the
    error report.
    """
    if path is None:
        return ""
    try:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
    except OSError:
        return ""
    lines = text.splitlines()
    return "\n".join(lines[-limit:])


class BackendError(ReproError):
    """A backend could not execute (or even start) its workers."""


class Backend(Protocol):
    """The execution-backend protocol.

    ``run(tasks, cache_dir, run_id)`` must return only after every
    task with a ``cache_key`` has its result published in the cache
    (or raise :class:`BackendError`).  ``name`` labels telemetry
    gauges and bench records.
    """

    name: str

    def run(
        self,
        tasks: Sequence[CellTask],
        cache_dir: Path,
        run_id: str,
        lease_ttl: float = DEFAULT_TTL_SECONDS,
    ) -> None:
        ...


class LocalPoolBackend:
    """In-process pool execution (the pre-fabric fast path).

    A thin adapter over :func:`run_grid_parallel`: one coordinating
    process, a :class:`~concurrent.futures.ProcessPoolExecutor`, no
    leases.  Publication happens through the same cache writes, so
    the coordinator cannot tell this backend from a distributed one.
    """

    def __init__(self, n_workers: int = 1) -> None:
        if n_workers < 1:
            raise ReproError(f"local backend needs n_workers >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.name = f"local:{n_workers}"

    def run(
        self,
        tasks: Sequence[CellTask],
        cache_dir: Path,
        run_id: str,
        lease_ttl: float = DEFAULT_TTL_SECONDS,
    ) -> None:
        cache = ResultCache(cache_dir)
        run_grid_parallel(list(tasks), n_workers=self.n_workers, cache=cache)


class SubprocessWorkerBackend:
    """N independent worker processes coordinating via the cache.

    Workers are full OS processes started with the coordinator's
    interpreter and an inherited-but-extended ``PYTHONPATH`` (so the
    exact ``repro`` under test is imported, editable installs
    included).  They receive the *whole* manifest and race for cells
    through the lease protocol — there is no work assignment step, so
    a dead worker costs only its held cell after the TTL.

    If every worker dies (OOM killer, interpreter bug), the backend
    falls back to computing the unpublished remainder in-process so
    the grid still completes; the failure is reported on stderr.
    """

    def __init__(
        self, n_workers: int = 2, poll_interval: float = 0.2
    ) -> None:
        if n_workers < 1:
            raise ReproError(
                f"subprocess backend needs n_workers >= 1, got {n_workers}"
            )
        self.n_workers = n_workers
        self.poll_interval = poll_interval
        self.name = f"subprocess:{n_workers}"

    def _worker_env(self) -> dict:
        """The spawned worker's environment: ours + the live repro path."""
        import repro

        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            pkg_root if not existing else pkg_root + os.pathsep + existing
        )
        return env

    def worker_stderr_path(self, cache_dir: Path, worker_id: str) -> Path:
        """Where one worker's captured stderr log lives."""
        return Path(cache_dir) / "manifests" / f"{worker_id}.stderr.log"

    def spawn_worker(
        self,
        manifest: Path,
        cache_dir: Path,
        run_id: str,
        lease_ttl: float,
        worker_id: str,
    ) -> subprocess.Popen:
        """Spawn one worker process, stderr captured to its log file.

        The returned ``Popen`` carries a ``stderr_path`` attribute so
        whoever reaps the process (the backend's ``_await`` or the
        fleet supervisor) can surface the tail of its last words.
        """
        cache_dir = Path(cache_dir)
        cmd = [
            sys.executable,
            "-m",
            "repro.fabric._worker_main",
            "--manifest",
            str(manifest),
            "--cache-dir",
            str(cache_dir),
            "--worker-id",
            worker_id,
            "--run-id",
            run_id,
            "--ttl",
            str(lease_ttl),
            "--poll",
            str(self.poll_interval),
            "--stats-file",
            str(cache_dir / "manifests" / f"{worker_id}.stats.json"),
        ]
        stderr_path = self.worker_stderr_path(cache_dir, worker_id)
        stderr_path.parent.mkdir(parents=True, exist_ok=True)
        with open(stderr_path, "wb") as stderr_log:
            proc = subprocess.Popen(
                cmd, env=self._worker_env(), stderr=stderr_log
            )
        proc.stderr_path = stderr_path
        proc.worker_id = worker_id
        return proc

    def run(
        self,
        tasks: Sequence[CellTask],
        cache_dir: Path,
        run_id: str,
        lease_ttl: float = DEFAULT_TTL_SECONDS,
    ) -> None:
        cache_dir = Path(cache_dir)
        manifest = write_manifest(
            tasks, cache_dir / "manifests" / f"{run_id}.manifest"
        )
        procs: List[subprocess.Popen] = []
        try:
            for i in range(self.n_workers):
                procs.append(
                    self.spawn_worker(
                        manifest, cache_dir, run_id, lease_ttl,
                        worker_id=f"{run_id}-w{i}",
                    )
                )
            self._await(procs, tasks, cache_dir, run_id, lease_ttl)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()

    def _await(
        self,
        procs: List[subprocess.Popen],
        tasks: Sequence[CellTask],
        cache_dir: Path,
        run_id: str,
        lease_ttl: float,
    ) -> None:
        """Wait for the fleet; recover in-process if it dies entirely."""
        cache = ResultCache(cache_dir)
        keys = [t.cache_key for t in tasks if t.cache_key]
        while True:
            alive = [p for p in procs if p.poll() is None]
            unpublished = [k for k in keys if cache.peek(k) is None]
            if not unpublished:
                for proc in procs:
                    proc.wait()
                return
            if not alive:
                crashed = [p for p in procs if p.returncode != 0]
                if crashed:
                    print(
                        f"[fabric] all {len(procs)} workers exited "
                        f"({len(crashed)} nonzero); computing "
                        f"{len(unpublished)} remaining cell(s) in-process",
                        file=sys.stderr,
                    )
                    for proc in crashed:
                        tail = stderr_tail(
                            getattr(proc, "stderr_path", None)
                        )
                        label = (
                            f"[fabric] worker exit {proc.returncode}"
                            f" (pid {proc.pid})"
                        )
                        if tail:
                            print(
                                f"{label}, last stderr lines:\n{tail}",
                                file=sys.stderr,
                            )
                        else:
                            print(
                                f"{label}, no stderr output captured",
                                file=sys.stderr,
                            )
                    leases = LeaseStore(
                        cache_dir,
                        run_id=run_id,
                        worker_id=f"{run_id}-recovery",
                        ttl_seconds=lease_ttl,
                    )
                    todo = [t for t in tasks if t.cache_key in set(unpublished)]
                    run_worker(todo, cache, leases)
                # Cells still unpublished after a clean fleet exit
                # failed deterministically in every worker that tried;
                # the coordinator's serial pass owns the diagnosis.
                return
            time.sleep(self.poll_interval)


class SSHBackend:
    """Multi-host execution stub sharing the :class:`Backend` interface.

    ``plan()`` renders the exact command every host would run — the
    same ``python -m repro.fabric.worker`` invocation the subprocess
    backend spawns, pointed at a commonly mounted cache directory.
    ``run()`` raises: this repository's CI has a single host, and a
    silent no-op would violate the backend contract that results are
    published on return.
    """

    def __init__(self, hosts: Sequence[str], remote_python: str = "python3") -> None:
        if not hosts:
            raise ReproError("ssh backend needs at least one host")
        self.hosts = tuple(hosts)
        self.remote_python = remote_python
        self.name = f"ssh:{len(self.hosts)}"

    def plan(
        self,
        tasks: Sequence[CellTask],
        cache_dir: Path,
        run_id: str,
        lease_ttl: float = DEFAULT_TTL_SECONDS,
    ) -> List[str]:
        """Per-host command lines (one worker per host)."""
        manifest = Path(cache_dir) / "manifests" / f"{run_id}.manifest"
        lines = []
        for i, host in enumerate(self.hosts):
            lines.append(
                f"ssh {host} {self.remote_python} -m repro.fabric._worker_main"
                f" --manifest {manifest} --cache-dir {cache_dir}"
                f" --worker-id {run_id}-{host}-w{i} --run-id {run_id}"
                f" --ttl {lease_ttl}"
            )
        return lines

    def run(
        self,
        tasks: Sequence[CellTask],
        cache_dir: Path,
        run_id: str,
        lease_ttl: float = DEFAULT_TTL_SECONDS,
    ) -> None:
        plan = "\n  ".join(self.plan(tasks, cache_dir, run_id, lease_ttl))
        raise BackendError(
            "the ssh backend is a planning stub (single-host CI); "
            f"it would run:\n  {plan}"
        )


def backend_from_spec(spec: str) -> Backend:
    """Parse a CLI ``--backend`` spec into a backend instance.

    ``local`` / ``local:N`` → :class:`LocalPoolBackend`;
    ``subprocess:N`` (``subprocess`` alone defaults to 2) →
    :class:`SubprocessWorkerBackend`; ``supervised:MIN-MAX`` (or
    ``supervised:N``, defaults 1-4) → the self-healing
    :class:`~repro.fabric.supervisor.SupervisedWorkerBackend`;
    ``ssh:host1,host2`` → :class:`SSHBackend`.
    """
    kind, _, arg = spec.partition(":")
    kind = kind.strip().lower()
    try:
        if kind == "local":
            return LocalPoolBackend(int(arg) if arg else 1)
        if kind == "subprocess":
            return SubprocessWorkerBackend(int(arg) if arg else 2)
        if kind == "supervised":
            from .supervisor import SupervisedWorkerBackend

            if not arg:
                return SupervisedWorkerBackend()
            low, sep, high = arg.partition("-")
            if sep:
                return SupervisedWorkerBackend(
                    min_workers=int(low), max_workers=int(high)
                )
            return SupervisedWorkerBackend(
                min_workers=1, max_workers=int(low)
            )
    except ValueError:
        raise ReproError(f"bad worker count in backend spec: {spec!r}") from None
    if kind == "ssh":
        hosts = [h.strip() for h in arg.split(",") if h.strip()]
        return SSHBackend(hosts)
    raise ReproError(
        f"unknown backend {spec!r} (expected local[:N], subprocess[:N], "
        "supervised[:MIN-MAX] or ssh:hosts)"
    )


def new_run_id() -> str:
    """A short unique id naming one coordinated grid run."""
    return uuid.uuid4().hex[:12]
