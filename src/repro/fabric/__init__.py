"""Distributed experiment fabric: cache-coordinated grid sharding.

The paper's grids are embarrassingly parallel — every cell is a pure
function of its content-addressed identity (see
:mod:`repro.experiments.cache`) — so the only coordination a fleet of
workers needs is *who computes what*.  This package provides exactly
that, with the shared result cache directory doubling as the
coordination medium:

* :mod:`.lease` — the work-claiming protocol.  A worker atomically
  claims a cell by creating ``<cache>/leases/<key>.lease`` with
  ``O_CREAT | O_EXCL``; it heartbeats the lease while computing,
  publishes the result through the cache's atomic-write path, then
  replaces the lease with a ``done`` marker.  A worker that dies
  mid-cell is detected by heartbeat age and its lease is taken over.
* :mod:`.worker` — the claim → compute → publish loop, importable
  (:func:`~repro.fabric.worker.run_worker`) and runnable
  (``python -m repro.fabric.worker``), with adaptive batching of
  sub-100ms cells.
* :mod:`.backends` — pluggable execution backends behind the
  :class:`~repro.fabric.backends.Backend` protocol:
  :class:`~repro.fabric.backends.LocalPoolBackend` (in-process pool),
  :class:`~repro.fabric.backends.SubprocessWorkerBackend` (N
  independent worker processes) and the
  :class:`~repro.fabric.backends.SSHBackend` stub that plans the same
  worker invocations across hosts.
* :mod:`.coordinator` — :func:`~repro.fabric.coordinator.run_grid_fabric`,
  the grid driver: cache/checkpoint pre-scan, backend dispatch,
  streaming result aggregation (summaries only — the coordinator never
  materializes every ``SimulationResult``), per-backend telemetry
  gauges, and static sharding (:func:`~repro.fabric.coordinator.shard_tasks`)
  as the no-shared-cache fallback.
* :mod:`.supervisor` — the self-healing layer:
  :class:`~repro.fabric.supervisor.FleetSupervisor` restarts dead
  workers with exponential backoff and deterministic jitter,
  quarantines crash-loopers after a budget, grows/shrinks the fleet
  elastically as the grid drains, and drains gracefully on request;
  :class:`~repro.fabric.supervisor.SupervisedWorkerBackend` wraps it
  as a drop-in backend (``--backend supervised:1-4``).
* :mod:`.presets` — named grid builders for the CLI and benchmarks.

Determinism contract: because every cell's seed derives from its
identity (:func:`~repro.experiments.cache.derive_cell_seed`) and
publishes via atomic replace, a sharded run is bit-identical to a
serial run — same per-cell digests — no matter how many workers race,
die, or duplicate work.  Duplicated computation is wasted time, never
wrong results.
"""

from .backends import (
    Backend,
    BackendError,
    LocalPoolBackend,
    SSHBackend,
    SubprocessWorkerBackend,
    backend_from_spec,
)
from .coordinator import FabricReport, run_grid_fabric, shard_tasks
from .lease import (
    CLAIMED,
    DONE,
    Lease,
    LeaseStore,
)
from .presets import GRID_PRESETS, build_grid
from .supervisor import (
    FleetSupervisor,
    SupervisedWorkerBackend,
    SupervisorConfig,
    SupervisorStats,
)
from .worker import WorkerStats, run_worker

__all__ = [
    # lease protocol
    "Lease",
    "LeaseStore",
    "CLAIMED",
    "DONE",
    # worker loop
    "run_worker",
    "WorkerStats",
    # backends
    "Backend",
    "BackendError",
    "LocalPoolBackend",
    "SubprocessWorkerBackend",
    "SSHBackend",
    "backend_from_spec",
    # supervision
    "FleetSupervisor",
    "SupervisedWorkerBackend",
    "SupervisorConfig",
    "SupervisorStats",
    # coordinator
    "run_grid_fabric",
    "shard_tasks",
    "FabricReport",
    # grid presets
    "build_grid",
    "GRID_PRESETS",
]
