"""Spawn-only entry point for fabric workers.

``python -m repro.fabric.worker`` works but trips the interpreter's
runpy warning (the package ``__init__`` imports :mod:`.worker` before
runpy executes it).  Backends therefore spawn
``python -m repro.fabric._worker_main``, which nothing imports.
"""

import sys

from .worker import main

if __name__ == "__main__":
    sys.exit(main())
