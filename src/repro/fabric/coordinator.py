"""The fabric grid driver: dispatch, stream, aggregate.

:func:`run_grid_fabric` is the distributed sibling of
:func:`~repro.experiments.parallel.run_grid_parallel` and returns the
same shape of report.  The division of labour:

* the **backend** makes results appear in the shared cache (however it
  likes — pool, subprocesses, remote hosts);
* the **coordinator** pre-scans cache and checkpoint, streams results
  out of the cache *as workers publish them* (emitting progress and
  journalling the checkpoint cell by cell), attributes provenance from
  the lease journal, and computes the leftovers — unpicklable,
  uncacheable, ``keep_result`` or worker-poisoned cells — serially
  in-process.

Streaming is load-bearing, not cosmetic: fabric cells travel as
summaries only (``result=None`` in the cache envelope unless the task
asked otherwise), so the coordinator's memory is O(grid) summaries —
it never materializes all :class:`~repro.simulator.results.SimulationResult`
objects no matter how many workers feed it.

Static sharding (:func:`shard_tasks`) is the degraded mode for fleets
*without* a shared cache directory: shard ``k`` of ``n`` computes the
cells with ``index % n == k`` and nothing else, so ``n`` disjoint
invocations cover the grid exactly once with zero coordination.
"""

from __future__ import annotations

import glob
import json
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..experiments.cache import ResultCache
from ..experiments.checkpoint import GridCheckpoint
from ..experiments.parallel import (
    PROVENANCE_CLAIMED_ELSEWHERE,
    PROVENANCE_COMPUTED,
    CellOutcome,
    CellTask,
    GridReport,
    _is_picklable,
    _outcome,
    run_grid_parallel,
)
from .backends import Backend, BackendError, new_run_id
from .lease import DEFAULT_TTL_SECONDS, DONE, LeaseStore

__all__ = ["FabricReport", "run_grid_fabric", "shard_tasks"]


@dataclass(frozen=True)
class FabricReport(GridReport):
    """A :class:`GridReport` plus what the fabric knows about the run."""

    backend: str = ""
    run_id: str = ""
    #: Summed WorkerStats counters across the fleet (empty for
    #: backends that do not emit per-worker stats files).
    worker_totals: Tuple[Tuple[str, int], ...] = ()


def shard_tasks(
    tasks: Sequence[CellTask], shard_id: int, num_shards: int
) -> List[CellTask]:
    """The static shard ``shard_id`` of ``num_shards`` of a grid.

    Cells are assigned by ``task.index % num_shards``, so the shards
    of one grid are disjoint, cover it exactly, and are stable across
    invocations — ``n`` crontab entries with ``--shard-id 0..n-1``
    compute the grid once with no shared state at all.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if not 0 <= shard_id < num_shards:
        raise ConfigurationError(
            f"shard_id must be in [0, {num_shards}), got {shard_id}"
        )
    return [t for t in tasks if t.index % num_shards == shard_id]


class _ForwardOnly:
    """Progress wrapper hiding ``add_total`` from nested grid runners.

    The coordinator pre-registers the whole grid once; the serial
    leftovers pass must not register its subset again.
    """

    def __init__(self, progress: Callable[[CellOutcome], None]) -> None:
        self._progress = progress

    def __call__(self, outcome: CellOutcome) -> None:
        self._progress(outcome)


def _sum_worker_stats(cache_root: Path, run_id: str) -> Dict[str, int]:
    """Sum the fleet's WorkerStats JSON files (empty dict when none)."""
    totals: Dict[str, int] = {}
    pattern = str(cache_root / "manifests" / f"{run_id}-w*.stats.json")
    for path in sorted(glob.glob(pattern)):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                stats = json.load(handle)
        except (OSError, ValueError):
            continue
        for key, value in stats.items():
            if isinstance(value, (int, float)) and key != "wall_seconds":
                totals[key] = totals.get(key, 0) + int(value)
    return totals


def _record_gauges(registry, backend_name: str, states: Dict[str, int]) -> None:
    """Publish per-backend fabric gauges into a metrics registry."""
    gauge = registry.gauge(
        "repro_fabric_cells",
        "Grid cells by fabric state for the last coordinated run",
        ("backend", "state"),
    )
    for state in sorted(states):
        gauge.labels(backend=backend_name, state=state).set(states[state])


def run_grid_fabric(
    tasks: Sequence[CellTask],
    backend: Backend,
    cache: ResultCache,
    *,
    checkpoint: Optional[GridCheckpoint] = None,
    progress: Optional[Callable[[CellOutcome], None]] = None,
    registry=None,
    keep_going: bool = False,
    lease_ttl: float = DEFAULT_TTL_SECONDS,
    poll_interval: float = 0.1,
    run_id: Optional[str] = None,
) -> FabricReport:
    """Execute a grid on an execution backend; return a streamed report.

    Args:
        tasks: the grid, as built by
            :func:`~repro.experiments.parallel.make_cell_task`.
        backend: any :class:`~repro.fabric.backends.Backend`.
        cache: the shared result cache — the fabric's coordination
            medium, consulted before dispatch and polled during it.
        checkpoint: optional grid checkpoint; pre-scanned like the
            cache and journalled as fabric results stream in, so an
            interrupted coordinated run resumes exactly like a serial
            one.
        progress: per-cell callback (cache hits included, completion
            order); ``add_total`` is honoured once for the whole grid.
        registry: optional
            :class:`~repro.telemetry.registry.MetricsRegistry`; the
            run publishes ``repro_fabric_cells{backend=,state=}``
            gauges (claimed / computed / stolen / lease_expired /
            skipped / failed from the fleet's stats, plus this
            coordinator's cache_hit / checkpoint / claimed_elsewhere
            attribution).
        keep_going: degrade to structured failures instead of raising
            on the first failed cell (the serial leftovers pass owns
            failure semantics, exactly like ``run_grid_parallel``).
        lease_ttl: heartbeat age after which workers steal leases.
        poll_interval: coordinator cache-poll cadence.
        run_id: explicit run identity (tests); fresh by default.

    Raises:
        BackendError: the backend could not run at all (e.g. the SSH
            stub) — never for individual cell failures.
        ExperimentExecutionError: a cell failed and ``keep_going`` is
            off.
    """
    run_id = run_id or new_run_id()
    if progress is not None:
        add_total = getattr(progress, "add_total", None)
        if add_total is not None:
            add_total(len(tasks))
        progress = _ForwardOnly(progress)

    outcomes: Dict[int, CellOutcome] = {}

    def record(outcome: CellOutcome) -> None:
        outcomes[outcome.index] = outcome
        if progress is not None:
            progress(outcome)

    # --- pre-scan: cache, then checkpoint (same rules as the serial path)
    pending: List[CellTask] = []
    for task in tasks:
        entry = cache.get(task.cache_key) if task.cache_key else None
        if entry is not None and (
            not task.keep_result or entry.get("result") is not None
        ):
            record(
                _outcome(
                    task,
                    entry["summary"],
                    entry.get("result") if task.keep_result else None,
                    entry.get("wall_seconds", 0.0),
                    from_cache=True,
                )
            )
            continue
        if entry is not None:
            cache.stats.hits -= 1
            cache.stats.misses += 1
        if checkpoint is not None and task.cache_key:
            saved = checkpoint.get(task.cell_id, task.cache_key)
            if saved is not None and (
                not task.keep_result or saved.get("result") is not None
            ):
                record(
                    _outcome(
                        task,
                        saved["summary"],
                        saved.get("result") if task.keep_result else None,
                        saved.get("wall_seconds", 0.0),
                        from_cache=False,
                        from_checkpoint=True,
                    )
                )
                continue
        pending.append(task)

    # --- partition: what the fabric can carry vs what must stay local.
    # Fabric cells travel by cache entry, so they need a cache key and
    # must not need the full result shipped back; unpicklable payloads
    # cannot cross a process boundary at all.
    fabric_tasks = [
        t
        for t in pending
        if t.cache_key and not t.keep_result and _is_picklable(t)
    ]
    fabric_keys = {t.cache_key for t in fabric_tasks}
    serial_tasks = [t for t in pending if t.cache_key not in fabric_keys]

    worker_totals: Dict[str, int] = {}
    if fabric_tasks:
        coordinator_leases = LeaseStore(
            cache.root, run_id=run_id, worker_id="coordinator",
            ttl_seconds=lease_ttl,
        )
        backend_error: List[BaseException] = []

        def drive() -> None:
            try:
                backend.run(
                    fabric_tasks, cache.root, run_id, lease_ttl=lease_ttl
                )
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                backend_error.append(exc)

        thread = threading.Thread(target=drive, name="fabric-backend")
        thread.start()

        def attribute(task: CellTask) -> str:
            lease = coordinator_leases.read(task.cache_key)
            if (
                lease is not None
                and lease.status == DONE
                and lease.run_id != run_id
            ):
                return PROVENANCE_CLAIMED_ELSEWHERE
            return PROVENANCE_COMPUTED

        def sweep(waiting: Dict[str, CellTask]) -> None:
            for key in list(waiting):
                entry = cache.peek(key)
                if entry is None:
                    continue
                task = waiting.pop(key)
                provenance = attribute(task)
                wall = entry.get("wall_seconds", 0.0)
                if checkpoint is not None:
                    checkpoint.put(
                        task.cell_id,
                        key,
                        {
                            "summary": entry["summary"],
                            "result": None,
                            "wall_seconds": wall,
                        },
                    )
                record(
                    _outcome(
                        task,
                        entry["summary"],
                        None,
                        wall,
                        from_cache=False,
                        provenance=provenance,
                    )
                )

        waiting = {t.cache_key: t for t in fabric_tasks}
        while thread.is_alive():
            sweep(waiting)
            time.sleep(poll_interval)
        thread.join()
        sweep(waiting)

        if backend_error:
            exc = backend_error[0]
            if isinstance(exc, BackendError):
                raise exc
            # A cell-level failure inside the backend (e.g. the local
            # pool raising on a poisoned cell): the serial pass below
            # recomputes the stragglers and owns the failure report.
            print(
                f"[fabric] backend {backend.name} failed "
                f"({type(exc).__name__}: {exc}); recomputing "
                f"{len(waiting)} cell(s) serially",
                file=sys.stderr,
            )
        # Unpublished fabric cells (worker-poisoned or lost to a
        # backend failure) fall through to the serial pass.
        serial_tasks.extend(waiting.values())
        serial_tasks.sort(key=lambda t: t.index)
        worker_totals = _sum_worker_stats(Path(cache.root), run_id)

    serial_report: Optional[GridReport] = None
    if serial_tasks:
        serial_report = run_grid_parallel(
            serial_tasks,
            n_workers=1,
            cache=cache,
            checkpoint=checkpoint,
            keep_going=keep_going,
            progress=progress,
        )
        for outcome in serial_report.completed:
            outcomes[outcome.index] = outcome

    report = FabricReport(
        outcomes=tuple(outcomes.get(t.index) for t in tasks),
        failures=serial_report.failures if serial_report is not None else (),
        backend=backend.name,
        run_id=run_id,
        worker_totals=tuple(sorted(worker_totals.items())),
    )

    if registry is not None:
        # Fleet-side states from the workers' own counters, falling
        # back to this coordinator's attribution when the backend
        # emits no stats files (local pool); plus the coordinator-only
        # provenances either way.
        provenance_counts = report.provenance_counts()
        states: Dict[str, int] = {}
        for key, state in (
            ("claimed", "claimed"),
            ("computed", "computed"),
            ("stolen", "stolen"),
            ("lease_lost", "lease_expired"),
            ("skipped", "skipped"),
            ("failed", "failed"),
        ):
            if key in worker_totals:
                states[state] = worker_totals[key]
        states.setdefault("computed", provenance_counts.get("computed", 0))
        for provenance in ("cache_hit", "checkpoint", "claimed_elsewhere"):
            if provenance in provenance_counts:
                states[provenance] = provenance_counts[provenance]
        _record_gauges(registry, backend.name, states)
        supervisor_stats = getattr(backend, "last_supervisor_stats", None)
        if supervisor_stats is not None:
            registry.gauge(
                "repro_fabric_restarts",
                "Worker restarts the fleet supervisor performed in the "
                "last coordinated run",
                ("backend",),
            ).labels(backend=backend.name).set(supervisor_stats.restarts)
            events = registry.gauge(
                "repro_fabric_supervisor",
                "Fleet supervisor recovery actions in the last "
                "coordinated run",
                ("backend", "event"),
            )
            for event, value in (
                ("quarantined", supervisor_stats.quarantined),
                ("grown", supervisor_stats.grown),
                ("shrunk", supervisor_stats.shrunk),
                ("swept_leases", getattr(backend, "last_swept_leases", 0)),
            ):
                events.labels(backend=backend.name, event=event).set(value)

    return report
