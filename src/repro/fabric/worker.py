"""The fabric worker: claim → compute → publish → release.

A worker is handed the *whole* grid (a manifest of
:class:`~repro.experiments.parallel.CellTask`) and the shared cache
directory; which cells it actually computes is decided at runtime by
the lease protocol (:mod:`.lease`).  N workers pointed at the same
cache therefore load-balance automatically — fast hosts claim more
cells — and a worker that dies loses only the one cell it held, which
a peer takes over after the lease TTL.

The loop, per cell: skip if the cache already holds the result; try to
claim the lease (exactly one racing worker wins); simulate; publish
the result through the cache's atomic write; replace the lease with a
``done`` marker.  A daemon thread heartbeats every held lease so slow
cells are not mistaken for dead workers.

Adaptive batching: grids of sub-100ms cells would otherwise spend
more time on lease I/O than simulation, so the worker claims cells in
batches whose size doubles while the observed mean cell cost stays
under :data:`BATCH_TARGET_SECONDS` (and collapses back to 1 the moment
cells get expensive — cheap cells amortize claim overhead, expensive
cells keep takeover granularity fine).

Runnable as ``python -m repro.fabric.worker`` — this is the process
the :class:`~repro.fabric.backends.SubprocessWorkerBackend` spawns and
the exact command line the SSH backend plans for remote hosts.

``REPRO_FABRIC_CELL_FLOOR`` (seconds, float) pads every computed cell
to at least that wall time.  It exists for scheduling-bound fabric
benchmarks on small CI machines and is honestly recorded in the bench
metadata; it is never set in real runs.

``REPRO_CHAOS_PLAN`` (path to a JSON fault plan, see
:mod:`repro.chaos.plan`) arms in-band fault injection: the worker
calls the plan's hooks at the three interesting instants of a cell's
life (before compute, before publish, between publish and lease
release) and the plan decides whether to die, stall, or corrupt right
there.  Never set outside the chaos harness.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from ..experiments.cache import ResultCache
from ..experiments.parallel import CellTask, _simulate_task
from ..fsutil import atomic_write_text
from .lease import DEFAULT_TTL_SECONDS, DONE, LeaseStore

__all__ = [
    "BATCH_TARGET_SECONDS",
    "CELL_FLOOR_ENV",
    "WorkerStats",
    "load_manifest",
    "run_worker",
    "write_manifest",
]

#: Mean cell cost below which the claim batch size doubles.
BATCH_TARGET_SECONDS = 0.1

#: Claim batch size ceiling (bounds work lost to a worker death).
MAX_BATCH = 32

#: Environment variable padding each computed cell's wall time (benchmarks).
CELL_FLOOR_ENV = "REPRO_FABRIC_CELL_FLOOR"


@dataclass
class WorkerStats:
    """What one worker did to the grid (its exit report).

    ``claimed`` counts won leases, ``stolen`` the subset won by
    stale-lease takeover; ``computed`` cells actually simulated;
    ``published`` results written to the cache; ``skipped`` cells
    observed already published by a peer; ``failed`` cells whose
    simulation raised (lease released, left unpublished for the
    coordinator to diagnose); ``lease_lost`` heartbeats that
    discovered the lease had been stolen from *us* (the cell is still
    published — duplicated work, never lost work).
    """

    worker_id: str
    claimed: int = 0
    stolen: int = 0
    computed: int = 0
    published: int = 0
    skipped: int = 0
    failed: int = 0
    lease_lost: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


def write_manifest(tasks: Sequence[CellTask], path) -> Path:
    """Pickle a task list for ``python -m repro.fabric.worker``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = pickle.dumps(list(tasks), protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_bytes(blob)
    os.replace(tmp, path)
    return path


def load_manifest(path) -> List[CellTask]:
    """Load a manifest written by :func:`write_manifest`."""
    with open(path, "rb") as handle:
        tasks = pickle.load(handle)
    if not isinstance(tasks, list) or not all(
        isinstance(t, CellTask) for t in tasks
    ):
        raise ReproError(f"not a cell-task manifest: {path}")
    return tasks


class _Heartbeat:
    """Daemon thread refreshing every lease the worker currently holds."""

    def __init__(self, leases: LeaseStore, stats: WorkerStats) -> None:
        self._leases = leases
        self._stats = stats
        self._held: set = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        interval = max(0.05, leases.ttl / 3.0)
        self._thread = threading.Thread(
            target=self._run, args=(interval,), daemon=True
        )

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def hold(self, key: str) -> None:
        with self._lock:
            self._held.add(key)

    def drop(self, key: str) -> None:
        with self._lock:
            self._held.discard(key)

    def _run(self, interval: float) -> None:
        while not self._stop.wait(interval):
            with self._lock:
                held = list(self._held)
            for key in held:
                try:
                    if not self._leases.heartbeat(key):
                        self._stats.lease_lost += 1
                except Exception:
                    # A failed heartbeat never kills the compute loop;
                    # worst case the lease goes stale and is stolen,
                    # which the protocol already survives.
                    pass


def run_worker(
    tasks: Sequence[CellTask],
    cache: ResultCache,
    leases: LeaseStore,
    poll_interval: float = 0.2,
    wait_for_all: bool = True,
    cell_floor: Optional[float] = None,
    sleep=time.sleep,
    chaos=None,
) -> WorkerStats:
    """Run the claim/compute/publish loop until the grid is published.

    Args:
        tasks: the full grid manifest; cells without a ``cache_key``
            are ignored (the coordinator computes those itself).
        cache: the shared result cache (the coordination medium).
        leases: this worker's :class:`~repro.fabric.lease.LeaseStore`.
        poll_interval: seconds between polls while peers hold the
            remaining cells.
        wait_for_all: block until *every* cell is published (takes over
            stale leases along the way).  ``False`` returns as soon as
            nothing is claimable — only for tests.
        cell_floor: pad each computed cell to at least this wall time
            (see :data:`CELL_FLOOR_ENV`).
        sleep: sleep function, injectable for tests.
        chaos: optional :class:`~repro.chaos.plan.ChaosPlan` whose
            ``on_compute`` / ``on_publish`` / ``on_post_publish``
            hooks fire around each computed cell (fault injection for
            the chaos harness; ``None`` in real runs).
    """
    stats = WorkerStats(worker_id=leases.worker_id)
    start = time.perf_counter()
    remaining: Dict[str, CellTask] = {
        t.cache_key: t for t in tasks if t.cache_key
    }
    failed: set = set()
    batch_size = 1
    recent_walls: List[float] = []

    with _Heartbeat(leases, stats) as heartbeat:
        while len(remaining) > len(failed):
            claimed: List[CellTask] = []
            for key in list(remaining):
                if len(claimed) >= batch_size:
                    break
                if key in failed:
                    continue
                if cache.peek(key) is not None:
                    remaining.pop(key)
                    stats.skipped += 1
                    continue
                before = leases.read(key)
                if before is not None and before.status == DONE:
                    # Publication order is cache.put → release_done, so
                    # a done marker normally means our peek above lost a
                    # race with the publisher — re-peek before trusting
                    # it.  A done marker with *still* no cache entry is
                    # a genuine orphan (the entry was gc'ed); clear it
                    # so the cell is claimable again.
                    if cache.peek(key) is not None:
                        remaining.pop(key)
                        stats.skipped += 1
                        continue
                    try:
                        leases.path_for(key).unlink(missing_ok=True)
                    except OSError:
                        pass
                    before = None
                if not leases.claim(key):
                    continue
                stats.claimed += 1
                if before is not None:
                    stats.stolen += 1
                heartbeat.hold(key)
                claimed.append(remaining.pop(key))

            for task in claimed:
                key = task.cache_key
                ordinal = stats.computed
                try:
                    if chaos is not None:
                        chaos.on_compute(key, ordinal)
                    _, summary, result, wall = _simulate_task(task)
                    if cell_floor is not None and wall < cell_floor:
                        sleep(cell_floor - wall)
                        wall = cell_floor
                    stats.computed += 1
                    recent_walls.append(wall)
                    if chaos is not None:
                        chaos.on_publish(cache, key, ordinal)
                    cache.put(
                        key,
                        {
                            "summary": summary,
                            "result": result if task.keep_result else None,
                            "wall_seconds": wall,
                        },
                    )
                    stats.published += 1
                    if chaos is not None:
                        chaos.on_post_publish(key, ordinal)
                    # Stop heartbeating before writing the done marker:
                    # a heartbeat in flight after release_done could
                    # rename a stale CLAIMED body over the marker,
                    # leaving a settled orphan for the sweep to clean.
                    heartbeat.drop(key)
                    leases.release_done(key, wall_seconds=wall)
                except Exception:
                    # A poisoned cell must not kill the worker (its
                    # peers would claim it and die one by one).  Drop
                    # the lease, remember not to retry it ourselves,
                    # and leave it unpublished — the coordinator's
                    # serial pass reproduces the error with full
                    # context.
                    heartbeat.drop(key)
                    leases.release_failed(key)
                    stats.failed += 1
                    failed.add(key)
                    remaining[key] = task
                    continue
                heartbeat.drop(key)

            if claimed and recent_walls:
                recent = recent_walls[-8:]
                mean = sum(recent) / len(recent)
                if mean < BATCH_TARGET_SECONDS:
                    batch_size = min(batch_size * 2, MAX_BATCH)
                else:
                    batch_size = 1
            elif not claimed and len(remaining) > len(failed):
                if not wait_for_all:
                    break
                # Everything left is held by live peers: poll until
                # they publish, or their leases go stale and the next
                # pass takes them over.
                sleep(poll_interval)

    stats.wall_seconds = time.perf_counter() - start
    return stats


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.fabric.worker`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-fabric-worker",
        description="claim, compute and publish grid cells from a shared cache",
    )
    parser.add_argument("--manifest", required=True, help="pickled CellTask list")
    parser.add_argument("--cache-dir", required=True, help="shared cache directory")
    parser.add_argument("--worker-id", required=True)
    parser.add_argument("--run-id", required=True)
    parser.add_argument("--ttl", type=float, default=DEFAULT_TTL_SECONDS)
    parser.add_argument("--poll", type=float, default=0.2)
    parser.add_argument(
        "--stats-file", default=None, help="write the WorkerStats JSON here"
    )
    args = parser.parse_args(argv)

    tasks = load_manifest(args.manifest)
    cache = ResultCache(args.cache_dir)
    leases = LeaseStore(
        args.cache_dir, run_id=args.run_id, worker_id=args.worker_id,
        ttl_seconds=args.ttl,
    )
    floor_text = os.environ.get(CELL_FLOOR_ENV)
    cell_floor = float(floor_text) if floor_text else None
    chaos = None
    from ..chaos.plan import CHAOS_PLAN_ENV, ChaosPlan

    plan_path = os.environ.get(CHAOS_PLAN_ENV)
    if plan_path:
        chaos = ChaosPlan.load(plan_path, worker_id=args.worker_id)
        chaos.on_start()
    stats = run_worker(
        tasks, cache, leases, poll_interval=args.poll, cell_floor=cell_floor,
        chaos=chaos,
    )
    if args.stats_file:
        atomic_write_text(
            args.stats_file, json.dumps(stats.to_dict(), sort_keys=True) + "\n"
        )
    print(
        f"[fabric] worker {stats.worker_id}: {stats.computed} computed, "
        f"{stats.skipped} skipped, {stats.stolen} stolen, "
        f"{stats.wall_seconds:.2f}s",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
